#!/bin/bash
# Regenerate all paper tables/figures, one experiment at a time.
BIN=./target/release/experiments
SCALE=8000
ALS=400
OUT=/root/repo/experiments_full.out
ERR=/root/repo/experiments_full.err
: > "$OUT"; : > "$ERR"
for exp in table2 table3 table4 table5 table6 fig10 wcc fig9 fig7 fig12 fig8 fig11; do
  $BIN --scale $SCALE --als-scale $ALS "$exp" >> "$OUT" 2>> "$ERR"
done
echo ALL_DONE >> "$ERR"
