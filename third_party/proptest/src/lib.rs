//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates registry, so the
//! workspace vendors a deterministic re-implementation of the proptest
//! surface its tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map` / `prop_recursive`, [`BoxedStrategy`],
//! * strategies for integer/float ranges, tuples, string patterns
//!   (character-class regexes like `"[a-z][a-z0-9_]{0,6}"`),
//!   [`collection::vec`], [`Just`], [`any`], and [`prop_oneof!`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike upstream there is **no shrinking**: a failing case reports its
//! case number and the (deterministic) seed, which reproduces the input
//! exactly because generation is a pure function of the test name and
//! case index.

use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic generator driving strategy sampling (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from an arbitrary string (e.g. the test name)
    /// and a case index, so every case is independent but reproducible.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::from_seed(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A generator from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Config and failure reporting
// ---------------------------------------------------------------------

/// Per-test configuration (subset of upstream).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (carried out of the test body by
/// [`prop_assert!`]-style macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result type property bodies implicitly return.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cheaply cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }

    /// Build a recursive strategy: `self` is the leaf; `branch` wraps a
    /// strategy for the element type into a composite. `depth` bounds the
    /// recursion; the size hints of upstream are accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
                // Bias toward leaves so sizes stay tame.
                if rng.below(3) == 0 {
                    deeper.generate(rng)
                } else {
                    l.generate(rng)
                }
            }));
        }
        cur
    }
}

/// A type-erased, cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly finite values across magnitudes, occasionally specials —
        // mirrors upstream's inclusion of infinities and NaN.
        match rng.below(16) {
            0 => f64::from_bits(rng.next_u64()), // any bit pattern
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => f64::NAN,
            4 => 0.0,
            5 => -0.0,
            _ => {
                let mag = (rng.unit_f64() * 600.0) - 300.0; // 1e-300..1e300
                let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                sign * rng.unit_f64() * 10f64.powf(mag)
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

// ---------------------------------------------------------------------
// String pattern strategies
// ---------------------------------------------------------------------

/// One `[class]{min,max}` unit of a pattern.
struct PatternAtom {
    chars: Vec<char>,
    min: u32,
    max: u32,
}

/// Parse the character-class regex subset: sequences of literals or
/// `[a-z0-9_]` classes, each optionally followed by `{min,max}` or `{n}`.
fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = if c == '[' {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            while let Some(d) = it.next() {
                if d == ']' {
                    break;
                }
                if d == '-' {
                    if let (Some(lo), Some(&hi)) = (prev, it.peek()) {
                        if hi != ']' {
                            it.next();
                            for x in (lo as u32 + 1)..=(hi as u32) {
                                set.push(char::from_u32(x).expect("valid range"));
                            }
                            prev = None;
                            continue;
                        }
                    }
                    set.push('-');
                    prev = Some('-');
                } else {
                    set.push(d);
                    prev = Some(d);
                }
            }
            assert!(!set.is_empty(), "empty character class in {pattern:?}");
            set
        } else if c == '\\' {
            vec![it.next().expect("dangling escape")]
        } else {
            vec![c]
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let mut spec = String::new();
            for d in it.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad repeat min"),
                    b.trim().parse().expect("bad repeat max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom { chars, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

pub mod collection {
    //! Collection strategies.

    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, min..max)` — a vector of `element`s.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Assert inside a property body, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body, failing the case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_eq failed at {}:{}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut proptest_rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {} (deterministic; rerun reproduces): {}",
                        stringify!($name),
                        case,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = Strategy::generate(&(3u64..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.5), &mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_their_class() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let t = Strategy::generate(&"[a-zA-Z0-9 _-]{0,24}", &mut rng);
            assert!(t.len() <= 24);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '_' || c == '-'));
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut rng = TestRng::from_seed(3);
        let strat = crate::collection::vec((0u64..5, 0.0f64..1.0), 2..6);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 5);
                assert!((0.0..1.0).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum T {
            Leaf(u64),
            Node(Vec<T>),
        }
        let leaf = prop_oneof![
            any::<u64>().prop_map(T::Leaf),
            Just(T::Leaf(0)),
        ];
        let strat = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(T::Node)
        });
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            let _ = Strategy::generate(&strat, &mut rng); // must not hang
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = crate::collection::vec(0u64..1000, 0..20);
        let a = Strategy::generate(&s, &mut TestRng::for_case("x", 5));
        let b = Strategy::generate(&s, &mut TestRng::for_case("x", 5));
        let c = Strategy::generate(&s, &mut TestRng::for_case("x", 6));
        assert_eq!(a, b);
        assert!(a != c || a.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: bindings, config, early return, asserts.
        #[test]
        fn macro_smoke(x in 0u64..10, v in crate::collection::vec(0i64..5, 0..3)) {
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(x < 10, "x was {x}");
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
