//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset this workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] — with a simple
//! median-of-samples wall-clock measurement instead of upstream's
//! statistical machinery. Good enough to compare orders of magnitude and
//! to keep `cargo bench` runnable offline; not a replacement for real
//! criterion numbers.

use std::time::{Duration, Instant};

/// Top-level benchmark context.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upstream-compatible no-op: measurement time is derived from the
    /// sample count here.
    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f` over the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warmup iteration, then timed samples.
        let _ = std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let _ = std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("  {id}: no samples");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let (lo, hi) = (b.samples[0], b.samples[b.samples.len() - 1]);
    eprintln!("  {id}: median {median:?} (min {lo:?}, max {hi:?}, n={})", b.samples.len());
}

/// Prevent the optimizer from discarding a value (re-export of the std
/// hint, for benches that import it from criterion).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_closures() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
