//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the provenance codec uses: an owned, cheaply
//! sliceable immutable buffer ([`Bytes`]), a growable write buffer
//! ([`BytesMut`]), and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the codec calls. Cheap cloning/slicing is
//! provided by an `Arc<[u8]>` backing store plus offsets.

use std::ops::Range;
use std::sync::Arc;

/// Read-side cursor over a contiguous buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume and return one byte. Panics if empty.
    fn get_u8(&mut self) -> u8;

    /// Consume a little-endian `u32`. Panics if short.
    fn get_u32_le(&mut self) -> u32;

    /// Consume a little-endian `u64`. Panics if short.
    fn get_u64_le(&mut self) -> u64;

    /// Consume a little-endian `i64`. Panics if short.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Discard the next `n` bytes without materializing them. Panics if
    /// short (matches upstream `Buf::advance`).
    fn advance(&mut self, n: usize);

    /// Consume `len` bytes into a new [`Bytes`]. Panics if short.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

/// Write-side interface for growable buffers.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_u64_le(v as u64);
    }

    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable, cheaply cloneable and sliceable byte buffer that also
/// acts as a consuming read cursor (like upstream `Bytes`).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Copy `src` into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from_vec(src.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// Length of the (unconsumed) buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-range of this buffer.
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for buffer of {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.as_slice()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.as_slice()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.as_slice()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

/// A growable write buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = BytesMut::new();
        w.put_u8(0xAB);
        w.put_u32_le(7);
        w.put_u64_le(u64::MAX - 1);
        w.put_i64_le(-5);
        w.put_slice(b"hey");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -5);
        let tail = r.copy_to_bytes(3);
        assert_eq!(&tail[..], b"hey");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slices_are_zero_copy_views() {
        let b = Bytes::copy_from_slice(&[0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        let s2 = s.slice(1..2);
        assert_eq!(&s2[..], &[2]);
        assert_eq!(b.len(), 5, "original untouched");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::copy_from_slice(&[1]).slice(0..2);
    }

    #[test]
    fn consuming_reads_advance() {
        let mut b = Bytes::copy_from_slice(&[9, 9]);
        assert_eq!(b.remaining(), 2);
        b.get_u8();
        assert_eq!(b.remaining(), 1);
        let rest = b.copy_to_bytes(1);
        assert_eq!(rest.len(), 1);
        assert_eq!(b.remaining(), 0);
    }
}
