//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository cannot reach a crates
//! registry, so the workspace vendors the *minimal* random-number surface
//! it actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`]. The generator is xoshiro256++
//! seeded through SplitMix64 — high-quality, fast, and fully
//! deterministic for a given seed, which is all the graph generators and
//! tests require. It is **not** the same stream as upstream `StdRng`
//! (ChaCha12); seeds here reproduce within this repository only.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG ("standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` via Lemire's multiply-shift with
/// rejection (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty range in gen_range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value interface (subset of upstream `Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(3u64..7);
            assert!((3..7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi, "range endpoints never sampled");
        let f = rng.gen_range(0.5f64..0.75);
        assert!((0.5..0.75).contains(&f));
        let u = rng.gen_range(0usize..5);
        assert!(u < 5);
        let i = rng.gen_range(-3i64..3);
        assert!((-3..3).contains(&i));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
