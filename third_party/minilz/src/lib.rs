//! A minimal LZ77 block compressor with a byte-oriented token stream,
//! in the spirit of LZ4's block format. Vendored because this workspace
//! builds fully offline; implements exactly the subset the provenance
//! store's v3 segment format needs: one-shot block [`compress`] and a
//! bounded, allocation-checked [`decompress`].
//!
//! # Token format
//!
//! The compressed stream is a sequence of tokens:
//!
//! * **Literal run** — a control byte with the high bit clear: the low
//!   7 bits hold `run_len - 1` (1..=128 literal bytes follow).
//! * **Match** — a control byte with the high bit set: the low 7 bits
//!   hold `match_len - MIN_MATCH` (4..=131 bytes), followed by a
//!   little-endian `u16` backward distance (1..=65535). Distances may
//!   reach into bytes produced by the current match (overlapping
//!   copies), which encodes runs.
//!
//! The format is self-terminating only by input exhaustion; callers
//! frame compressed blocks with explicit lengths (the store's record
//! framing already does).

#![warn(missing_docs)]

/// Shortest match worth encoding (a match token costs 3 bytes).
const MIN_MATCH: usize = 4;
/// Longest match one token can encode.
const MAX_MATCH: usize = MIN_MATCH + 127;
/// Longest literal run one token can encode.
const MAX_LITERAL_RUN: usize = 128;
/// Furthest back a match distance can reach (u16 range).
const MAX_DISTANCE: usize = 65535;
/// Hash table size (power of two) for the 4-byte rolling hash.
const HASH_BITS: u32 = 14;

/// Decompression failure: the stream is malformed or would exceed the
/// caller's output bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzError {
    /// A token or its operands ran past the end of the input.
    Truncated,
    /// A match distance points before the start of the output.
    BadDistance {
        /// The offending backward distance.
        distance: usize,
        /// Output bytes produced when the distance was seen.
        produced: usize,
    },
    /// Decompressed output would exceed the caller's `max_out` bound.
    TooLarge {
        /// The caller's output bound.
        max_out: usize,
    },
}

impl std::fmt::Display for LzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzError::Truncated => write!(f, "compressed stream truncated mid-token"),
            LzError::BadDistance { distance, produced } => write!(
                f,
                "match distance {distance} exceeds {produced} produced bytes"
            ),
            LzError::TooLarge { max_out } => {
                write!(f, "decompressed output exceeds the {max_out}-byte bound")
            }
        }
    }
}

impl std::error::Error for LzError {}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let mut word = [0u8; 4];
    word.copy_from_slice(&data[i..i + 4]);
    let word = u32::from_le_bytes(word);
    (word.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input` into a fresh token stream. Deterministic: the same
/// input always yields the same output (greedy parse, fixed hash).
/// Incompressible input grows by at most one control byte per 128
/// literals (~0.8%); callers should keep the raw form when that loses.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut start = from;
        while start < to {
            let run = (to - start).min(MAX_LITERAL_RUN);
            out.push((run - 1) as u8);
            out.extend_from_slice(&input[start..start + run]);
            start += run;
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash4(input, i);
        let candidate = table[h];
        table[h] = i;
        let found = candidate != usize::MAX
            && i - candidate <= MAX_DISTANCE
            && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH];
        if !found {
            i += 1;
            continue;
        }
        // Extend the match as far as the token can encode.
        let mut len = MIN_MATCH;
        let limit = (input.len() - i).min(MAX_MATCH);
        while len < limit && input[candidate + len] == input[i + len] {
            len += 1;
        }
        flush_literals(&mut out, literal_start, i);
        out.push(0x80 | (len - MIN_MATCH) as u8);
        out.extend_from_slice(&((i - candidate) as u16).to_le_bytes());
        // Seed the table through the matched region so later matches
        // can reference it (sparse stride keeps compression O(n)).
        let mut j = i + 1;
        let seed_end = (i + len).min(input.len().saturating_sub(MIN_MATCH));
        while j < seed_end {
            table[hash4(input, j)] = j;
            j += 2;
        }
        i += len;
        literal_start = i;
    }
    flush_literals(&mut out, literal_start, input.len());
    out
}

/// Decompress a token stream produced by [`compress`], refusing to
/// produce more than `max_out` bytes (corrupt length fields must never
/// balloon allocation).
pub fn decompress(input: &[u8], max_out: usize) -> Result<Vec<u8>, LzError> {
    let mut out: Vec<u8> = Vec::with_capacity(input.len().min(max_out));
    let mut i = 0usize;
    while i < input.len() {
        let control = input[i];
        i += 1;
        if control & 0x80 == 0 {
            let run = control as usize + 1;
            if i + run > input.len() {
                return Err(LzError::Truncated);
            }
            if out.len() + run > max_out {
                return Err(LzError::TooLarge { max_out });
            }
            out.extend_from_slice(&input[i..i + run]);
            i += run;
        } else {
            let len = (control & 0x7F) as usize + MIN_MATCH;
            if i + 2 > input.len() {
                return Err(LzError::Truncated);
            }
            let distance = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
            i += 2;
            if distance == 0 || distance > out.len() {
                return Err(LzError::BadDistance {
                    distance,
                    produced: out.len(),
                });
            }
            if out.len() + len > max_out {
                return Err(LzError::TooLarge { max_out });
            }
            // Byte-at-a-time copy: overlapping matches (distance < len)
            // are the intended run encoding.
            let start = out.len() - distance;
            for src in start..start + len {
                let b = out[src];
                out.push(b);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        let unpacked = decompress(&packed, data.len()).unwrap();
        assert_eq!(unpacked, data);
    }

    #[test]
    fn roundtrips_assorted_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcd");
        roundtrip(b"abcdabcdabcdabcd");
        roundtrip(&vec![0u8; 10_000]);
        roundtrip("the quick brown fox jumps over the lazy dog. ".repeat(64).as_bytes());
        let mixed: Vec<u8> = (0..5000u32).flat_map(|x| x.to_le_bytes()).collect();
        roundtrip(&mixed);
    }

    #[test]
    fn roundtrips_pseudorandom_bytes() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn repetitive_input_compresses() {
        let data = b"superstep-superstep-superstep-".repeat(100);
        let packed = compress(&data);
        assert!(packed.len() * 4 < data.len(), "{} vs {}", packed.len(), data.len());
    }

    #[test]
    fn decompress_bounds_output() {
        let data = vec![7u8; 4096];
        let packed = compress(&data);
        assert_eq!(decompress(&packed, 4095), Err(LzError::TooLarge { max_out: 4095 }));
        assert!(decompress(&packed, 4096).is_ok());
    }

    #[test]
    fn malformed_streams_fail_typed() {
        // Literal run past end of input.
        assert_eq!(decompress(&[0x05, b'a'], 100), Err(LzError::Truncated));
        // Match token with no distance bytes.
        assert_eq!(decompress(&[0x80], 100), Err(LzError::Truncated));
        // Distance into nothing.
        assert!(matches!(
            decompress(&[0x00, b'x', 0x80, 0x05, 0x00], 100),
            Err(LzError::BadDistance { .. })
        ));
        // Zero distance is never valid.
        assert!(matches!(
            decompress(&[0x00, b'x', 0x80, 0x00, 0x00], 100),
            Err(LzError::BadDistance { .. })
        ));
    }

    #[test]
    fn overlapping_match_encodes_runs() {
        // "aaaaaaaa...": one literal, then overlapping matches.
        let data = vec![b'a'; 300];
        let packed = compress(&data);
        assert!(packed.len() < 16, "run encoding expected, got {} bytes", packed.len());
        assert_eq!(decompress(&packed, 300).unwrap(), data);
    }
}
