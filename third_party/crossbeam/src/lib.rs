//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the multi-producer channel subset this workspace uses is
//! provided, implemented over `std::sync::mpsc`. Semantics match what
//! the provenance store relies on: unbounded buffering, cloneable
//! senders, FIFO per sender, receiver sees disconnect when all senders
//! drop.

pub mod channel {
    //! Multi-producer, single-consumer unbounded channels.

    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like upstream: no `T: Debug` bound needed.
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => write!(f, "channel is empty and disconnected"),
            }
        }
    }

    /// The sending half; cloneable across threads.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Block until a value arrives, the timeout elapses, or all
        /// senders disconnect.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive attempt.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }

        /// Iterate until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_multi_producer() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(2).unwrap())
                .join()
                .unwrap();
            tx.send(1).unwrap();
            drop(tx);
            let mut got: Vec<i32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn recv_reports_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
