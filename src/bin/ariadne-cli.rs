//! Command-line front-end: run a vertex-centric analytic over an edge
//! list with a PQL provenance query attached.
//!
//! ```text
//! ariadne-cli --graph edges.txt --analytic sssp --source 0 \
//!             --query query.pql --param eps=0.1 [--mode online|layered|naive]
//!
//! ariadne-cli --generate rmat:10:8 --analytic pagerank --builtin pagerank_check
//!
//! ariadne-cli scrub --spool DIR [--repair] [--json]
//! ariadne-cli compact --spool DIR [--json]
//! ariadne-cli serve --spool DIR (--graph FILE | --generate SPEC) [--listen ADDR]
//! ```
//!
//! Analytic values are printed for the first vertices; every query IDB
//! relation is printed (truncated).
//!
//! The `scrub` subcommand re-verifies every record of every segment in
//! a provenance spool directory — including v3 generation-file footers
//! and the spool manifest (see [`ariadne_provenance::scrub_spool`]).
//! Its exit code distinguishes the outcomes: 0 = clean; 1 = operational
//! failure (unreadable/bad directory); 2 = usage error; 3 = damage was
//! found and every instance was repaired losslessly (torn tails
//! salvaged); 4 = irrecoverable damage (data quarantined, or damage
//! found without `--repair`).
//!
//! The `compact` subcommand rewrites the spool into a single indexed
//! generation file (see [`ariadne_provenance::compact_spool`]): small
//! records merge, v1 records upgrade to columnar/compressed frames, and
//! replay reads seek extents instead of scanning files.
//!
//! The `serve` subcommand starts the long-lived query daemon
//! ([`ariadne_serve`]): the spool and graph are opened once, compiled
//! PQL programs and replayed results stay resident, and clients iterate
//! paginated lineage queries over `GET /query` without paying a process
//! start per question.

use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne::{compile, CaptureSpec, CompiledQuery};
use ariadne_analytics::{PageRank, Sssp, Wcc};
use ariadne_graph::generators::{rmat, RmatConfig};
use ariadne_graph::{io, Csr, VertexId};
use ariadne_pql::{Database, Params, Value};
use ariadne_provenance::ProvEncode;
use ariadne_vc::VertexProgram;
use std::process::exit;

struct Options {
    graph: Option<String>,
    generate: Option<String>,
    analytic: String,
    source: u64,
    query_file: Option<String>,
    builtin: Option<String>,
    params: Vec<(String, String)>,
    mode: String,
    threads: usize,
    supersteps: u32,
    explain: bool,
    obs_listen: Option<String>,
    spool: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ariadne-cli (--graph FILE | --generate rmat:SCALE:DEG) [--explain] \\\n\
         \x20       --analytic (pagerank|sssp|wcc) [--source ID] [--supersteps N] \\\n\
         \x20       (--query FILE | --builtin NAME) [--param k=v]... \\\n\
         \x20       [--mode online|layered|naive] [--threads N] [--obs-listen ADDR]\n\
         \x20       [--spool DIR  persist the capture spool for `serve`]\n\
         \n\
         --obs-listen ADDR  serve live telemetry over HTTP while the run\n\
         \x20                  executes: GET /metrics (Prometheus text),\n\
         \x20                  /trace (JSONL span/event dump), /report\n\
         \x20                  (RunReport JSON), /healthz\n\
         \n\
         builtins: pagerank_check, sssp_wcc_value_check,\n\
         \x20         sssp_wcc_no_message_no_change, apt\n\
         params:   numbers parse as floats/ints; 'vN' parses as vertex id\n\
         \n\
         or:    ariadne-cli scrub --spool DIR [--repair] [--json]\n\
         \x20      re-verify every stored record, generation footer and\n\
         \x20      the spool manifest; --repair salvages torn tails and\n\
         \x20      quarantines corrupt files\n\
         \x20      exit: 0 clean / 1 failure / 2 usage / 3 repaired\n\
         \x20      losslessly / 4 irrecoverable damage\n\
         or:    ariadne-cli compact --spool DIR [--json]\n\
         \x20      rewrite the spool into one indexed generation file\n\
         \x20      (merge small records, upgrade v1, compress, index)\n\
         or:    ariadne-cli serve --spool DIR (--graph FILE | --generate SPEC)\n\
         \x20      [--listen ADDR] [--threads N] [--cache-bytes N]\n\
         \x20      [--max-inflight N] [--quota-burst F] [--quota-per-sec F]\n\
         \x20      [--duration SECS]\n\
         \x20      long-lived query service over a captured spool:\n\
         \x20      GET /query?pql=...&cursor=...&limit=N&layers=LO..HI\n\
         \x20      (paginated, LRU replay cache, per-tenant quotas via\n\
         \x20      the X-Ariadne-Tenant header) plus the observability\n\
         \x20      routes on one listener; --duration 0 serves forever"
    );
    exit(2)
}

/// `ariadne-cli scrub --spool DIR [--repair] [--json]`: verify (and
/// optionally repair) a provenance spool offline.
///
/// Exit codes: 0 = clean; 1 = operational failure; 2 = usage; 3 =
/// damage found, every instance repaired losslessly (salvaged); 4 =
/// irrecoverable damage (quarantined, or not repaired at all).
fn run_scrub(args: &[String]) -> ! {
    let mut spool: Option<String> = None;
    let mut repair = false;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spool" => {
                spool = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--spool needs a value");
                    usage()
                }))
            }
            "--repair" => repair = true,
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown scrub argument {other:?}");
                usage()
            }
        }
    }
    let Some(dir) = spool else {
        eprintln!("scrub requires --spool DIR");
        usage()
    };
    // A typo'd path must not report a clean spool (the library treats a
    // missing directory as an empty-but-healthy spool for resume).
    if !std::path::Path::new(&dir).is_dir() {
        eprintln!("scrub failed: {dir} is not a directory");
        exit(1)
    }
    let report = ariadne::scrub_spool(std::path::Path::new(&dir), repair).unwrap_or_else(|e| {
        eprintln!("scrub failed: {e}");
        exit(1)
    });
    if json {
        println!("{}", report.to_json());
    } else {
        println!(
            "scrubbed {}: {} files, {} records / {} tuples verified",
            dir, report.files_checked, report.records_verified, report.tuples_verified
        );
        for d in &report.damage {
            println!(
                "  damaged {} (superstep {}, pred {}): {} [{}]",
                d.path.display(),
                d.superstep,
                d.pred,
                d.detail,
                d.action
            );
        }
        if report.is_clean() {
            println!("spool is clean");
        }
    }
    // Exit code by severity: clean → 0; every damage instance repaired
    // losslessly (torn tails salvaged, manifest rebuilt) → 3; anything
    // quarantined — data actually lost — or damage left unrepaired → 4.
    use ariadne::ScrubAction;
    let code = if report.is_clean() {
        0
    } else if report
        .damage
        .iter()
        .all(|d| matches!(d.action, ScrubAction::Salvaged))
    {
        3
    } else {
        4
    };
    exit(code)
}

/// `ariadne-cli serve --spool DIR (--graph FILE | --generate SPEC)
/// [--listen ADDR] [...]`: the long-lived query service. Opens the
/// captured spool and the graph once, then serves `GET /query`
/// (paginated PQL over layered replay, LRU-cached, admission-controlled)
/// and the whole observability surface on one listener until killed (or
/// for `--duration` seconds, for scripted smoke tests).
fn run_serve(args: &[String]) -> ! {
    let mut spool: Option<String> = None;
    let mut graph_file: Option<String> = None;
    let mut generate: Option<String> = None;
    let mut listen = String::from("127.0.0.1:0");
    let mut config = ariadne_serve::ServeConfig::default();
    let mut duration: u64 = 0;
    let mut it = args.iter();
    let next = |it: &mut std::slice::Iter<String>, what: &str| {
        it.next().cloned().unwrap_or_else(|| {
            eprintln!("{what} needs a value");
            usage()
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spool" => spool = Some(next(&mut it, "--spool")),
            "--graph" => graph_file = Some(next(&mut it, "--graph")),
            "--generate" => generate = Some(next(&mut it, "--generate")),
            "--listen" => listen = next(&mut it, "--listen"),
            "--threads" => {
                config.threads = next(&mut it, "--threads").parse().unwrap_or_else(|_| usage())
            }
            "--cache-bytes" => {
                config.cache_budget_bytes =
                    next(&mut it, "--cache-bytes").parse().unwrap_or_else(|_| usage())
            }
            "--max-inflight" => {
                config.admission.max_in_flight =
                    next(&mut it, "--max-inflight").parse().unwrap_or_else(|_| usage())
            }
            "--quota-burst" => {
                config.admission.quota_burst =
                    next(&mut it, "--quota-burst").parse().unwrap_or_else(|_| usage())
            }
            "--quota-per-sec" => {
                config.admission.quota_per_sec =
                    next(&mut it, "--quota-per-sec").parse().unwrap_or_else(|_| usage())
            }
            "--duration" => {
                duration = next(&mut it, "--duration").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown serve argument {other:?}");
                usage()
            }
        }
    }
    let Some(dir) = spool else {
        eprintln!("serve requires --spool DIR");
        usage()
    };
    if !std::path::Path::new(&dir).is_dir() {
        eprintln!("serve failed: {dir} is not a directory");
        exit(1)
    }
    let graph = graph_from(graph_file.as_deref(), generate.as_deref());
    let store = ariadne_provenance::ProvStore::resume_from_spool(ariadne::StoreConfig {
        spool_dir: Some(std::path::PathBuf::from(&dir)),
        ..ariadne::StoreConfig::in_memory()
    })
    .unwrap_or_else(|e| {
        eprintln!("cannot open spool {dir}: {e}");
        exit(1)
    });
    println!(
        "serve: spool {dir}: {} tuples ({} bytes), layers 0..={}",
        store.tuple_count(),
        store.byte_size(),
        store.max_superstep().map_or_else(|| "-".into(), |s| s.to_string())
    );
    let service = std::sync::Arc::new(ariadne_serve::QueryService::new(graph, store, config));
    let server = ariadne_serve::serve(service, &listen).unwrap_or_else(|e| {
        eprintln!("cannot bind --listen {listen}: {e}");
        exit(1)
    });
    println!(
        "serve: GET /query (+ /metrics /trace /report /healthz) on http://{}",
        server.local_addr()
    );
    if duration > 0 {
        std::thread::sleep(std::time::Duration::from_secs(duration));
        server.shutdown();
        exit(0)
    }
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `ariadne-cli compact --spool DIR [--json]`: rewrite a provenance
/// spool into a single indexed generation file. Exit 0 on success, 1 on
/// failure (a corrupt spool refuses to compact — scrub it first).
fn run_compact(args: &[String]) -> ! {
    let mut spool: Option<String> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spool" => {
                spool = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--spool needs a value");
                    usage()
                }))
            }
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown compact argument {other:?}");
                usage()
            }
        }
    }
    let Some(dir) = spool else {
        eprintln!("compact requires --spool DIR");
        usage()
    };
    if !std::path::Path::new(&dir).is_dir() {
        eprintln!("compact failed: {dir} is not a directory");
        exit(1)
    }
    let report = ariadne::compact_spool(std::path::Path::new(&dir)).unwrap_or_else(|e| {
        eprintln!("compact failed: {e}");
        exit(1)
    });
    if json {
        println!("{}", report.to_json());
    } else {
        println!(
            "compacted {dir}: generation {}, {} segments / {} tuples, {} bytes in -> {} bytes out, {} files removed",
            report.generation,
            report.segments,
            report.tuples,
            report.bytes_in,
            report.bytes_out,
            report.files_removed
        );
    }
    exit(0)
}

fn parse_args() -> Options {
    let mut o = Options {
        graph: None,
        generate: None,
        analytic: "pagerank".into(),
        source: 0,
        query_file: None,
        builtin: None,
        params: Vec::new(),
        mode: "online".into(),
        threads: 1,
        supersteps: 20,
        explain: false,
        obs_listen: None,
        spool: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| {
            eprintln!("{what} needs a value");
            usage()
        });
        match a.as_str() {
            "--graph" => o.graph = Some(next("--graph")),
            "--generate" => o.generate = Some(next("--generate")),
            "--analytic" => o.analytic = next("--analytic"),
            "--source" => o.source = next("--source").parse().unwrap_or_else(|_| usage()),
            "--query" => o.query_file = Some(next("--query")),
            "--builtin" => o.builtin = Some(next("--builtin")),
            "--mode" => o.mode = next("--mode"),
            "--explain" => o.explain = true,
            "--threads" => o.threads = next("--threads").parse().unwrap_or_else(|_| usage()),
            "--supersteps" => {
                o.supersteps = next("--supersteps").parse().unwrap_or_else(|_| usage())
            }
            "--obs-listen" => o.obs_listen = Some(next("--obs-listen")),
            "--spool" => o.spool = Some(next("--spool")),
            "--param" => {
                let kv = next("--param");
                match kv.split_once('=') {
                    Some((k, v)) => o.params.push((k.to_string(), v.to_string())),
                    None => usage(),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    o
}

fn parse_param_value(s: &str) -> Value {
    if let Some(id) = s.strip_prefix('v') {
        if let Ok(n) = id.parse::<u64>() {
            return Value::Id(n);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        return Value::Int(n);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::Float(f);
    }
    Value::str(s)
}

fn load_graph(o: &Options) -> Csr {
    graph_from(o.graph.as_deref(), o.generate.as_deref())
}

/// Shared graph loading for the run and serve entry points: an edge-list
/// file, or a deterministic `rmat:SCALE:DEG` generator spec.
fn graph_from(graph: Option<&str>, generate: Option<&str>) -> Csr {
    if let Some(path) = graph {
        return io::load_edge_list(path).unwrap_or_else(|e| {
            eprintln!("cannot load {path}: {e}");
            exit(1)
        });
    }
    if let Some(spec) = generate {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() == 3 && parts[0] == "rmat" {
            let scale: u32 = parts[1].parse().unwrap_or_else(|_| usage());
            let deg: usize = parts[2].parse().unwrap_or_else(|_| usage());
            return rmat(RmatConfig {
                scale,
                edge_factor: deg,
                ..Default::default()
            });
        }
        usage()
    }
    eprintln!("one of --graph or --generate is required");
    usage()
}

fn load_query(o: &Options) -> CompiledQuery {
    let mut params = Params::new();
    for (k, v) in &o.params {
        params = params.with(k, parse_param_value(v));
    }
    if let Some(name) = &o.builtin {
        let q = match name.as_str() {
            "pagerank_check" => queries::pagerank_check(),
            "sssp_wcc_value_check" => queries::sssp_wcc_value_check(),
            "sssp_wcc_no_message_no_change" => queries::sssp_wcc_no_message_no_change(),
            "apt" => {
                let eps = o
                    .params
                    .iter()
                    .find(|(k, _)| k == "eps")
                    .map(|(_, v)| parse_param_value(v))
                    .unwrap_or(Value::Float(0.01));
                queries::apt("udf_diff", eps)
            }
            other => {
                eprintln!("unknown builtin {other:?}");
                usage()
            }
        };
        return q.unwrap_or_else(|e| {
            eprintln!("query error: {e}");
            exit(1)
        });
    }
    let Some(path) = &o.query_file else {
        eprintln!("one of --query or --builtin is required");
        usage()
    };
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    compile(&src, params).unwrap_or_else(|e| {
        eprintln!("query error: {e}");
        exit(1)
    })
}

fn run_mode<A>(o: &Options, ariadne: &Ariadne, analytic: &A, graph: &Csr, query: &CompiledQuery)
where
    A: VertexProgram,
    A::V: ProvEncode + std::fmt::Debug,
    A::M: ProvEncode,
{
    let (results, label): (Database, &str) = match o.mode.as_str() {
        "online" => {
            let run = ariadne.online(analytic, graph, query).unwrap_or_else(die);
            println!(
                "analytic finished: {} supersteps, {:?}",
                run.metrics.num_supersteps(),
                run.metrics.elapsed
            );
            ariadne_obs::publish_report(run.report().to_json());
            print_values(&run.values);
            (run.query_results, "online")
        }
        "layered" | "naive" => {
            let capture = ariadne
                .capture(analytic, graph, &CaptureSpec::full())
                .unwrap_or_else(die);
            println!(
                "captured {} tuples ({} bytes)",
                capture.store.tuple_count(),
                capture.store.byte_size()
            );
            ariadne_obs::publish_report(capture.report().to_json());
            print_values(&capture.values);
            if o.mode == "layered" {
                let run = ariadne
                    .layered(graph, &capture.store, query)
                    .unwrap_or_else(die);
                (run.query_results, "layered")
            } else {
                let run = ariadne
                    .naive(graph, &capture.store, query)
                    .unwrap_or_else(die);
                (run.database, "naive")
            }
        }
        other => {
            eprintln!("unknown mode {other:?}");
            usage()
        }
    };

    println!("query results ({label} evaluation):");
    for pred in query.query().idbs.keys() {
        let rows = results.sorted(pred);
        println!("  {pred}: {} rows", rows.len());
        for row in rows.iter().take(10) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("    ({})", cells.join(", "));
        }
        if rows.len() > 10 {
            println!("    ... {} more", rows.len() - 10);
        }
    }
}

fn die<T>(e: ariadne::session::AriadneError) -> T {
    eprintln!("error: {e}");
    exit(1)
}

fn print_values<V: std::fmt::Debug>(values: &[V]) {
    let shown = values.len().min(8);
    println!("first {shown} vertex values: {:?}", &values[..shown]);
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("scrub") {
        run_scrub(&argv[2..]);
    }
    if argv.get(1).map(String::as_str) == Some("compact") {
        run_compact(&argv[2..]);
    }
    if argv.get(1).map(String::as_str) == Some("serve") {
        run_serve(&argv[2..]);
    }
    let o = parse_args();
    // Bind the telemetry endpoint before any work happens, so /metrics
    // and /trace are curl-able for the whole run. Shut down gracefully
    // (drain in-flight responses) after the results print.
    let obs_server = o.obs_listen.as_deref().map(|addr| {
        let server = ariadne_obs::ObsServer::bind(addr).unwrap_or_else(|e| {
            eprintln!("cannot bind --obs-listen {addr}: {e}");
            exit(1)
        });
        println!(
            "obs: serving /metrics /trace /report /healthz on http://{}",
            server.local_addr()
        );
        server
    });
    let graph = load_graph(&o);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let query = load_query(&o);
    println!("query direction: {:?}", query.direction());
    if o.explain {
        println!("{}", ariadne_pql::explain(query.query()));
        return;
    }
    let mut ariadne = Ariadne::with_threads(o.threads);
    ariadne.engine.max_supersteps = 10_000;
    // --spool: persist the capture to disk (budget 0 spills every
    // segment immediately), so a later `ariadne-cli serve --spool DIR`
    // can open the same capture.
    if let Some(dir) = &o.spool {
        ariadne.store = ariadne::StoreConfig::spilling(0, std::path::PathBuf::from(dir));
    }

    match o.analytic.as_str() {
        "pagerank" => {
            let pr = PageRank {
                supersteps: o.supersteps,
                ..Default::default()
            };
            run_mode(&o, &ariadne, &pr, &graph, &query);
        }
        "sssp" => {
            let a = Sssp::new(VertexId(o.source));
            run_mode(&o, &ariadne, &a, &graph, &query);
        }
        "wcc" => run_mode(&o, &ariadne, &Wcc, &graph, &query),
        other => {
            eprintln!("unknown analytic {other:?}");
            usage()
        }
    }
    if let Some(server) = obs_server {
        server.shutdown();
    }
}
