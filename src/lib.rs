//! Umbrella crate for the Ariadne reproduction: re-exports the workspace
//! crates and hosts the repository-level examples and integration tests.

pub use ariadne as core;
pub use ariadne_analytics as analytics;
pub use ariadne_graph as graph;
pub use ariadne_pql as pql;
pub use ariadne_provenance as provenance;
pub use ariadne_vc as vc;
