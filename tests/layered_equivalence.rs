//! Layered replay vs the centralized oracle (`to_database` + semi-naive
//! evaluation over one big database), for forward *and* backward queries
//! on random graphs — plus pruning on/off equivalence. The layered
//! strategy is the paper's scalable offline mode; these tests pin its
//! result sets to the simplest possible reference evaluation.

use ariadne::session::Ariadne;
use ariadne::{queries, CaptureSpec, CompiledQuery, LayeredConfig};
use ariadne_analytics::{Sssp, Wcc};
use ariadne_graph::generators::erdos_renyi;
use ariadne_graph::{Csr, VertexId};
use ariadne_pql::Value;
use ariadne_provenance::ProvStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn weighted(g: Csr, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    g.map_weights(|_, _, _| 0.05 + rng.gen::<f64>())
}

fn assert_layered_matches_centralized(
    tag: &str,
    g: &Csr,
    store: &ProvStore,
    query: &CompiledQuery,
) {
    let ariadne = Ariadne::default();
    let layered = ariadne.layered(g, store, query).unwrap();
    let oracle = ariadne.centralized(g, store, query).unwrap();
    for pred in query.query().idbs.keys() {
        assert_eq!(
            layered.query_results.sorted(pred),
            oracle.sorted(pred),
            "{tag}: layered vs centralized disagree on {pred:?}"
        );
    }
}

/// Forward queries: layered replay over captures of SSSP and WCC equals
/// centralized evaluation, across several random graphs.
#[test]
fn forward_layered_matches_centralized_on_random_graphs() {
    for seed in [3u64, 17, 42] {
        let g = weighted(erdos_renyi(70, 220, seed), seed);
        let ariadne = Ariadne::default();
        let capture = ariadne
            .capture(&Sssp::new(VertexId(0)), &g, &CaptureSpec::full())
            .unwrap();
        let apt = queries::apt("udf_diff", Value::Float(0.1)).unwrap();
        assert_layered_matches_centralized("sssp/apt", &g, &capture.store, &apt);
        let q6 = queries::sssp_wcc_no_message_no_change().unwrap();
        assert_layered_matches_centralized("sssp/q6", &g, &capture.store, &q6);

        let wcc_capture = ariadne.capture(&Wcc, &g, &CaptureSpec::full()).unwrap();
        assert_layered_matches_centralized("wcc/q6", &g, &wcc_capture.store, &q6);
    }
}

/// Backward queries: descending layered replay equals centralized
/// evaluation on random graphs, with a target picked from the final
/// layer so the trace spans the whole replay.
#[test]
fn backward_layered_matches_centralized_on_random_graphs() {
    for seed in [5u64, 23] {
        let g = weighted(erdos_renyi(60, 180, seed), seed);
        let ariadne = Ariadne::default();
        let capture = ariadne
            .capture(&Sssp::new(VertexId(0)), &g, &CaptureSpec::full())
            .unwrap();
        let sigma = capture.store.max_superstep().unwrap();
        let target = capture
            .store
            .layer(sigma)
            .unwrap()
            .into_iter()
            .find(|(p, _)| p == "superstep")
            .and_then(|(_, ts)| ts.first().and_then(|t| t[0].as_id()))
            .expect("someone was active in the last superstep");
        let q = queries::backward_lineage(VertexId(target), sigma).unwrap();
        assert_layered_matches_centralized("sssp/backward", &g, &capture.store, &q);
    }
}

/// Predicate pruning must be a pure IO optimization: identical results
/// with and without it, with a strictly positive number of skipped
/// segments on a full multi-predicate capture.
#[test]
fn pruning_is_result_invariant_and_skips_segments() {
    let g = weighted(erdos_renyi(60, 200, 31), 31);
    let ariadne = Ariadne::default();
    let capture = ariadne
        .capture(&Sssp::new(VertexId(0)), &g, &CaptureSpec::full())
        .unwrap();
    // The apt query references 4 of the 5 captured Table-1 predicates.
    let apt = queries::apt("udf_diff", Value::Float(0.1)).unwrap();
    let pruned = ariadne
        .layered_with(&g, &capture.store, &apt, &LayeredConfig::default())
        .unwrap();
    let full = ariadne
        .layered_with(
            &g,
            &capture.store,
            &apt,
            &LayeredConfig {
                prune: false,
                ..LayeredConfig::default()
            },
        )
        .unwrap();
    assert!(
        pruned.segments_skipped > 0,
        "full capture must contain segments the apt query never joins"
    );
    assert_eq!(full.segments_skipped, 0);
    assert!(pruned.bytes_read < full.bytes_read);
    assert_eq!(
        pruned.bytes_read + pruned.bytes_skipped,
        full.bytes_read,
        "pruning partitions the decoded byte volume"
    );
    for pred in apt.query().idbs.keys() {
        assert_eq!(
            pruned.query_results.sorted(pred),
            full.query_results.sorted(pred),
            "pruning changed {pred:?}"
        );
    }
    assert_eq!(
        (pruned.layers, pruned.flush_rounds, pruned.shipped_tuples),
        (full.layers, full.flush_rounds, full.shipped_tuples),
        "pruning must not change the round structure"
    );
}
