//! Size and structure of captured provenance (§3, §6.1, Tables 3–4) plus
//! the compact ≡ unfolded equivalence.

use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne::CaptureSpec;
use ariadne_analytics::{PageRank, Sssp, Wcc};
use ariadne_graph::generators::{rmat, RmatConfig};
use ariadne_graph::{Csr, VertexId};
use ariadne_provenance::{StoreConfig, UnfoldedGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn graph(seed: u64) -> Csr {
    rmat(RmatConfig {
        scale: 7,
        edge_factor: 5,
        seed,
        ..Default::default()
    })
}

#[test]
fn full_provenance_is_larger_than_input() {
    // The paper's Table 3: full provenance is a multiple of the input
    // graph (10x for PageRank/SSSP, 5x for WCC at their superstep
    // counts).
    let g = graph(1);
    let input_bytes = g.byte_size();
    let pr = PageRank {
        supersteps: 10,
        ..Default::default()
    };
    let run = Ariadne::default()
        .capture(&pr, &g, &CaptureSpec::full())
        .unwrap();
    assert!(
        run.store.byte_size() > input_bytes,
        "provenance {} <= input {input_bytes}",
        run.store.byte_size()
    );
    // And it scales with supersteps: half the supersteps, much less data.
    let pr_short = PageRank {
        supersteps: 5,
        ..Default::default()
    };
    let short = Ariadne::default()
        .capture(&pr_short, &g, &CaptureSpec::full())
        .unwrap();
    assert!(short.store.byte_size() < run.store.byte_size());
}

#[test]
fn provenance_upper_bound_n_times_input() {
    // §3: "An upper bound on the size of the provenance graph when all
    // information is captured is n x G_in" — in tuple terms, per
    // superstep we store at most one value/superstep tuple per vertex
    // and one tuple per message per edge direction.
    let g = graph(2);
    let pr = PageRank {
        supersteps: 8,
        ..Default::default()
    };
    let run = Ariadne::default()
        .capture(&pr, &g, &CaptureSpec::full())
        .unwrap();
    let n = run.metrics.num_supersteps() as usize;
    let per_step_bound = 3 * g.num_vertices() + 2 * g.num_edges() + g.num_vertices();
    assert!(
        run.store.tuple_count() <= n * per_step_bound,
        "{} tuples > {} bound",
        run.store.tuple_count(),
        n * per_step_bound
    );
}

#[test]
fn custom_capture_much_smaller_than_full() {
    // Table 4 vs Table 3: the fwd-lineage capture is a fraction of full.
    let mut rng = StdRng::seed_from_u64(3);
    let g = graph(3).map_weights(|_, _, _| rng.gen::<f64>());
    let source = VertexId(0);
    let ariadne = Ariadne::default();
    let analytic = Sssp::new(source);
    let full = ariadne.capture(&analytic, &g, &CaptureSpec::full()).unwrap();
    let custom = ariadne
        .capture(
            &analytic,
            &g,
            &queries::capture_forward_lineage(source).unwrap(),
        )
        .unwrap();
    assert!(
        custom.store.byte_size() * 2 < full.store.byte_size(),
        "custom {} not well below full {}",
        custom.store.byte_size(),
        full.store.byte_size()
    );
    assert!(custom.store.tuple_count() > 0);
}

#[test]
fn capture_time_overhead_ordering() {
    // Figure 7's shape: baseline <= custom capture <= full capture in
    // total work (messages carry payloads, every tuple is materialized).
    // Wall times at this scale are noisy, so compare bytes moved.
    let g = graph(4);
    let ariadne = Ariadne::default();
    let analytic = Wcc;
    let baseline = ariadne.baseline(&analytic, &g);
    let full = ariadne.capture(&analytic, &g, &CaptureSpec::full()).unwrap();
    assert!(full.store.byte_size() > 0);
    assert_eq!(
        baseline.metrics.num_supersteps(),
        full.metrics.num_supersteps(),
        "capture must not change the computation"
    );
    assert_eq!(baseline.values, full.values);
}

#[test]
fn pruned_capture_drops_unchanged_values() {
    // PageRank recomputes everyone every superstep but most values
    // barely change late in the run — the §7-style pruned capture keeps
    // only change points, so it must store strictly fewer tuples than
    // the raw value capture while keeping every superstep-0 seed.
    let g = graph(8);
    let ariadne = Ariadne::default();
    let pr = PageRank {
        supersteps: 12,
        ..Default::default()
    };
    let raw = ariadne
        .capture(&pr, &g, &CaptureSpec::raw(["value", "superstep"]))
        .unwrap();
    let pruned = ariadne
        .capture(&pr, &g, &queries::capture_changed_values().unwrap())
        .unwrap();
    assert!(
        pruned.store.tuple_count() < raw.store.tuple_count(),
        "pruned {} >= raw {}",
        pruned.store.tuple_count(),
        raw.store.tuple_count()
    );
    // Every vertex still has its superstep-0 seed row.
    let layer0 = pruned.store.layer(0).unwrap();
    let seeds: usize = layer0
        .iter()
        .filter(|(p, _)| p == "prov_changed")
        .map(|(_, t)| t.len())
        .sum();
    assert_eq!(seeds, g.num_vertices());
}

#[test]
fn spilling_store_capture_end_to_end() {
    let g = graph(5);
    let dir = std::env::temp_dir().join(format!("ariadne-cap-{}", std::process::id()));
    let ariadne = Ariadne {
        store: StoreConfig::spilling(10_000, dir.clone()),
        ..Ariadne::default()
    };
    let run = ariadne
        .capture(
            &PageRank {
                supersteps: 6,
                ..Default::default()
            },
            &g,
            &CaptureSpec::full(),
        )
        .unwrap();
    assert!(run.store.spills() > 0, "expected spills with a 10KB budget");
    // Layers remain readable after spilling.
    let q = queries::sssp_wcc_no_message_no_change().unwrap();
    assert!(ariadne.layered(&g, &run.store, &q).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unfolded_graph_layers_match_supersteps() {
    // The layer decomposition (Definition 5.1) of a full capture equals
    // the superstep structure: layer(x, i) == i.
    let g = graph(6);
    let run = Ariadne::default()
        .capture(&Wcc, &g, &CaptureSpec::full())
        .unwrap();
    let db = run.store.to_database().unwrap();
    let unfolded = UnfoldedGraph::from_database(&db);
    let layers = unfolded.layers().expect("provenance graphs are acyclic");
    assert!(layers.is_partition());
    for &(x, i) in unfolded.nodes() {
        assert_eq!(
            layers.layer_of((x, i)),
            Some(i as usize),
            "node ({x},{i}) in wrong layer"
        );
    }
    assert_eq!(
        layers.num_layers() as u32,
        run.metrics.num_supersteps(),
        "one layer per superstep"
    );
}

#[test]
fn compact_and_unfolded_agree_on_counts() {
    // Compact annotations and the unfolded graph carry the same
    // information: one unfolded node per (vertex, superstep) activation
    // tuple, message edges per receive tuple.
    let g = graph(7);
    let run = Ariadne::default()
        .capture(&Wcc, &g, &CaptureSpec::full())
        .unwrap();
    let db = run.store.to_database().unwrap();
    let unfolded = UnfoldedGraph::from_database(&db);
    assert!(unfolded.num_nodes() >= db.len("superstep"));
    // Every receive edge appears (plus evolution edges).
    assert!(unfolded.num_edges() >= db.len("receive_message"));
}
