//! Crash/resume determinism: an injected crash at *any* superstep,
//! followed by a resume from the latest valid snapshot, must yield
//! results bit-identical to an uninterrupted run — for the bare engine,
//! the online wrapper and capture runs (store included). Corrupted
//! snapshots fall back or fail with typed errors, never panics.

use ariadne::session::{Ariadne, AriadneError};
use ariadne::{queries, CaptureSpec, CheckpointConfig, EngineConfig, EngineError, FaultPlan};
use ariadne_analytics::{PageRank, Sssp, Wcc};
use ariadne_graph::generators::erdos_renyi::erdos_renyi;
use ariadne_graph::generators::regular::{cycle, path};
use ariadne_graph::{Csr, VertexId};
use ariadne_vc::{RunMetrics, RunResult, VertexProgram};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A unique scratch directory per test invocation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ariadne-cr-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn ckpt_session(dir: &Path, every: u32, fault: Option<Arc<FaultPlan>>) -> Ariadne {
    Ariadne {
        engine: EngineConfig {
            checkpoint: Some(CheckpointConfig::new(dir.to_path_buf(), every)),
            fault,
            ..EngineConfig::default()
        },
        ..Ariadne::default()
    }
}

/// Per-superstep deterministic counters.
type Counters = Vec<(u32, usize, usize, usize)>;

/// Everything deterministic about a run (wall-clock times excluded).
fn fingerprint<V: Clone>(r: &RunResult<V>) -> (Vec<V>, Counters) {
    (r.values.clone(), counters(&r.metrics))
}

fn counters(m: &RunMetrics) -> Counters {
    m.supersteps
        .iter()
        .map(|s| (s.superstep, s.active_vertices, s.messages_sent, s.message_bytes))
        .collect()
}

/// Crash at superstep `kill`, resume, and check the result against the
/// uninterrupted reference. Returns whether the fault actually fired
/// (kills beyond the last superstep never trigger).
fn crash_resume_matches<A>(analytic: &A, graph: &Csr, reference: &RunResult<A::V>, kill: u32) -> bool
where
    A: VertexProgram,
    A::V: ariadne::Snapshot + Clone + PartialEq + std::fmt::Debug,
    A::M: ariadne::Snapshot,
{
    let dir = scratch(&format!("k{kill}"));
    let plan = FaultPlan::new();
    plan.kill_at_superstep(kill);
    let crashed = ckpt_session(&dir, 2, Some(plan)).baseline_checkpointed(analytic, graph);
    match crashed {
        Err(AriadneError::Engine(EngineError::InjectedCrash { superstep })) => {
            assert_eq!(superstep, kill);
        }
        Ok(_) => {
            // The run finished before the fault point; nothing to resume.
            std::fs::remove_dir_all(&dir).ok();
            return false;
        }
        Err(other) => panic!("unexpected failure: {other}"),
    }
    let resumed = ckpt_session(&dir, 2, None)
        .resume_baseline(analytic, graph)
        .expect("resume after crash");
    assert_eq!(
        fingerprint(reference),
        fingerprint(&resumed),
        "kill at superstep {kill} diverged"
    );
    assert_eq!(reference.aggregates, resumed.aggregates);
    std::fs::remove_dir_all(&dir).ok();
    true
}

#[test]
fn pagerank_resume_is_bit_identical_at_every_superstep() {
    let g = erdos_renyi(40, 160, 7);
    let pr = PageRank {
        supersteps: 6,
        ..PageRank::default()
    };
    let reference = Ariadne::default().baseline(&pr, &g);
    let mut fired = 0;
    for kill in 0..reference.supersteps() {
        if crash_resume_matches(&pr, &g, &reference, kill) {
            fired += 1;
        }
    }
    assert!(fired >= 3, "want >=3 exercised fault points, got {fired}");
}

#[test]
fn sssp_resume_is_bit_identical_at_every_superstep() {
    let g = erdos_renyi(40, 160, 11);
    let sssp = Sssp::new(VertexId(0));
    let reference = Ariadne::default().baseline(&sssp, &g);
    let mut fired = 0;
    for kill in 0..reference.supersteps() {
        if crash_resume_matches(&sssp, &g, &reference, kill) {
            fired += 1;
        }
    }
    assert!(fired >= 3, "want >=3 exercised fault points, got {fired}");
}

#[test]
fn wcc_resume_is_bit_identical_at_every_superstep() {
    let g = cycle(16);
    let reference = Ariadne::default().baseline(&Wcc, &g);
    let mut fired = 0;
    for kill in 0..reference.supersteps() {
        if crash_resume_matches(&Wcc, &g, &reference, kill) {
            fired += 1;
        }
    }
    assert!(fired >= 3, "want >=3 exercised fault points, got {fired}");
}

#[test]
fn parallel_resume_matches_sequential_reference() {
    // Crash a 4-worker run and resume with 4 workers: still identical to
    // the sequential uninterrupted reference (engine determinism).
    let g = erdos_renyi(40, 160, 3);
    let pr = PageRank {
        supersteps: 6,
        ..PageRank::default()
    };
    let reference = Ariadne::default().baseline(&pr, &g);
    let dir = scratch("par");
    let plan = FaultPlan::new();
    plan.kill_at_superstep(3);
    let mut crashed = ckpt_session(&dir, 2, Some(plan));
    crashed.engine.threads = 4;
    assert!(matches!(
        crashed.baseline_checkpointed(&pr, &g),
        Err(AriadneError::Engine(EngineError::InjectedCrash { superstep: 3 }))
    ));
    let mut resumer = ckpt_session(&dir, 2, None);
    resumer.engine.threads = 4;
    let resumed = resumer.resume_baseline(&pr, &g).unwrap();
    assert_eq!(fingerprint(&reference), fingerprint(&resumed));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn online_run_resumes_with_query_state() {
    // The query partition (database, frontiers, marks) is part of the
    // snapshot: resuming mid-run loses no derived tuples.
    let g = path(8);
    let q = queries::sssp_wcc_no_message_no_change().unwrap();
    let reference = Ariadne::default().online(&Wcc, &g, &q).unwrap();

    let dir = scratch("online");
    let plan = FaultPlan::new();
    plan.kill_at_superstep(2);
    let err = ckpt_session(&dir, 1, Some(plan))
        .online_checkpointed(&Wcc, &g, &q)
        .expect_err("fault must fire");
    assert!(matches!(
        err,
        AriadneError::Engine(EngineError::InjectedCrash { superstep: 2 })
    ));
    let resumed = ckpt_session(&dir, 1, None)
        .resume_online(&Wcc, &g, &q)
        .unwrap();
    assert_eq!(reference.values, resumed.values);
    for name in ["no_message", "no_change"] {
        assert_eq!(
            reference.query_results.sorted(name),
            resumed.query_results.sorted(name),
            "relation {name} diverged across resume"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn capture_resume_recovers_an_identical_store() {
    // Crash a spooling capture, resume it, and compare every layer of the
    // recovered store against an uninterrupted capture. Already-spilled
    // layers are re-attached (sealed) and re-ingestions are no-ops.
    let g = path(8);

    let ref_dir = scratch("cap-ref");
    let mut reference_session = ckpt_session(&ref_dir.join("ckpt"), 1, None);
    reference_session.store =
        ariadne::StoreConfig::spilling(1, ref_dir.join("spool"));
    let reference = reference_session
        .capture_checkpointed(&Wcc, &g, &CaptureSpec::full())
        .unwrap();

    let dir = scratch("cap");
    let plan = FaultPlan::new();
    plan.kill_at_superstep(2);
    let mut crashed_session = ckpt_session(&dir.join("ckpt"), 1, Some(plan));
    crashed_session.store = ariadne::StoreConfig::spilling(1, dir.join("spool"));
    let err = crashed_session
        .capture_checkpointed(&Wcc, &g, &CaptureSpec::full())
        .expect_err("fault must fire");
    assert!(matches!(
        err,
        AriadneError::Engine(EngineError::InjectedCrash { superstep: 2 })
    ));

    let mut resume_session = ckpt_session(&dir.join("ckpt"), 1, None);
    resume_session.store = ariadne::StoreConfig::spilling(1, dir.join("spool"));
    let resumed = resume_session
        .resume_capture(&Wcc, &g, &CaptureSpec::full())
        .unwrap();

    assert_eq!(reference.values, resumed.values);
    assert_eq!(reference.store.tuple_count(), resumed.store.tuple_count());
    assert_eq!(reference.store.max_superstep(), resumed.store.max_superstep());
    if let Some(max) = reference.store.max_superstep() {
        for s in 0..=max {
            let mut a = reference.store.layer(s).unwrap();
            let mut b = resumed.store.layer(s).unwrap();
            for (_, t) in a.iter_mut().chain(b.iter_mut()) {
                t.sort();
            }
            a.sort_by(|x, y| x.0.cmp(&y.0));
            b.sort_by(|x, y| x.0.cmp(&y.0));
            assert_eq!(a, b, "layer {s} diverged across resume");
        }
    }
    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_newest_checkpoint_falls_back_to_older_one() {
    let g = cycle(12);
    let reference = Ariadne::default().baseline(&Wcc, &g);

    let dir = scratch("fallback");
    let plan = FaultPlan::new();
    plan.kill_at_superstep(4).corrupt_checkpoint(3);
    assert!(matches!(
        ckpt_session(&dir, 1, Some(plan)).baseline_checkpointed(&Wcc, &g),
        Err(AriadneError::Engine(EngineError::InjectedCrash { superstep: 4 }))
    ));
    // The superstep-3 snapshot is corrupt; resume silently falls back to
    // the superstep-2 one and still converges to the same result.
    let resumed = ckpt_session(&dir, 1, None)
        .resume_baseline(&Wcc, &g)
        .unwrap();
    assert_eq!(fingerprint(&reference), fingerprint(&resumed));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_newest_checkpoint_falls_back_to_older_one() {
    // A checkpoint truncated mid-write (torn tail, not a flipped byte)
    // must be skipped in favour of the previous complete snapshot.
    let g = cycle(12);
    let reference = Ariadne::default().baseline(&Wcc, &g);

    let dir = scratch("torn");
    let plan = FaultPlan::new();
    plan.kill_at_superstep(4).truncate_checkpoint(3);
    assert!(matches!(
        ckpt_session(&dir, 1, Some(plan)).baseline_checkpointed(&Wcc, &g),
        Err(AriadneError::Engine(EngineError::InjectedCrash { superstep: 4 }))
    ));
    let resumed = ckpt_session(&dir, 1, None)
        .resume_baseline(&Wcc, &g)
        .unwrap();
    assert_eq!(fingerprint(&reference), fingerprint(&resumed));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_checkpoints_corrupt_is_a_typed_error() {
    let g = cycle(8);
    let dir = scratch("allbad");
    let plan = FaultPlan::new();
    plan.kill_at_superstep(2);
    assert!(ckpt_session(&dir, 1, Some(plan))
        .baseline_checkpointed(&Wcc, &g)
        .is_err());
    // Truncate every snapshot to garbage.
    let mut clobbered = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().and_then(|e| e.to_str()) == Some("snap") {
            std::fs::write(&p, b"AR").unwrap();
            clobbered += 1;
        }
    }
    assert!(clobbered > 0, "expected snapshot files in {dir:?}");
    let err = ckpt_session(&dir, 1, None)
        .resume_baseline(&Wcc, &g)
        .expect_err("all-corrupt checkpoints must fail loudly");
    assert!(
        matches!(
            err,
            AriadneError::Engine(EngineError::Corrupt { .. } | EngineError::Io { .. })
        ),
        "expected typed corruption error, got {err:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_without_checkpoints_is_a_typed_error() {
    let g = cycle(8);
    let dir = scratch("none");
    let err = ckpt_session(&dir, 1, None)
        .resume_baseline(&Wcc, &g)
        .expect_err("nothing to resume from");
    assert!(matches!(
        err,
        AriadneError::Engine(EngineError::NoCheckpoint { .. } | EngineError::Io { .. })
    ));
}

#[test]
fn graph_mismatch_on_resume_is_a_typed_error() {
    let g = cycle(12);
    let dir = scratch("mismatch");
    let plan = FaultPlan::new();
    plan.kill_at_superstep(2);
    assert!(ckpt_session(&dir, 1, Some(plan))
        .baseline_checkpointed(&Wcc, &g)
        .is_err());
    // Resuming against a differently-sized graph must be rejected, not
    // silently produce garbage.
    let smaller = cycle(6);
    let err = ckpt_session(&dir, 1, None)
        .resume_baseline(&Wcc, &smaller)
        .expect_err("graph mismatch must be rejected");
    assert!(matches!(
        err,
        AriadneError::Engine(EngineError::GraphMismatch { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}
