//! The durability contract, exhaustively: torn writes at every byte
//! offset of both segment formats salvage back to a record boundary
//! (never returning data a clean run's prefix would not have), scrub
//! detects every injected bit flip, repair quarantines irrecoverable
//! segments so a strict open succeeds and degraded reads report exactly
//! the loss, and an out-of-space capture under `DropCapture` completes
//! the analytic run with a poisoned store instead of failing it.

use ariadne_pql::Value;
use ariadne_provenance::{
    compact_spool, scrub_spool, LayerFilter, ProvStore, ReadBackend, ReadPolicy, ScrubAction,
    SegmentFormat, StoreConfig, StoreError,
};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ariadne-salvage-{tag}-{}", std::process::id()))
}

/// Truncate one segment file at *every* byte offset and resume. Each
/// cut must come back as an exact record-granularity prefix of the
/// clean run: whole records before the cut survive, the torn tail is
/// backed up to a `.torn` sidecar and truncated away, and nothing the
/// clean run did not hold is ever returned.
fn torn_write_matrix(format: SegmentFormat, tag: &str) {
    let dir = temp_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let seg_path = dir.join("seg-0-value.bin");
    let sidecar = dir.join("seg-0-value.bin.torn");

    // Four ingests into one segment -> one spool file of four records.
    // Record the file length after each ingest: those are the only
    // valid salvage points.
    let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()).with_format(format));
    let mut boundaries = Vec::new();
    let mut batches: Vec<Vec<Vec<Value>>> = Vec::new();
    for b in 0..4i64 {
        let batch: Vec<Vec<Value>> = (0..5u64).map(|v| vec![Value::Id(v), Value::Int(b)]).collect();
        store.ingest(0, "value", batch.clone()).unwrap();
        batches.push(batch);
        boundaries.push(std::fs::metadata(&seg_path).unwrap().len() as usize);
    }
    drop(store);
    let clean = std::fs::read(&seg_path).unwrap();
    assert_eq!(*boundaries.last().unwrap(), clean.len());

    for cut in 0..=clean.len() {
        std::fs::write(&seg_path, &clean[..cut]).unwrap();
        let _ = std::fs::remove_file(&sidecar);

        let resumed = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone()))
            .unwrap_or_else(|e| panic!("cut {cut}: resume must salvage, got {e}"));
        let k = boundaries.iter().filter(|b| **b <= cut).count();
        let expect: Vec<Vec<Value>> = batches[..k].concat();
        let read = resumed.layer_read(0, &LayerFilter::all()).unwrap();
        let got: Vec<Vec<Value>> = read
            .tuples
            .iter()
            .flat_map(|(_, t)| t.iter().cloned())
            .collect();
        assert_eq!(got, expect, "cut {cut}: salvage is not a clean-run record prefix");

        let at_boundary = cut == 0 || boundaries.contains(&cut);
        let valid_end = if k > 0 { boundaries[k - 1] } else { 0 };
        if at_boundary {
            assert_eq!(resumed.salvaged_records(), 0, "cut {cut}: boundary needs no salvage");
            assert!(!sidecar.exists(), "cut {cut}: no sidecar at a record boundary");
        } else {
            assert_eq!(resumed.salvaged_records(), k, "cut {cut}: salvaged record count");
            assert!(sidecar.exists(), "cut {cut}: torn bytes must be backed up first");
            assert_eq!(
                std::fs::metadata(&seg_path).unwrap().len() as usize,
                valid_end,
                "cut {cut}: file truncated back to the last whole record"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_matrix_v1() {
    torn_write_matrix(SegmentFormat::V1, "torn-v1");
}

#[test]
fn torn_write_matrix_v2() {
    torn_write_matrix(SegmentFormat::V2, "torn-v2");
}

#[test]
fn torn_write_matrix_v3() {
    torn_write_matrix(SegmentFormat::V3, "torn-v3");
}

/// Flip every bit of every byte of every spool file, one at a time: a
/// detection-only scrub must report damage for each flip (CRCs over the
/// payload, framed magics/footers and length fields leave no byte whose
/// corruption can pass), and must report the spool clean once restored.
fn bit_flip_matrix(format: SegmentFormat, tag: &str) {
    let dir = temp_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()).with_format(format));
    for s in 0..2u32 {
        let batch: Vec<Vec<Value>> = (0..6u64)
            .map(|v| vec![Value::Id(v), Value::Int(s as i64)])
            .collect();
        store.ingest(s, "value", batch).unwrap();
    }
    drop(store);

    let files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "bin"))
        .collect();
    assert_eq!(files.len(), 2);

    for path in &files {
        let clean = std::fs::read(path).unwrap();
        for i in 0..clean.len() {
            for bit in 0..8u8 {
                let mut bytes = clean.clone();
                bytes[i] ^= 1 << bit;
                std::fs::write(path, &bytes).unwrap();
                let report = scrub_spool(&dir, false).unwrap();
                assert!(
                    !report.is_clean(),
                    "flip of bit {bit} at byte {i} of {} went undetected",
                    path.display()
                );
                assert!(
                    report.damage.iter().any(|d| d.path == *path),
                    "flip at byte {i}: damage blamed on the wrong file"
                );
            }
        }
        std::fs::write(path, &clean).unwrap();
    }
    assert!(scrub_spool(&dir, false).unwrap().is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_matrix_v1() {
    bit_flip_matrix(SegmentFormat::V1, "flip-v1");
}

#[test]
fn bit_flip_matrix_v2() {
    bit_flip_matrix(SegmentFormat::V2, "flip-v2");
}

#[test]
fn bit_flip_matrix_v3() {
    bit_flip_matrix(SegmentFormat::V3, "flip-v3");
}

/// The repair contract end to end: detect -> repair (quarantine) ->
/// strict open succeeds -> strict reads of the damaged layer are a
/// typed error -> degraded reads report exactly the quarantined loss ->
/// a second scrub is clean.
#[test]
fn repair_then_strict_open_and_degraded_loss() {
    let dir = temp_dir("repair");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
    for s in 0..3u32 {
        let batch: Vec<Vec<Value>> = (0..8u64)
            .map(|v| vec![Value::Id(v), Value::Int(s as i64)])
            .collect();
        store.ingest(s, "value", batch).unwrap();
    }
    drop(store);

    // Corrupt a payload byte inside a complete frame of the middle
    // layer: CRC-detectable, not salvageable.
    let victim = dir.join("seg-1-value.bin");
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[20] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();

    let detect = scrub_spool(&dir, false).unwrap();
    assert!(!detect.is_clean());
    assert!(!detect.repaired);
    assert!(detect.damage.iter().all(|d| d.action == ScrubAction::None));

    let repair = scrub_spool(&dir, true).unwrap();
    assert!(repair.repaired);
    assert!(repair
        .damage
        .iter()
        .any(|d| d.action == ScrubAction::Quarantined));
    assert!(dir.join("quarantine").join("seg-1-value.bin").exists());

    // Strict open of the repaired spool succeeds; intact layers read
    // fully under the default strict policy.
    let resumed = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
    for s in [0u32, 2] {
        let read = resumed.layer_read(s, &LayerFilter::all()).unwrap();
        assert_eq!(read.tuples.iter().map(|(_, t)| t.len()).sum::<usize>(), 8);
        assert!(read.degradation.is_clean());
    }

    // The quarantined layer: strict is typed, degraded counts the loss.
    let err = resumed.layer_read(1, &LayerFilter::all()).unwrap_err();
    assert!(matches!(err, StoreError::Quarantined { .. }), "{err:?}");
    let read = resumed
        .layer_read_with(1, &LayerFilter::all(), ReadPolicy::Degraded)
        .unwrap();
    assert_eq!(read.degradation.segments_skipped, 1);
    assert!(!read.degradation.is_clean());
    assert_eq!(read.tuples.iter().map(|(_, t)| t.len()).sum::<usize>(), 0);

    assert!(scrub_spool(&dir, false).unwrap().is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Out-of-space during capture under `OnSpillError::DropCapture`: the
/// analytic run completes with correct values, the store is poisoned
/// (strict reads fail typed with a chained source; degraded reads
/// disclose the dropped batches), and the run report records the drop.
#[test]
fn enospc_drop_capture_completes_the_run() {
    use ariadne::session::Ariadne;
    use ariadne::{CaptureSpec, FaultPlan, OnSpillError, ReadPolicy, StoreConfig};
    use ariadne_analytics::Sssp;
    use ariadne_graph::generators::regular::path;
    use ariadne_graph::VertexId;
    use std::error::Error;

    let dir = temp_dir("enospc");
    let _ = std::fs::remove_dir_all(&dir);
    let plan = FaultPlan::new();
    plan.enospc_after_bytes(0);

    let ariadne = Ariadne {
        store: StoreConfig::spilling(0, dir.clone())
            .with_fault(plan)
            .with_on_spill_error(OnSpillError::DropCapture),
        ..Ariadne::default()
    };

    let graph = path(32);
    let run = ariadne
        .capture(&Sssp::new(VertexId(0)), &graph, &CaptureSpec::full())
        .expect("run completes despite the full disk");
    assert_eq!(run.values.len(), 32);
    assert_eq!(run.values[31], 31.0);

    let store = &run.store;
    assert!(store.poisoned().is_some(), "spill failure must poison");
    assert!(store.dropped_batches() > 0);

    let err = store
        .layer_read_with(0, &LayerFilter::all(), ReadPolicy::Strict)
        .unwrap_err();
    assert!(matches!(err, StoreError::Degraded { .. }), "{err:?}");
    assert!(err.source().is_some(), "poison cause must be chained");

    let read = store
        .layer_read_with(0, &LayerFilter::all(), ReadPolicy::Degraded)
        .unwrap();
    assert!(!read.degradation.is_clean());

    let report = run.report();
    let store_report = report.store.expect("capture run reports its store");
    assert!(store_report.dropped_batches > 0);
    assert_eq!(store_report.quarantined_segments, 0);
    let json = report.to_json();
    assert!(json.contains("\"dropped_batches\":"), "{json}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Canonical logical content of a store: every relation, sorted. Two
/// spools hold the same provenance iff their snapshots are equal.
fn snapshot(store: &ProvStore) -> Vec<(String, Vec<Vec<Value>>)> {
    let db = store.to_database().unwrap();
    let names: Vec<String> = db.iter().map(|(n, _)| n.to_string()).collect();
    names.into_iter().map(|n| (n.clone(), db.sorted(&n))).collect()
}

fn spool_names(dir: &PathBuf) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

/// Compaction over a spool holding all three record formats at once:
/// the rewrite is logically bit-identical under `to_database()`, under
/// both read backends, and a second pass (nothing left to merge) is
/// idempotent on content while still bumping the generation.
#[test]
fn compact_mixed_format_spool_bit_identical_and_idempotent() {
    let dir = temp_dir("compact-mixed");
    let _ = std::fs::remove_dir_all(&dir);
    let formats = [SegmentFormat::V1, SegmentFormat::V2, SegmentFormat::V3];
    for (s, format) in formats.iter().enumerate() {
        let config = StoreConfig::spilling(0, dir.clone()).with_format(*format);
        let mut store = if s == 0 {
            ProvStore::new(config)
        } else {
            ProvStore::resume_from_spool(config).unwrap()
        };
        let batch: Vec<Vec<Value>> = (0..32u64)
            .map(|v| vec![Value::Id(v), Value::Int(s as i64)])
            .collect();
        store.ingest(s as u32, "value", batch).unwrap();
        store
            .ingest(
                s as u32,
                "sent",
                (0..7u64).map(|v| vec![Value::Id(v), Value::Id(v + 1)]).collect(),
            )
            .unwrap();
        drop(store);
    }

    let baseline = {
        let store = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
        snapshot(&store)
    };

    let r1 = compact_spool(&dir).unwrap();
    assert_eq!(r1.generation, 1);
    assert_eq!(r1.segments, 6, "3 layers x 2 predicates");
    assert_eq!(r1.tuples, 3 * (32 + 7));
    assert_eq!(r1.files_removed, 6);

    let names = spool_names(&dir);
    assert!(!names.iter().any(|n| n.ends_with(".bin")), "{names:?}");
    assert!(names.iter().any(|n| n == "index.ars"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("gen-1-")), "{names:?}");

    for backend in [ReadBackend::Buffered, ReadBackend::Mmap] {
        let store = ProvStore::resume_from_spool(
            StoreConfig::spilling(0, dir.clone()).with_read_backend(backend),
        )
        .unwrap();
        assert_eq!(snapshot(&store), baseline, "{backend:?}");
        assert_eq!(store.max_superstep(), Some(2), "{backend:?}");
    }

    let r2 = compact_spool(&dir).unwrap();
    assert_eq!(r2.generation, 2);
    assert_eq!(r2.tuples, r1.tuples, "re-compaction carries every tuple");
    let store = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
    assert_eq!(snapshot(&store), baseline, "second pass changed the content");
    assert!(scrub_spool(&dir, false).unwrap().is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill compaction at every step of its publish protocol (before the
/// generation tmp write, between tmp write and rename, between rename
/// and manifest write, between manifest tmp write and swap, and after
/// the swap but before the superseded files are deleted). Whichever
/// step the crash lands on, the spool must resume to exactly the
/// pre-compaction content, leave no `.tmp` litter, scrub clean, and
/// accept a fresh compaction.
#[test]
fn compaction_kill_matrix_always_recoverable() {
    use ariadne::FaultPlan;
    for step in 0..=4u32 {
        let dir = temp_dir(&format!("compact-kill-{step}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
        for s in 0..3u32 {
            store
                .ingest(
                    s,
                    "value",
                    (0..16u64).map(|v| vec![Value::Id(v), Value::Int(s as i64)]).collect(),
                )
                .unwrap();
        }
        drop(store);
        let baseline = snapshot(
            &ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap(),
        );

        let plan = FaultPlan::new();
        plan.kill_at_compact_step(step);
        let mut store = ProvStore::resume_from_spool(
            StoreConfig::spilling(0, dir.clone()).with_fault(plan),
        )
        .unwrap();
        let err = store.compact().unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "step {step}: {err:?}");
        drop(store); // the crash: in-memory state dies with the process

        let resumed = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
        assert_eq!(snapshot(&resumed), baseline, "step {step}: content changed");
        drop(resumed);
        let names = spool_names(&dir);
        assert!(!names.iter().any(|n| n.ends_with(".tmp")), "step {step}: {names:?}");
        assert!(scrub_spool(&dir, false).unwrap().is_clean(), "step {step}");

        let report = compact_spool(&dir).unwrap();
        assert_eq!(report.tuples, 48, "step {step}");
        let compacted =
            ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
        assert_eq!(snapshot(&compacted), baseline, "step {step}: compaction changed content");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Flip every bit of every byte of a compacted spool — the generation
/// file (record frames, indexed footer, trailer) and the manifest —
/// one at a time: a detection-only scrub must catch each flip and
/// blame the flipped file.
#[test]
fn compacted_footer_and_manifest_bit_flips_detected() {
    let dir = temp_dir("flip-v3-gen");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
    store
        .ingest(0, "value", (0..3u64).map(|v| vec![Value::Id(v), Value::Int(0)]).collect())
        .unwrap();
    store
        .ingest(1, "value", (0..3u64).map(|v| vec![Value::Id(v), Value::Int(1)]).collect())
        .unwrap();
    drop(store);
    compact_spool(&dir).unwrap();

    let files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .collect();
    assert_eq!(files.len(), 2, "{files:?}"); // gen-1-0.ars3 + index.ars

    for path in &files {
        let clean = std::fs::read(path).unwrap();
        for i in 0..clean.len() {
            for bit in 0..8u8 {
                let mut bytes = clean.clone();
                bytes[i] ^= 1 << bit;
                std::fs::write(path, &bytes).unwrap();
                let report = scrub_spool(&dir, false).unwrap();
                assert!(
                    !report.is_clean(),
                    "flip of bit {bit} at byte {i} of {} went undetected",
                    path.display()
                );
                assert!(
                    report.damage.iter().any(|d| d.path == *path),
                    "flip at byte {i} of {}: damage blamed elsewhere",
                    path.display()
                );
            }
        }
        std::fs::write(path, &clean).unwrap();
    }
    assert!(scrub_spool(&dir, false).unwrap().is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: the cached `max_superstep` must be recomputed when a
/// repair drains the highest layer. Salvage that keeps zero records
/// drops the layer entirely (the cache must shrink); quarantine keeps
/// the layer visible (the data existed — degraded reads report it).
#[test]
fn repair_recomputes_max_superstep_when_highest_layer_drains() {
    // Salvage-to-empty: the whole highest-layer file is one torn
    // record; repair truncates it to zero records and the max drops.
    let dir = temp_dir("maxstep-salvage");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
    for s in 0..3u32 {
        store
            .ingest(s, "value", (0..8u64).map(|v| vec![Value::Id(v), Value::Int(s as i64)]).collect())
            .unwrap();
    }
    assert_eq!(store.max_superstep(), Some(2));
    let seg = dir.join("seg-2-value.bin");
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..7]).unwrap(); // mid-header tear at byte 0
    let report = store.scrub(true).unwrap();
    assert!(report.damage.iter().any(|d| d.action == ScrubAction::Salvaged));
    assert_eq!(
        store.max_superstep(),
        Some(1),
        "drained highest layer must drop out of the cached max"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Quarantine: the layer's data existed and was lost, so the layer
    // itself remains addressable (strict reads fail typed, degraded
    // reads disclose the loss) and the max stays put.
    let dir = temp_dir("maxstep-quarantine");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
    for s in 0..3u32 {
        store
            .ingest(s, "value", (0..8u64).map(|v| vec![Value::Id(v), Value::Int(s as i64)]).collect())
            .unwrap();
    }
    let seg = dir.join("seg-2-value.bin");
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes[20] ^= 0x01; // payload corruption inside a complete frame
    std::fs::write(&seg, &bytes).unwrap();
    let report = store.scrub(true).unwrap();
    assert!(report.damage.iter().any(|d| d.action == ScrubAction::Quarantined));
    assert_eq!(store.max_superstep(), Some(2), "quarantined layers stay visible");
    assert!(matches!(
        store.layer_read(2, &LayerFilter::all()).unwrap_err(),
        StoreError::Quarantined { .. }
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
