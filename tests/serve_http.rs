//! End-to-end tests of the query service: cursor determinism across
//! thread counts and page sizes, and the HTTP plane over real TCP
//! (pagination, cache hits, admission rejections, shared obs routes).
//!
//! Tests serialize on a file-level mutex: the metric registry is
//! process-global and the counter-delta assertions below would race
//! under the default parallel test runner.

use ariadne::session::Ariadne;
use ariadne::{compile, run_layered_with, CaptureSpec, LayeredConfig};
use ariadne_analytics::Sssp;
use ariadne_graph::generators::regular::path;
use ariadne_graph::{Csr, VertexId};
use ariadne_pql::{Params, Tuple, Value};
use ariadne_provenance::ProvStore;
use ariadne_serve::{
    serve, AdmissionConfig, QueryRequest, QueryService, ServeConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

fn serialize() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The paper's Query 10 (backward lineage), parameterized on the traced
/// vertex and superstep — the serving plane's marquee workload.
const BACKWARD_PQL: &str = "back_trace(x, i) :- superstep(x, i), i = $sigma, x = $alpha.
back_trace(x, i) :- send_message(x, y, m, i), back_trace(y, j), j = i + 1.
back_lineage(x, d) :- back_trace(x, i), value(x, d, i), i = 0.";

/// Capture SSSP on a 16-vertex path. Deterministic: every call yields a
/// bit-identical store, so each service instance serves the same data.
fn captured() -> (Csr, ProvStore, u32) {
    let g = path(16);
    let capture = Ariadne::default()
        .capture(&Sssp::new(VertexId(0)), &g, &CaptureSpec::full())
        .expect("capture");
    let last = capture.store.max_superstep().expect("nonempty capture");
    (g, capture.store, last)
}

/// Flatten a replay database in the service's pagination order:
/// predicate name ascending, tuples in relation-sorted order.
fn flatten(db: &ariadne_pql::Database) -> Vec<(String, Tuple)> {
    let mut rows = Vec::new();
    for (pred, _) in db.iter() {
        let pred = pred.to_string();
        for tuple in db.sorted(&pred) {
            rows.push((pred.clone(), tuple));
        }
    }
    rows
}

fn replay_bytes_counter() -> u64 {
    ariadne_obs::registry()
        .snapshot()
        .counter("serve_replay_bytes_total")
        .unwrap_or(0)
}

/// Satellite: paging backward lineage must be bit-identical to the
/// un-paged replay at every thread count and page size, cold cache and
/// warm — a cursor is a durable address, not a snapshot of scheduler
/// luck.
#[test]
fn cursor_paging_is_bit_identical_across_threads_and_page_sizes() {
    let _gate = serialize();
    let (graph, store, last) = captured();
    let sigma = last.to_string();
    let alpha = "v15";

    // Un-paged reference, computed directly on the replay engine.
    let reference_query = compile(
        BACKWARD_PQL,
        Params::new()
            .with("alpha", Value::Id(15))
            .with("sigma", Value::Int(last as i64)),
    )
    .expect("compile");
    let reference_run =
        run_layered_with(&graph, &store, &reference_query, &LayeredConfig::default())
            .expect("reference replay");
    let reference = flatten(&reference_run.query_results);
    assert!(
        reference.len() > 10,
        "reference must be big enough to paginate ({} rows)",
        reference.len()
    );

    for threads in [1usize, 2, 3, 7] {
        for page_size in [1usize, 7, 64] {
            // Fresh service per combination: the first pass replays
            // (cold), the second rides the cache (warm).
            let (graph, store, _) = captured();
            let service = QueryService::new(
                graph,
                store,
                ServeConfig {
                    threads,
                    // Page size 1 makes dozens of requests per pass;
                    // quotas are under test elsewhere, not here.
                    admission: AdmissionConfig {
                        max_in_flight: 8,
                        quota_burst: 100_000.0,
                        quota_per_sec: 0.0,
                    },
                    ..ServeConfig::default()
                },
            );
            for pass in ["cold", "warm"] {
                let warm = pass == "warm";
                let bytes_before = replay_bytes_counter();
                let mut paged: Vec<(String, Tuple)> = Vec::new();
                let mut cursor: Option<String> = None;
                loop {
                    let page = service
                        .execute(&QueryRequest {
                            pql: Some(BACKWARD_PQL),
                            params: &[("alpha", alpha), ("sigma", &sigma)],
                            cursor: cursor.as_deref(),
                            limit: Some(page_size),
                            ..Default::default()
                        })
                        .expect("page");
                    if warm {
                        assert!(page.cache_hit, "warm pass must never replay");
                    }
                    paged.extend_from_slice(page.rows());
                    match page.next_cursor {
                        Some(token) => cursor = Some(token),
                        None => break,
                    }
                }
                assert_eq!(
                    paged, reference,
                    "threads={threads} page_size={page_size} pass={pass}: \
                     paged concat must equal the un-paged replay"
                );
                if warm {
                    assert_eq!(
                        replay_bytes_counter(),
                        bytes_before,
                        "warm pagination must read zero store bytes \
                         (threads={threads} page_size={page_size})"
                    );
                }
            }
        }
    }
}

/// One parsed HTTP response: status code, raw header block, body.
struct HttpResponse {
    status: u16,
    headers: String,
    body: String,
}

fn send_raw(addr: SocketAddr, request: &[u8]) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request).expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {raw:?}"));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    HttpResponse {
        status,
        headers: head.to_string(),
        body: body.to_string(),
    }
}

fn get(addr: SocketAddr, path: &str) -> HttpResponse {
    send_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn get_as(addr: SocketAddr, path: &str, tenant: &str) -> HttpResponse {
    send_raw(
        addr,
        format!(
            "GET {path} HTTP/1.1\r\nHost: test\r\nX-Ariadne-Tenant: {tenant}\r\n\
             Connection: close\r\n\r\n"
        )
        .as_bytes(),
    )
}

/// Pull a scalar JSON string/number field out of a response body. The
/// bodies under test are flat enough that textual extraction is exact.
fn json_field<'a>(body: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let start = body.find(&pat).unwrap_or_else(|| panic!("{key} in {body}")) + pat.len();
    let rest = &body[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        &stripped[..stripped.find('"').expect("closing quote")]
    } else {
        let end = rest
            .find([',', '}'])
            .expect("value terminator");
        &rest[..end]
    }
}

const SIMPLE_PQL_ENC: &str = "active(x,%20i)%20:-%20superstep(x,%20i).";

/// The HTTP plane end to end: paginate over TCP, re-query warm, reject
/// over quota with Retry-After, shed at zero capacity, and keep the
/// observability routes alive on the same listener.
#[test]
fn http_plane_paginates_caches_and_sheds() {
    let _gate = serialize();
    let (graph, store, _) = captured();
    let service = Arc::new(QueryService::new(graph, store, ServeConfig::default()));
    let server = serve(service, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // Page 1: a cold replay.
    let page1 = get(addr, &format!("/query?pql={SIMPLE_PQL_ENC}&limit=5"));
    assert_eq!(page1.status, 200, "{}", page1.body);
    assert_eq!(json_field(&page1.body, "cache"), "miss");
    assert_eq!(json_field(&page1.body, "returned"), "5");
    let total: usize = json_field(&page1.body, "total_rows").parse().unwrap();
    assert!(total > 5);
    let cursor = json_field(&page1.body, "next_cursor").to_string();

    // Page 2 by cursor alone: rides the cache, continues at offset 5.
    let page2 = get(addr, &format!("/query?cursor={cursor}&limit=5"));
    assert_eq!(page2.status, 200, "{}", page2.body);
    assert_eq!(json_field(&page2.body, "cache"), "hit");
    assert_eq!(json_field(&page2.body, "offset"), "5");

    // Same query again from scratch: warm.
    let warm = get(addr, &format!("/query?pql={SIMPLE_PQL_ENC}&limit=5"));
    assert_eq!(json_field(&warm.body, "cache"), "hit");

    // Typed 400s: corrupt cursor, missing query, bad limit.
    assert_eq!(get(addr, "/query?cursor=zz").status, 400);
    assert_eq!(get(addr, "/query").status, 400);
    assert_eq!(
        get(addr, &format!("/query?pql={SIMPLE_PQL_ENC}&limit=0")).status,
        400
    );

    // The obs plane shares the listener and sees the serve metrics.
    assert_eq!(get(addr, "/healthz").body, "ok\n");
    let metrics = get(addr, "/metrics").body;
    assert!(metrics.contains("serve_cache_hits_total"));
    assert!(metrics.contains("serve_queries_total"));
    server.shutdown();

    // Quota: burst of 1 with no refill. Second request from the same
    // tenant is a 429 with Retry-After; another tenant still passes.
    let (graph, store, _) = captured();
    let throttled = Arc::new(QueryService::new(
        graph,
        store,
        ServeConfig {
            admission: AdmissionConfig {
                max_in_flight: 8,
                quota_burst: 1.0,
                quota_per_sec: 0.0,
            },
            ..ServeConfig::default()
        },
    ));
    let server = serve(throttled, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let q = format!("/query?pql={SIMPLE_PQL_ENC}&limit=2");
    assert_eq!(get_as(addr, &q, "smoke").status, 200);
    let rejected = get_as(addr, &q, "smoke");
    assert_eq!(rejected.status, 429, "{}", rejected.body);
    assert!(
        rejected.headers.to_ascii_lowercase().contains("retry-after:"),
        "429 must carry Retry-After: {}",
        rejected.headers
    );
    assert_eq!(get_as(addr, &q, "other-tenant").status, 200);
    server.shutdown();

    // Capacity: zero in-flight slots sheds everything with a 503.
    let (graph, store, _) = captured();
    let closed = Arc::new(QueryService::new(
        graph,
        store,
        ServeConfig {
            admission: AdmissionConfig {
                max_in_flight: 0,
                quota_burst: 100.0,
                quota_per_sec: 0.0,
            },
            ..ServeConfig::default()
        },
    ));
    let server = serve(closed, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let shed = get(addr, &q);
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert!(shed.headers.to_ascii_lowercase().contains("retry-after:"));
    server.shutdown();
}

/// Parameterized queries over HTTP: the backward-lineage query with
/// `$alpha`/`$sigma` bindings, and distinct bindings as distinct cached
/// sequences (a cursor minted under one binding is foreign to another).
#[test]
fn http_params_bind_and_fingerprint() {
    let _gate = serialize();
    let (graph, store, last) = captured();
    let service = Arc::new(QueryService::new(graph, store, ServeConfig::default()));
    let server = serve(service, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let pql_enc = "back_lineage(x,%20d)%20:-%20superstep(x,%20i),%20i%20=%20$sigma,%20x%20=%20$alpha,%20value(x,%20d,%20i).";
    let q15 = format!("/query?pql={pql_enc}&params=alpha=v15;sigma={last}");
    let q8 = format!("/query?pql={pql_enc}&params=alpha=v8;sigma={last}");

    let r15 = get(addr, &q15);
    assert_eq!(r15.status, 200, "{}", r15.body);
    assert_eq!(json_field(&r15.body, "total_rows"), "1");
    let fp15 = json_field(&r15.body, "fingerprint").to_string();

    let r8 = get(addr, &q8);
    assert_eq!(r8.status, 200, "{}", r8.body);
    let fp8 = json_field(&r8.body, "fingerprint").to_string();
    assert_ne!(fp15, fp8, "bindings are part of the query identity");
    assert_eq!(json_field(&r8.body, "cache"), "miss");

    // Same bindings in a different order: same fingerprint, warm hit.
    let reordered = get(
        addr,
        &format!("/query?pql={pql_enc}&params=sigma={last};alpha=v15"),
    );
    assert_eq!(json_field(&reordered.body, "fingerprint"), fp15);
    assert_eq!(json_field(&reordered.body, "cache"), "hit");
    server.shutdown();
}
