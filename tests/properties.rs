//! Property-based tests over random graphs and thresholds: the paper's
//! theorems and invariants must hold on arbitrary inputs, not just the
//! handpicked ones.

use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne::CaptureSpec;
use ariadne_analytics::{Sssp, Wcc};
use ariadne_graph::stats::weakly_connected_components;
use ariadne_graph::{Csr, GraphBuilder, VertexId};
use ariadne_pql::Value;
use ariadne_provenance::UnfoldedGraph;
use proptest::prelude::*;

/// Strategy: a random directed graph with up to `n` vertices and `m`
/// edges (self-loops filtered), weights in (0, 1].
fn arb_graph(n: usize, m: usize) -> impl Strategy<Value = Csr> {
    (2..n, proptest::collection::vec((0..n as u64, 0..n as u64, 0.01f64..1.0), 1..m)).prop_map(
        |(nv, edges)| {
            let mut b = GraphBuilder::new();
            b.ensure_vertex(VertexId(nv as u64 - 1));
            for (s, d, w) in edges {
                let (s, d) = (s % nv as u64, d % nv as u64);
                if s != d {
                    b.add_edge(VertexId(s), VertexId(d), w);
                }
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 5.4 (analytic half): monitoring queries never disturb the
    /// analytic, on arbitrary graphs.
    #[test]
    fn online_never_disturbs_sssp(g in arb_graph(40, 120)) {
        let ariadne = Ariadne::default();
        let analytic = Sssp::new(VertexId(0));
        let baseline = ariadne.baseline(&analytic, &g);
        let q = queries::sssp_wcc_value_check().unwrap();
        let online = ariadne.online(&analytic, &g, &q).unwrap();
        prop_assert_eq!(baseline.values, online.values);
        // And correct SSSP never violates monotonicity.
        prop_assert!(online.query_results.sorted("check_failed").is_empty());
    }

    /// Theorem 5.4 (query half): online ≡ naive offline for the apt
    /// query on WCC, on arbitrary graphs and thresholds.
    #[test]
    fn online_equals_offline_apt_wcc(g in arb_graph(30, 80), eps in 0u64..4) {
        let ariadne = Ariadne::default();
        let apt = queries::apt("udf_diff", Value::Int(eps as i64)).unwrap();
        let online = ariadne.online(&Wcc, &g, &apt).unwrap();
        let capture = ariadne.capture(&Wcc, &g, &CaptureSpec::full()).unwrap();
        let naive = ariadne.naive(&g, &capture.store, &apt).unwrap();
        for pred in ["change", "neighbor_change", "no_execute", "safe", "unsafe"] {
            prop_assert_eq!(
                online.query_results.sorted(pred),
                naive.database.sorted(pred),
                "{} differs", pred
            );
        }
    }

    /// Layered ≡ naive for backward lineage on arbitrary graphs.
    #[test]
    fn layered_equals_naive_backward(g in arb_graph(25, 60)) {
        let ariadne = Ariadne::default();
        let capture = ariadne.capture(&Wcc, &g, &CaptureSpec::full()).unwrap();
        let Some(sigma) = capture.store.max_superstep() else { return Ok(()); };
        let Some(target) = capture.store.layer(sigma).unwrap().into_iter()
            .find(|(p, _)| p == "superstep")
            .and_then(|(_, ts)| ts.first().and_then(|t| t[0].as_id()))
        else { return Ok(()); };
        let q = queries::backward_lineage(VertexId(target), sigma).unwrap();
        let layered = ariadne.layered(&g, &capture.store, &q).unwrap();
        let naive = ariadne.naive(&g, &capture.store, &q).unwrap();
        prop_assert_eq!(
            layered.query_results.sorted("back_trace"),
            naive.database.sorted("back_trace")
        );
        prop_assert_eq!(
            layered.query_results.sorted("back_lineage"),
            naive.database.sorted("back_lineage")
        );
    }

    /// The provenance layer decomposition is a partition with layer(x,i)
    /// = i, and the WCC fixpoint matches the union-find oracle.
    #[test]
    fn layers_partition_and_wcc_correct(g in arb_graph(30, 80)) {
        let ariadne = Ariadne::default();
        let run = ariadne.capture(&Wcc, &g, &CaptureSpec::full()).unwrap();
        prop_assert_eq!(run.values.clone(), weakly_connected_components(&g));
        let db = run.store.to_database().unwrap();
        let unfolded = UnfoldedGraph::from_database(&db);
        let layers = unfolded.layers().expect("acyclic");
        prop_assert!(layers.is_partition());
        for &(x, i) in unfolded.nodes() {
            prop_assert_eq!(layers.layer_of((x, i)), Some(i as usize));
        }
    }

    /// Capture customization is monotone: capturing fewer predicates
    /// never yields more bytes.
    #[test]
    fn capture_monotone(g in arb_graph(30, 80)) {
        let ariadne = Ariadne::default();
        let full = ariadne.capture(&Wcc, &g, &CaptureSpec::full()).unwrap();
        let partial = ariadne
            .capture(&Wcc, &g, &CaptureSpec::raw(["value", "superstep"]))
            .unwrap();
        prop_assert!(partial.store.byte_size() <= full.store.byte_size());
        let tiny = ariadne.capture(&Wcc, &g, &CaptureSpec::raw(["superstep"])).unwrap();
        prop_assert!(tiny.store.byte_size() <= partial.store.byte_size());
    }
}
