//! End-to-end tests of the `ariadne-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ariadne-cli"))
}

#[test]
fn generated_graph_online_builtin() {
    let out = cli()
        .args([
            "--generate",
            "rmat:7:4",
            "--analytic",
            "wcc",
            "--builtin",
            "sssp_wcc_no_message_no_change",
        ])
        .output()
        .expect("cli runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("query direction: Local"), "{stdout}");
    assert!(stdout.contains("problem: 0 rows"), "{stdout}");
}

#[test]
fn edge_list_file_and_query_file() {
    let dir = std::env::temp_dir().join(format!("ariadne-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("g.txt");
    std::fs::write(&graph_path, "0 1 1.0\n1 2 1.0\n2 3 1.0\n").unwrap();
    let query_path = dir.join("q.pql");
    std::fs::write(
        &query_path,
        "dist(x, d, i) :- value(x, d, i), superstep(x, i).\n",
    )
    .unwrap();

    let out = cli()
        .args([
            "--graph",
            graph_path.to_str().unwrap(),
            "--analytic",
            "sssp",
            "--source",
            "0",
            "--query",
            query_path.to_str().unwrap(),
        ])
        .output()
        .expect("cli runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("graph: 4 vertices, 3 edges"), "{stdout}");
    assert!(stdout.contains("dist:"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn layered_mode_via_cli() {
    let out = cli()
        .args([
            "--generate",
            "rmat:6:4",
            "--analytic",
            "pagerank",
            "--supersteps",
            "6",
            "--builtin",
            "pagerank_check",
            "--mode",
            "layered",
        ])
        .output()
        .expect("cli runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("captured"), "{stdout}");
    assert!(stdout.contains("layered evaluation"), "{stdout}");
    assert!(stdout.contains("check_failed: 0 rows"), "{stdout}");
}

#[test]
fn apt_builtin_with_param() {
    let out = cli()
        .args([
            "--generate",
            "rmat:7:4",
            "--analytic",
            "sssp",
            "--builtin",
            "apt",
            "--param",
            "eps=0.1",
        ])
        .output()
        .expect("cli runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no_execute"), "{stdout}");
    assert!(stdout.contains("safe"), "{stdout}");
}

#[test]
fn explain_prints_plan() {
    let out = cli()
        .args([
            "--generate",
            "rmat:6:4",
            "--analytic",
            "sssp",
            "--builtin",
            "apt",
            "--param",
            "eps=0.1",
            "--explain",
        ])
        .output()
        .expect("cli runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("direction: Forward"), "{stdout}");
    assert!(stdout.contains("shipped with messages: change"), "{stdout}");
    assert!(stdout.contains("stratum 0:"), "{stdout}");
}

#[test]
fn bad_arguments_fail_cleanly() {
    let out = cli().args(["--analytic", "pagerank"]).output().unwrap();
    assert!(!out.status.success());
    let out = cli()
        .args(["--generate", "rmat:6:4", "--analytic", "nonsense", "--builtin", "apt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // scrub without --spool is a usage error too.
    let out = cli().args(["scrub"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // A typo'd spool path must not report a clean spool.
    let out = cli()
        .args(["scrub", "--spool", "/nonexistent/ariadne-spool"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a directory"));
}

/// Build a spool directory with two spilled segments by driving a store
/// directly (the test binary links the provenance crate).
fn make_spool(tag: &str) -> std::path::PathBuf {
    use ariadne_pql::Value;
    use ariadne_provenance::{ProvStore, StoreConfig};
    let dir = std::env::temp_dir().join(format!("ariadne-cli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
    for s in 0..2u32 {
        store
            .ingest(
                s,
                "value",
                (0..10)
                    .map(|v| vec![Value::Id(v), Value::Int(s as i64)])
                    .collect(),
            )
            .unwrap();
    }
    dir
}

#[test]
fn scrub_clean_spool_exits_zero() {
    let dir = make_spool("scrub-clean");
    let out = cli()
        .args(["scrub", "--spool", dir.to_str().unwrap()])
        .output()
        .expect("cli runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("spool is clean"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scrub_detects_damage_then_repairs() {
    let dir = make_spool("scrub-damage");
    // Flip a bit in the first segment file.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "bin"))
        .expect("a spilled segment");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&seg, &bytes).unwrap();

    // Detection without --repair: irrecoverable-damage exit (4),
    // damage in the JSON report.
    let out = cli()
        .args(["scrub", "--spool", dir.to_str().unwrap(), "--json"])
        .output()
        .expect("cli runs");
    assert_eq!(out.status.code(), Some(4));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"clean\":false"), "{stdout}");
    assert!(stdout.contains("\"action\":\"none\""), "{stdout}");

    // Repair: the corrupt file is quarantined — data was lost, so the
    // exit code still says irrecoverable (4), not lossless-repair (3).
    let out = cli()
        .args(["scrub", "--spool", dir.to_str().unwrap(), "--repair", "--json"])
        .output()
        .expect("cli runs");
    assert_eq!(out.status.code(), Some(4));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"action\":\"quarantined\""), "{stdout}");
    assert!(dir.join("quarantine").exists());

    // A second scrub of the repaired spool is clean: exit 0.
    let out = cli()
        .args(["scrub", "--spool", dir.to_str().unwrap()])
        .output()
        .expect("cli runs");
    assert_eq!(out.status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scrub_salvage_is_lossless_repair_exit() {
    let dir = make_spool("scrub-salvage");
    // Append a truncated (torn) record to an unsealed tail: salvageable.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "bin"))
        .expect("a spilled segment");
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(b"ARSG\x99\x00\x00"); // partial header
    std::fs::write(&seg, &bytes).unwrap();

    // Repairing a torn tail is lossless: exit 3.
    let out = cli()
        .args(["scrub", "--spool", dir.to_str().unwrap(), "--repair", "--json"])
        .output()
        .expect("cli runs");
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"action\":\"salvaged\""), "{stdout}");

    // And the spool is clean afterwards.
    let out = cli()
        .args(["scrub", "--spool", dir.to_str().unwrap()])
        .output()
        .expect("cli runs");
    assert_eq!(out.status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compact_rewrites_spool_and_scrub_stays_clean() {
    let dir = make_spool("compact-cli");
    let out = cli()
        .args(["compact", "--spool", dir.to_str().unwrap(), "--json"])
        .output()
        .expect("cli runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"generation\":1"), "{stdout}");
    // The old per-segment files are gone; the generation file and the
    // manifest exist.
    assert!(dir.join("index.ars").exists());
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(names.iter().any(|n| n.starts_with("gen-1-")), "{names:?}");
    assert!(!names.iter().any(|n| n.ends_with(".bin")), "{names:?}");
    // Compacted spools scrub clean (footers, frames, manifest CRC).
    let out = cli()
        .args(["scrub", "--spool", dir.to_str().unwrap()])
        .output()
        .expect("cli runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    // compact without --spool is a usage error.
    let out = cli().args(["compact"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}
