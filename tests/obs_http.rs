//! End-to-end test of the live telemetry plane: run a real capture +
//! layered replay, serve the obs endpoints on an ephemeral port, and
//! validate every endpoint over actual TCP — including the Prometheus
//! exposition schema (mirroring CI's python validator in-process), the
//! JSONL trace key order, and that a malformed request cannot wedge the
//! listener.
//!
//! Tests serialize on a file-level mutex: the metric registry and trace
//! rings are process-global, and parallel test threads would race the
//! drain-accounting assertions.

use ariadne::session::Ariadne;
use ariadne::{compile, CaptureSpec};
use ariadne_analytics::PageRank;
use ariadne_graph::generators::rmat::{rmat, RmatConfig};
use ariadne_obs::trace;
use ariadne_pql::Params;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

fn serialize() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One parsed HTTP response: status code, raw header block, body.
struct Response {
    status: u16,
    headers: String,
    body: String,
}

fn send_raw(addr: SocketAddr, request: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request).expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {raw:?}"));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    Response {
        status,
        headers: head.to_string(),
        body: body.to_string(),
    }
}

fn get(addr: SocketAddr, path: &str) -> Response {
    send_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

/// In-process mirror of CI's Prometheus-text validator: every metric
/// has matching HELP / TYPE / deterministic annotation lines, every
/// sample line is `name[{labels}] value`, and the layers this run
/// exercised are all present with the right determinism tags.
fn validate_prometheus(text: &str) {
    use std::collections::BTreeMap;
    let mut helps = Vec::new();
    let mut types = Vec::new();
    let mut det: BTreeMap<&str, &str> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helps.push(rest.split_whitespace().next().unwrap());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap();
            let kind = parts.next().unwrap_or("");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad TYPE line: {line:?}"
            );
            types.push(name);
        } else if let Some(rest) = line.strip_prefix("# ARIADNE deterministic ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap();
            let flag = parts.next().unwrap_or("");
            assert!(
                flag == "true" || flag == "false",
                "bad deterministic line: {line:?}"
            );
            det.insert(name, flag);
        } else {
            // Sample line: name, optionally {labels}, then one value.
            let (name_part, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("bad sample line: {line:?}"));
            let name = name_part.split('{').next().unwrap();
            assert!(
                !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
            assert!(
                value == "NaN" || value.parse::<f64>().is_ok(),
                "bad sample value in {line:?}"
            );
        }
    }
    let help_set: std::collections::BTreeSet<_> = helps.iter().copied().collect();
    let type_set: std::collections::BTreeSet<_> = types.iter().copied().collect();
    let det_set: std::collections::BTreeSet<_> = det.keys().copied().collect();
    assert_eq!(
        help_set, type_set,
        "HELP and TYPE must cover the same metrics"
    );
    assert_eq!(
        help_set, det_set,
        "deterministic annotations must cover the same metrics"
    );
    // Every instrumented layer this test exercised must be present.
    for required in [
        "engine_supersteps_total",
        "store_ingest_tuples_total",
        "pql_rule_firings_total",
        "layered_rounds_total",
        "layered_query_latency_ns",
        "obs_http_requests_total",
    ] {
        assert!(det.contains_key(required), "missing metric {required}");
    }
    // Determinism taxonomy spot checks.
    assert_eq!(det["engine_messages_sent_total"], "true");
    assert_eq!(det["layered_query_latency_ns"], "false");
    // The latency histogram must expose interpolated quantile series.
    assert!(
        text.contains("layered_query_latency_ns{quantile=\"0.5\"}")
            && text.contains("layered_query_latency_ns{quantile=\"0.99\"}"),
        "histogram quantile series missing from exposition"
    );
}

#[test]
fn obs_http_plane_end_to_end() {
    let _gate = serialize();
    // Trace-level filter so the full span tree (run -> layer -> chunk
    // -> eval, store reads, merge) lands in the rings.
    trace::set_filter("trace");

    // Real work first, so the endpoints have something to expose.
    let graph = rmat(RmatConfig {
        scale: 6,
        edge_factor: 8,
        seed: 0xBE2C4,
        ..RmatConfig::default()
    });
    let ariadne = Ariadne::default();
    let query = compile(
        "seen(x, v, i) :- value(x, v, i), superstep(x, i).",
        Params::new(),
    )
    .expect("capture query");
    let spec = CaptureSpec::raw(["superstep", "value"]).with_query(query);
    let capture = ariadne
        .capture(
            &PageRank {
                supersteps: 4,
                ..PageRank::default()
            },
            &graph,
            &spec,
        )
        .expect("capture run");
    let replay_query = compile(
        "hot(x, i) :- value(x, v, i), superstep(x, i).",
        Params::new(),
    )
    .expect("replay query");
    let replay = ariadne
        .layered(&graph, &capture.store, &replay_query)
        .expect("layered replay");
    assert!(replay.query_results.len("hot") > 0, "replay found nothing");

    let server = ariadne_obs::ObsServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();

    // /healthz
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");

    // /metrics parses under the CI validator's rules.
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.headers.contains("text/plain"),
        "wrong content type: {}",
        metrics.headers
    );
    validate_prometheus(&metrics.body);

    // /report is 404 until a report is published, then serves it.
    let missing = get(addr, "/report");
    assert_eq!(missing.status, 404);
    ariadne_obs::publish_report(capture.report().to_json());
    let report = get(addr, "/report");
    assert_eq!(report.status, 200);
    assert!(
        report.body.starts_with('{') && report.body.contains("\"supersteps\""),
        "report body is not the RunReport JSON: {}",
        report.body
    );

    // /trace drains JSONL in the documented key order and reports the
    // drop count in a header.
    let trace_resp = get(addr, "/trace");
    assert_eq!(trace_resp.status, 200);
    assert!(
        trace_resp.headers.contains("X-Ariadne-Dropped-Events:"),
        "missing drop-accounting header: {}",
        trace_resp.headers
    );
    let lines: Vec<&str> = trace_resp.body.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "trace drained no events");
    let key_order = [
        "\"seq\":",
        "\"ts_ns\":",
        "\"level\":",
        "\"target\":",
        "\"name\":",
        "\"trace_id\":",
        "\"span_id\":",
        "\"parent_id\":",
        "\"fields\":",
    ];
    let mut last_seq: Option<u64> = None;
    for line in &lines {
        let mut from = 0usize;
        for key in key_order {
            let at = line[from..]
                .find(key)
                .unwrap_or_else(|| panic!("{key} out of order in {line}"));
            from += at + key.len();
        }
        let seq: u64 = line
            .split("\"seq\":")
            .nth(1)
            .and_then(|r| r.split(',').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparsable seq in {line}"));
        assert!(
            last_seq.is_none_or(|prev| seq > prev),
            "trace not in sequence order"
        );
        last_seq = Some(seq);
    }
    // The replay produced a navigable span tree: the layered run span
    // is a trace root (trace_id == its own span_id), and the per-layer
    // spans link to it as children.
    let field = |line: &str, key: &str| -> u64 {
        line.split(&format!("\"{key}\":"))
            .nth(1)
            .and_then(|r| r.split([',', '}']).next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no {key} in {line}"))
    };
    let run_line = lines
        .iter()
        .find(|l| l.contains("\"target\":\"layered\",\"name\":\"run\""))
        .expect("no layered run span in the trace");
    let run_span = field(run_line, "span_id");
    assert_ne!(run_span, 0, "run span has no span_id");
    assert_eq!(
        field(run_line, "trace_id"),
        run_span,
        "run span must be its trace's root"
    );
    let layer_line = lines
        .iter()
        .find(|l| l.contains("\"target\":\"layered\",\"name\":\"layer\""))
        .expect("no per-layer span in the trace");
    assert_eq!(
        field(layer_line, "parent_id"),
        run_span,
        "layer span must be a child of the run span"
    );
    assert_eq!(field(layer_line, "trace_id"), run_span);

    // A malformed request gets a 400 and must not wedge the listener.
    let bad = send_raw(addr, b"???\r\n\r\n");
    assert_eq!(bad.status, 400);
    let not_get = send_raw(addr, b"POST /metrics HTTP/1.1\r\n\r\n");
    assert_eq!(not_get.status, 405);
    let still_up = get(addr, "/healthz");
    assert_eq!(still_up.status, 200, "listener wedged after bad request");

    server.shutdown();
}

/// Regression: a request head that arrives across several TCP writes —
/// including a split in the middle of the `\r\n\r\n` terminator — must
/// be read to completion, not treated as a whole (malformed) request.
#[test]
fn split_write_request_head_is_reassembled() {
    let _gate = serialize();
    let server = ariadne_obs::ObsServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let request = "GET /healthz HTTP/1.1\r\nHost: split\r\nConnection: close\r\n\r\n";
    // Split points chosen to break inside the method, inside a header,
    // and inside the blank-line terminator itself.
    for splits in [
        vec!["GE", "T /healthz HTTP/1.1\r\nHost: split\r\nConnection: close\r\n\r\n"],
        vec!["GET /healthz HTTP/1.1\r\nHo", "st: split\r\nConnection: close\r\n\r\n"],
        vec!["GET /healthz HTTP/1.1\r\nHost: split\r\nConnection: close\r\n\r", "\n"],
        request.split_inclusive(|_| true).collect::<Vec<_>>(), // byte at a time
    ] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for chunk in &splits {
            stream.write_all(chunk.as_bytes()).expect("write chunk");
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        assert!(
            raw.starts_with("HTTP/1.1 200"),
            "split request ({} chunks) not reassembled: {raw:?}",
            splits.len()
        );
        assert!(raw.ends_with("ok\n"), "wrong body: {raw:?}");
    }
    server.shutdown();
}

/// Regression: two clients draining `/trace` concurrently must
/// partition the events and the drop count exactly — every event and
/// every drop in exactly one response, none double-reported, none lost.
#[test]
fn concurrent_trace_drains_partition_exactly() {
    let _gate = serialize();
    trace::set_filter("info");
    let server = ariadne_obs::ObsServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // Prime: drain whatever earlier work left in the rings so the
    // ledger below starts from zero.
    get(addr, "/trace");

    // Overflow this thread's ring by exactly `extra`: the ring keeps
    // the newest RING_CAPACITY events and counts `extra` drops.
    let extra = 123u64;
    let total = trace::RING_CAPACITY as u64 + extra;
    for i in 0..total {
        trace::event(
            trace::Level::Info,
            "drainrace",
            "tick",
            &[("i", i.into())],
        );
    }

    let (first, second) = std::thread::scope(|s| {
        let a = s.spawn(|| get(addr, "/trace"));
        let b = s.spawn(|| get(addr, "/trace"));
        (a.join().expect("client a"), b.join().expect("client b"))
    });

    let dropped_of = |resp: &Response| -> u64 {
        resp.headers
            .lines()
            .find_map(|l| l.strip_prefix("X-Ariadne-Dropped-Events: "))
            .unwrap_or_else(|| panic!("no drop header in {}", resp.headers))
            .trim()
            .parse()
            .expect("drop count parses")
    };
    let events_of = |resp: &Response| -> usize {
        resp.body
            .lines()
            .filter(|l| l.contains("\"target\":\"drainrace\""))
            .count()
    };

    assert_eq!(first.status, 200);
    assert_eq!(second.status, 200);
    assert_eq!(
        dropped_of(&first) + dropped_of(&second),
        extra,
        "drop count must partition exactly across concurrent drains"
    );
    assert_eq!(
        events_of(&first) + events_of(&second),
        trace::RING_CAPACITY,
        "every retained event must drain exactly once"
    );

    // A follow-up drain sees a quiet ring: nothing double-reported.
    let third = get(addr, "/trace");
    assert_eq!(dropped_of(&third), 0);
    assert_eq!(events_of(&third), 0);
    server.shutdown();
}
