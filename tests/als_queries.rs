//! ALS with custom provenance relations (Queries 7 and 8, Figure 9).

use ariadne::custom::AlsProv;
use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne_analytics::als::{Als, AlsConfig};
use ariadne_graph::generators::{BipartiteRatings, RatingsConfig};
use ariadne_graph::VertexId;
use ariadne_pql::Value;
use std::sync::Arc;

fn ratings() -> BipartiteRatings {
    BipartiteRatings::generate(&RatingsConfig {
        users: 80,
        items: 20,
        ratings_per_user: 10,
        planted_rank: 3,
        noise: 0.2,
        seed: 33,
    })
}

fn als_for(br: &BipartiteRatings) -> Als {
    let mut cfg = AlsConfig::new(br.users, 4);
    cfg.supersteps = 9;
    Als::new(cfg)
}

#[test]
fn query7_range_check_runs_online() {
    let br = ratings();
    let als = als_for(&br);
    let run = Ariadne::default()
        .online_with(
            &als,
            &br.graph,
            &queries::als_range_check().unwrap(),
            Some(Arc::new(AlsProv)),
        )
        .unwrap();
    // The generator clamps ratings into 0..5, so the input never fails.
    assert!(run.query_results.sorted("input_failed").is_empty());
    // Early iterations may overshoot; whatever algo_failed contains must
    // reference item/user pairs that actually rated each other.
    for t in run.query_results.sorted("algo_failed") {
        let x = t[0].as_id().unwrap();
        let y = t[1].as_id().unwrap();
        assert!(br.graph.has_edge(VertexId(x), VertexId(y)));
    }
}

#[test]
fn query7_catches_corrupted_input() {
    let br = ratings();
    // Corrupt one user's ratings far beyond the valid range (so the
    // resulting per-edge errors escape [-5, 5] as well).
    let graph = br.graph.map_weights(|s, d, w| {
        if s == VertexId(0) && d.index() >= br.users {
            30.0
        } else {
            w
        }
    });
    let als = als_for(&br);
    let run = Ariadne::default()
        .online_with(
            &als,
            &graph,
            &queries::als_range_check().unwrap(),
            Some(Arc::new(AlsProv)),
        )
        .unwrap();
    let failures = run.query_results.sorted("input_failed");
    assert!(
        failures.iter().any(|t| t[0] == Value::Id(0) || t[1] == Value::Id(0)),
        "corrupted rating not flagged: {failures:?}"
    );
}

#[test]
fn query8_error_increase_monitoring() {
    let br = ratings();
    let als = als_for(&br);
    let run = Ariadne::default()
        .online_with(
            &als,
            &br.graph,
            &queries::als_error_increase(0.5).unwrap(),
            Some(Arc::new(AlsProv)),
        )
        .unwrap();
    // The aggregates must exist for every vertex that received features.
    assert!(run.query_results.len("degree") > 0);
    assert!(run.query_results.len("avg_error") > 0);
    // Problem rows, if any, reference valid vertices with increased
    // error e1 > e2 + 0.5.
    for t in run.query_results.sorted("problem") {
        let e1 = t[1].as_f64().unwrap();
        let e2 = t[2].as_f64().unwrap();
        assert!(e1 > e2 + 0.5, "spurious problem row {t:?}");
    }
}

#[test]
fn als_result_unchanged_by_monitoring() {
    let br = ratings();
    let als = als_for(&br);
    let ariadne = Ariadne::default();
    let baseline = ariadne.baseline(&als, &br.graph);
    let online = ariadne
        .online_with(
            &als,
            &br.graph,
            &queries::als_range_check().unwrap(),
            Some(Arc::new(AlsProv)),
        )
        .unwrap();
    assert_eq!(baseline.values, online.values);
}

#[test]
fn apt_on_als_uses_euclidean_udf() {
    let br = ratings();
    let als = als_for(&br);
    let apt = queries::apt("udf_euclidean", Value::Float(0.05)).unwrap();
    let run = Ariadne::default().online(&als, &br.graph, &apt).unwrap();
    // The paper finds "too few vertices for both safe and unsafe tables":
    // with a tight threshold most feature vectors keep moving, so the
    // tables stay small relative to activations.
    let total = run.metrics.total_activations();
    let safe = run.query_results.len("safe");
    let unsafe_count = run.query_results.len("unsafe");
    assert!(safe + unsafe_count < total / 2, "{safe} + {unsafe_count} vs {total}");
}
