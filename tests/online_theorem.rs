//! Theorem 5.4 as an executable property: for a forward query Q and
//! analytic A,
//!
//! * `A(G) = π_A(Online_{A,Q}(G))` — the analytic's result is unchanged
//!   by running the query in lockstep;
//! * `Q(G_PR) = π_Q(Online_{A,Q}(G))` — the query's online result equals
//!   evaluating it offline over the captured provenance graph.

use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne::CaptureSpec;
use ariadne::CompiledQuery;
use ariadne_analytics::{DeltaPageRank, PageRank, Sssp, Wcc};
use ariadne_graph::generators::{erdos_renyi, rmat, RmatConfig};
use ariadne_graph::{Csr, VertexId};
use ariadne_pql::Value;
use ariadne_provenance::ProvEncode;
use ariadne_vc::VertexProgram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn test_graph() -> Csr {
    rmat(RmatConfig {
        scale: 7,
        edge_factor: 4,
        seed: 77,
        ..Default::default()
    })
}

/// Check both halves of Theorem 5.4 for one analytic + query pair.
fn check_theorem<A>(analytic: &A, graph: &Csr, query: &CompiledQuery)
where
    A: VertexProgram,
    A::V: ProvEncode + PartialEq + std::fmt::Debug,
    A::M: ProvEncode,
{
    let ariadne = Ariadne::default();

    // π_A: analytic values must match the bare run.
    let baseline = ariadne.baseline(analytic, graph);
    let online = ariadne.online(analytic, graph, query).unwrap();
    assert_eq!(baseline.values, online.values, "analytic result disturbed");
    assert_eq!(
        baseline.metrics.num_supersteps(),
        online.metrics.num_supersteps(),
        "superstep count disturbed"
    );

    // π_Q: query results must match offline evaluation over captured
    // provenance.
    let capture = ariadne
        .capture(analytic, graph, &CaptureSpec::full())
        .unwrap();
    let naive = ariadne.naive(graph, &capture.store, query).unwrap();
    for pred in query.query().idbs.keys() {
        assert_eq!(
            online.query_results.sorted(pred),
            naive.database.sorted(pred),
            "IDB {pred:?} differs between online and offline"
        );
    }
}

#[test]
fn theorem_holds_for_pagerank_query4() {
    let g = test_graph();
    let pr = PageRank {
        supersteps: 6,
        ..Default::default()
    };
    check_theorem(&pr, &g, &queries::pagerank_check().unwrap());
}

#[test]
fn theorem_holds_for_sssp_query5_and_6() {
    let mut rng = StdRng::seed_from_u64(1);
    let g = test_graph().map_weights(|_, _, _| rng.gen::<f64>());
    let sssp = Sssp::new(VertexId(0));
    check_theorem(&sssp, &g, &queries::sssp_wcc_value_check().unwrap());
    check_theorem(&sssp, &g, &queries::sssp_wcc_no_message_no_change().unwrap());
}

#[test]
fn theorem_holds_for_wcc_query6() {
    let g = erdos_renyi(120, 200, 9);
    check_theorem(&Wcc, &g, &queries::sssp_wcc_no_message_no_change().unwrap());
}

#[test]
fn theorem_holds_for_apt_on_sssp() {
    let mut rng = StdRng::seed_from_u64(2);
    let g = test_graph().map_weights(|_, _, _| rng.gen::<f64>());
    let sssp = Sssp::new(VertexId(0));
    let apt = queries::apt("udf_diff", Value::Float(0.1)).unwrap();
    check_theorem(&sssp, &g, &apt);
}

#[test]
fn theorem_holds_for_apt_on_delta_pagerank() {
    let g = test_graph();
    let pr = DeltaPageRank::exact(6);
    let apt = queries::apt("udf_diff", Value::Float(0.01)).unwrap();
    check_theorem(&pr, &g, &apt);
}

#[test]
fn monitoring_queries_find_no_violations_on_correct_analytics() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = test_graph().map_weights(|_, _, _| rng.gen::<f64>());
    let ariadne = Ariadne::default();
    let run = ariadne
        .online(
            &Sssp::new(VertexId(0)),
            &g,
            &queries::sssp_wcc_value_check().unwrap(),
        )
        .unwrap();
    assert!(run.query_results.sorted("check_failed").is_empty());

    let run = ariadne
        .online(&Wcc, &g, &queries::sssp_wcc_no_message_no_change().unwrap())
        .unwrap();
    assert!(run.query_results.sorted("problem").is_empty());
}

/// A deliberately broken SSSP that sometimes *increases* its value — the
/// bug class Query 5 exists to catch.
struct BuggySssp {
    inner: Sssp,
}

impl VertexProgram for BuggySssp {
    type V = f64;
    type M = f64;

    fn init(&self, v: VertexId, g: &Csr) -> f64 {
        self.inner.init(v, g)
    }

    fn compute(
        &self,
        ctx: &mut dyn ariadne_vc::Context<f64>,
        value: &mut f64,
        messages: &[ariadne_vc::Envelope<f64>],
    ) {
        self.inner.compute(ctx, value, messages);
        // The bug: vertex 3 inflates its distance whenever it computes
        // after superstep 1.
        if ctx.vertex() == VertexId(3) && ctx.superstep() > 1 && value.is_finite() {
            *value += 10.0;
        }
    }
}

#[test]
fn query5_catches_injected_bug() {
    // Vertex 3 is relaxed twice: via the direct heavy edge at superstep 1
    // and via the lighter two-hop path at superstep 2, where the bug
    // inflates it — an increase between consecutive activations.
    let mut b = ariadne_graph::GraphBuilder::new();
    b.add_edge(VertexId(0), VertexId(3), 5.0);
    b.add_edge(VertexId(0), VertexId(1), 1.0);
    b.add_edge(VertexId(1), VertexId(3), 1.0);
    b.add_edge(VertexId(3), VertexId(4), 1.0);
    let g = b.build();
    let buggy = BuggySssp {
        inner: Sssp::new(VertexId(0)),
    };
    let run = Ariadne::default()
        .online(&buggy, &g, &queries::sssp_wcc_value_check().unwrap())
        .unwrap();
    let failures = run.query_results.sorted("check_failed");
    assert!(
        failures.iter().any(|t| t[0] == Value::Id(3)),
        "Query 5 missed the injected monotonicity violation: {failures:?}"
    );
}

#[test]
fn online_rejects_backward_queries() {
    let g = test_graph();
    let backward = queries::backward_lineage(VertexId(0), 3).unwrap();
    let err = Ariadne::default()
        .online(&Wcc, &g, &backward)
        .unwrap_err();
    assert!(err.to_string().contains("online"), "{err}");
}
