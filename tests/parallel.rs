//! Multi-threaded engine runs must agree exactly with sequential ones —
//! including full online provenance evaluation, where message payload
//! delivery order could otherwise leak scheduling nondeterminism.

use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne::CaptureSpec;
use ariadne_analytics::{PageRank, Sssp, Wcc};
use ariadne_graph::generators::{rmat, RmatConfig};
use ariadne_graph::{Csr, VertexId};
use ariadne_pql::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn graph() -> Csr {
    rmat(RmatConfig {
        scale: 9,
        edge_factor: 5,
        seed: 123,
        ..Default::default()
    })
}

#[test]
fn parallel_baselines_match_sequential() {
    let g = graph();
    let seq = Ariadne::default();
    let par = Ariadne::with_threads(4);
    let pr = PageRank {
        supersteps: 12,
        ..Default::default()
    };
    assert_eq!(seq.baseline(&pr, &g).values, par.baseline(&pr, &g).values);
    assert_eq!(seq.baseline(&Wcc, &g).values, par.baseline(&Wcc, &g).values);
}

#[test]
fn parallel_online_matches_sequential_online() {
    let mut rng = StdRng::seed_from_u64(9);
    let g = graph().map_weights(|_, _, _| 0.1 + rng.gen::<f64>());
    let analytic = Sssp::new(VertexId(0));
    let apt = queries::apt("udf_diff", Value::Float(0.1)).unwrap();

    let seq = Ariadne::default().online(&analytic, &g, &apt).unwrap();
    let par = Ariadne::with_threads(4).online(&analytic, &g, &apt).unwrap();

    assert_eq!(seq.values, par.values);
    for pred in ["change", "no_execute", "safe", "unsafe"] {
        assert_eq!(
            seq.query_results.sorted(pred),
            par.query_results.sorted(pred),
            "{pred} differs between 1 and 4 threads"
        );
    }
}

#[test]
fn parallel_capture_matches_sequential_capture() {
    let g = graph();
    let seq = Ariadne::default()
        .capture(&Wcc, &g, &CaptureSpec::full())
        .unwrap();
    let par = Ariadne::with_threads(3)
        .capture(&Wcc, &g, &CaptureSpec::full())
        .unwrap();
    assert_eq!(seq.values, par.values);
    assert_eq!(seq.store.tuple_count(), par.store.tuple_count());
    // Same tuples layer by layer (order within a layer may differ by
    // ingestion interleaving; compare as sorted sets).
    let max = seq.store.max_superstep().unwrap();
    assert_eq!(par.store.max_superstep(), Some(max));
    for s in 0..=max {
        let mut a: Vec<_> = seq.store.layer(s).unwrap();
        let mut b: Vec<_> = par.store.layer(s).unwrap();
        a.iter_mut().for_each(|(_, t)| t.sort());
        b.iter_mut().for_each(|(_, t)| t.sort());
        assert_eq!(a, b, "layer {s} differs");
    }
}

#[test]
fn parallel_layered_queries_match() {
    let g = graph();
    let ariadne_par = Ariadne::with_threads(4);
    let capture = ariadne_par
        .capture(&Wcc, &g, &CaptureSpec::full())
        .unwrap();
    let q = queries::sssp_wcc_no_message_no_change().unwrap();
    let layered = ariadne_par.layered(&g, &capture.store, &q).unwrap();
    let oracle = ariadne_par.centralized(&g, &capture.store, &q).unwrap();
    assert_eq!(
        layered.query_results.sorted("problem"),
        oracle.sorted("problem")
    );
}
