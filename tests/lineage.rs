//! Forward and backward lineage tracing (Queries 3, 10, 11, 12) checked
//! against graph-reachability oracles.

use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne::CaptureSpec;
use ariadne_analytics::reference::{backward_reachable, forward_reachable};
use ariadne_analytics::{Sssp, Wcc};
use ariadne_graph::generators::regular::{path, tree};
use ariadne_graph::generators::{rmat, RmatConfig};
use ariadne_graph::{Csr, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn weighted(g: Csr, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    g.map_weights(|_, _, _| 0.05 + rng.gen::<f64>())
}

/// Forward lineage (Query 3): the set of vertices carrying `fwd_lineage`
/// annotations must equal the vertices reachable from the source —
/// SSSP's influence set.
#[test]
fn forward_lineage_matches_reachability() {
    let g = weighted(
        rmat(RmatConfig {
            scale: 7,
            edge_factor: 4,
            seed: 5,
            ..Default::default()
        }),
        5,
    );
    let source = VertexId(0);
    let spec = queries::capture_forward_lineage(source).unwrap();
    let run = Ariadne::default()
        .capture(&Sssp::new(source), &g, &spec)
        .unwrap();

    let mut traced: BTreeSet<u64> = BTreeSet::new();
    if let Some(max) = run.store.max_superstep() {
        for s in 0..=max {
            for (pred, tuples) in run.store.layer(s).unwrap() {
                assert_eq!(pred, "fwd_lineage", "only the custom relation persists");
                for t in tuples {
                    traced.insert(t[0].as_id().unwrap());
                }
            }
        }
    }
    let oracle: BTreeSet<u64> = forward_reachable(&g, source)
        .iter()
        .enumerate()
        .filter(|(_, &r)| r)
        .map(|(i, _)| i as u64)
        .collect();
    assert_eq!(traced, oracle);
}

/// Backward lineage over the full provenance graph (Query 10): on a
/// directed path, the lineage of the last vertex's final value is
/// exactly the source.
#[test]
fn backward_lineage_on_path() {
    let g = path(6);
    let ariadne = Ariadne::default();
    let capture = ariadne
        .capture(&Sssp::new(VertexId(0)), &g, &CaptureSpec::full())
        .unwrap();
    let last_step = capture.store.max_superstep().unwrap();
    // Vertex 5 computes at the last superstep.
    let q = queries::backward_lineage(VertexId(5), last_step).unwrap();
    let run = ariadne.layered(&g, &capture.store, &q).unwrap();
    let lineage = run.query_results.sorted("back_lineage");
    assert_eq!(lineage.len(), 1);
    assert_eq!(lineage[0][0].as_id(), Some(0));
    // The trace itself walks back through every vertex on the path.
    let trace = run.query_results.sorted("back_trace");
    assert_eq!(trace.len(), 6);
}

/// Query 10 layered vs naive: identical results.
#[test]
fn backward_layered_matches_naive() {
    let g = weighted(tree(40, 3), 11);
    let ariadne = Ariadne::default();
    let capture = ariadne
        .capture(&Sssp::new(VertexId(0)), &g, &CaptureSpec::full())
        .unwrap();
    let sigma = capture.store.max_superstep().unwrap();
    // Pick a vertex active in the last superstep.
    let target = capture
        .store
        .layer(sigma)
        .unwrap()
        .into_iter()
        .find(|(p, _)| p == "superstep")
        .and_then(|(_, ts)| ts.first().and_then(|t| t[0].as_id()))
        .expect("someone was active last");
    let q = queries::backward_lineage(VertexId(target), sigma).unwrap();
    let layered = ariadne.layered(&g, &capture.store, &q).unwrap();
    let naive = ariadne.naive(&g, &capture.store, &q).unwrap();
    for pred in ["back_trace", "back_lineage"] {
        assert_eq!(
            layered.query_results.sorted(pred),
            naive.database.sorted(pred),
            "{pred} differs"
        );
    }
}

/// Custom backward capture (Query 11) + Query 12 equals Query 10 over
/// full capture — with a much smaller store.
#[test]
fn custom_backward_equals_full_backward() {
    let g = weighted(
        rmat(RmatConfig {
            scale: 6,
            edge_factor: 4,
            seed: 8,
            ..Default::default()
        }),
        8,
    );
    let ariadne = Ariadne::default();
    let analytic = Sssp::new(VertexId(0));

    let full = ariadne.capture(&analytic, &g, &CaptureSpec::full()).unwrap();
    let custom = ariadne
        .capture(&analytic, &g, &queries::capture_backward_custom().unwrap())
        .unwrap();
    assert!(
        custom.store.byte_size() < full.store.byte_size(),
        "custom capture should be smaller: {} vs {}",
        custom.store.byte_size(),
        full.store.byte_size()
    );

    let sigma = full.store.max_superstep().unwrap();
    let target = full
        .store
        .layer(sigma)
        .unwrap()
        .into_iter()
        .find(|(p, _)| p == "superstep")
        .and_then(|(_, ts)| ts.first().and_then(|t| t[0].as_id()))
        .unwrap();

    let q10 = queries::backward_lineage(VertexId(target), sigma).unwrap();
    let q12 = queries::backward_lineage_custom(VertexId(target), sigma).unwrap();
    let full_run = ariadne.layered(&g, &full.store, &q10).unwrap();
    let custom_run = ariadne.layered(&g, &custom.store, &q12).unwrap();

    // Same lineage: compare the (vertex, value) sets.
    assert_eq!(
        full_run.query_results.sorted("back_lineage"),
        custom_run.query_results.sorted("back_lineage")
    );
}

/// Backward lineage vertices are always backward-reachable in the input
/// graph (the provenance trace is a subset of graph reachability).
#[test]
fn backward_trace_subset_of_graph_reachability() {
    let g = weighted(
        rmat(RmatConfig {
            scale: 6,
            edge_factor: 3,
            seed: 21,
            ..Default::default()
        }),
        21,
    );
    let ariadne = Ariadne::default();
    let capture = ariadne
        .capture(&Wcc, &g, &CaptureSpec::full())
        .unwrap();
    let sigma = capture.store.max_superstep().unwrap();
    let target = capture
        .store
        .layer(sigma)
        .unwrap()
        .into_iter()
        .find(|(p, _)| p == "superstep")
        .and_then(|(_, ts)| ts.first().and_then(|t| t[0].as_id()))
        .unwrap();
    let q = queries::backward_lineage(VertexId(target), sigma).unwrap();
    let run = ariadne.layered(&g, &capture.store, &q).unwrap();
    // WCC messages travel both directions, so reachability here means
    // "within the weakly connected component".
    let bwd = backward_reachable(&g, VertexId(target));
    let fwd = forward_reachable(&g, VertexId(target));
    for t in run.query_results.sorted("back_trace") {
        let v = t[0].as_id().unwrap() as usize;
        assert!(
            bwd[v] || fwd[v],
            "traced vertex {v} not connected to target {target}"
        );
    }
}
