//! All three evaluation modes must produce identical query results on
//! every query class they support (§5): online ≡ layered ≡ naive for
//! forward/local queries, layered ≡ naive for backward ones.

use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne::{CaptureSpec, CompiledQuery};
use ariadne_analytics::{PageRank, Sssp, Wcc};
use ariadne_graph::generators::{erdos_renyi, rmat, RmatConfig};
use ariadne_graph::{Csr, VertexId};
use ariadne_pql::Value;
use ariadne_provenance::ProvEncode;
use ariadne_vc::VertexProgram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn graph(seed: u64) -> Csr {
    rmat(RmatConfig {
        scale: 6,
        edge_factor: 4,
        seed,
        ..Default::default()
    })
}

fn check_three_modes<A>(analytic: &A, g: &Csr, query: &CompiledQuery)
where
    A: VertexProgram,
    A::V: ProvEncode,
    A::M: ProvEncode,
{
    let ariadne = Ariadne::default();
    let online = ariadne.online(analytic, g, query).unwrap();
    let capture = ariadne.capture(analytic, g, &CaptureSpec::full()).unwrap();
    let layered = ariadne.layered(g, &capture.store, query).unwrap();
    let naive = ariadne.naive(g, &capture.store, query).unwrap();
    for pred in query.query().idbs.keys() {
        let o = online.query_results.sorted(pred);
        let l = layered.query_results.sorted(pred);
        let n = naive.database.sorted(pred);
        assert_eq!(o, n, "online vs naive disagree on {pred:?}");
        assert_eq!(l, n, "layered vs naive disagree on {pred:?}");
    }
}

#[test]
fn three_modes_agree_sssp_monitoring() {
    let mut rng = StdRng::seed_from_u64(4);
    let g = graph(4).map_weights(|_, _, _| rng.gen::<f64>());
    let a = Sssp::new(VertexId(0));
    check_three_modes(&a, &g, &queries::sssp_wcc_value_check().unwrap());
    check_three_modes(&a, &g, &queries::sssp_wcc_no_message_no_change().unwrap());
}

#[test]
fn three_modes_agree_wcc_apt() {
    let g = erdos_renyi(80, 160, 14);
    let apt = queries::apt("udf_diff", Value::Float(1.0)).unwrap();
    check_three_modes(&Wcc, &g, &apt);
}

#[test]
fn three_modes_agree_pagerank_check() {
    let g = graph(6);
    let pr = PageRank {
        supersteps: 5,
        ..Default::default()
    };
    check_three_modes(&pr, &g, &queries::pagerank_check().unwrap());
}

#[test]
fn three_modes_agree_sssp_apt() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = graph(7).map_weights(|_, _, _| 0.1 + rng.gen::<f64>());
    let apt = queries::apt("udf_diff", Value::Float(0.1)).unwrap();
    check_three_modes(&Sssp::new(VertexId(0)), &g, &apt);
}

#[test]
fn layered_respects_lemma_5_3() {
    // Layered evaluation runs at most n+1 rounds for n supersteps.
    let g = graph(9);
    let ariadne = Ariadne::default();
    let capture = ariadne.capture(&Wcc, &g, &CaptureSpec::full()).unwrap();
    let supersteps = capture.metrics.num_supersteps();
    let q = queries::sssp_wcc_no_message_no_change().unwrap();
    let run = ariadne.layered(&g, &capture.store, &q).unwrap();
    assert!(
        run.layers <= supersteps,
        "layered ran {} rounds for {} supersteps",
        run.layers,
        supersteps
    );
}

#[test]
fn naive_overflow_guard_fires() {
    let g = graph(10);
    let ariadne = Ariadne {
        naive_budget: Some(10), // tiny cluster memory
        ..Ariadne::default()
    };
    let capture = ariadne.capture(&Wcc, &g, &CaptureSpec::full()).unwrap();
    let q = queries::sssp_wcc_no_message_no_change().unwrap();
    let err = ariadne.naive(&g, &capture.store, &q).unwrap_err();
    assert!(err.to_string().contains("budget"), "{err}");
    // Layered still works with the same store: the paper's point.
    assert!(ariadne.layered(&g, &capture.store, &q).is_ok());
}

#[test]
fn mixed_queries_only_run_naive() {
    // The paper's R1 shape: both send and receive guards.
    let src = "
        t(y, i) :- superstep(y, i).
        s(z, i) :- superstep(z, i).
        r1(x, i) :- t(y, j), receive_message(x, y, m, i), s(z, k), send_message(x, z, m, i).
    ";
    let q = ariadne::compile(src, ariadne_pql::Params::new()).unwrap();
    assert_eq!(q.direction(), ariadne_pql::Direction::Mixed);
    let g = graph(11);
    let ariadne_sys = Ariadne::default();
    let capture = ariadne_sys.capture(&Wcc, &g, &CaptureSpec::full()).unwrap();
    assert!(ariadne_sys.layered(&g, &capture.store, &q).is_err());
    assert!(ariadne_sys.online(&Wcc, &g, &q).is_err());
    let naive = ariadne_sys.naive(&g, &capture.store, &q).unwrap();
    // r1 holds wherever a vertex both received and sent in one superstep.
    assert!(naive.database.len("r1") > 0);
}
