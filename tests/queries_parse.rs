//! Every `.pql` file shipped in `queries/` must parse, analyze, and
//! produce exactly the EXPLAIN plan snapshotted here.
//!
//! These snapshots are the contract behind `docs/PQL.md`: the language
//! reference publishes the `backward_lineage.pql` EXPLAIN output
//! verbatim and claims it is "snapshot-checked by
//! `tests/queries_parse.rs`" — [`pql_md_walkthrough_matches_compiler`]
//! enforces that claim, and the per-file tests pin the rest. If a
//! planner change shifts a snapshot, update both the test and (for
//! backward lineage) the walkthrough in `docs/PQL.md`.

use ariadne::compile::{compile, CompiledQuery};
use ariadne_pql::{explain, Direction, Params, Value};
use std::fs;
use std::path::{Path, PathBuf};

/// The repo's `queries/` directory (tests run with the workspace root
/// as the manifest dir of the top-level package).
fn queries_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("queries")
}

/// Compile a shipped query file with the parameters its header comment
/// documents. Values match the `docs/PQL.md` walkthrough where one
/// exists (`alpha = v3`, `sigma = 2`).
fn compile_file(name: &str) -> CompiledQuery {
    let path = queries_dir().join(name);
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let params = match name {
        "apt.pql" => Params::new().with("eps", Value::Float(0.1)),
        "backward_lineage.pql" => Params::new()
            .with("alpha", Value::Id(3))
            .with("sigma", Value::Int(2)),
        "forward_lineage.pql" => Params::new().with("alpha", Value::Id(0)),
        _ => Params::new(),
    };
    compile(&source, params).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"))
}

/// Assert a query's EXPLAIN output matches its snapshot, with a diff
/// that shows the first diverging line.
fn assert_explain(name: &str, query: &CompiledQuery, expected: &str) {
    let actual = explain(query.query());
    let actual = actual.trim_end();
    let expected = expected.trim();
    if actual != expected {
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            assert_eq!(a, e, "{name}: EXPLAIN line {} diverges", i + 1);
        }
        assert_eq!(
            actual.lines().count(),
            expected.lines().count(),
            "{name}: EXPLAIN line count diverges\nactual:\n{actual}"
        );
    }
}

const APT_EXPLAIN: &str = "
direction: Forward
modes: online=true layered=true vc-compatible=true
reads: evolution, receive_message, superstep, value
shipped with messages: change
stratum 0:
  rule change/2 (line 4):
    scan evolution
    scan value
    scan value
    udf udf_diff
stratum 1:
  rule neighbor_change/2 (line 5):
    scan receive_message
    assign j
    check not-in change
stratum 2:
  rule no_execute/2 (line 6):
    scan superstep
    check not-in neighbor_change
    filter >
  rule safe/2 (line 7):
    scan no_execute
    semi-join change
  rule unsafe/2 (line 8):
    scan no_execute
    check not-in change
";

const BACKWARD_LINEAGE_EXPLAIN: &str = "
direction: Backward
modes: online=false layered=true vc-compatible=true
reads: send_message, superstep, value
shipped with messages: back_trace
stratum 0:
  rule back_trace/2 (line 3):
    scan superstep
    filter =
    filter =
  rule back_trace/2 (line 4):
    scan send_message
    scan back_trace
    filter =
  rule back_lineage/2 (line 5):
    scan back_trace
    filter =
    scan value
";

const FORWARD_LINEAGE_EXPLAIN: &str = "
direction: Forward
modes: online=true layered=true vc-compatible=true
reads: receive_message, superstep, value
shipped with messages: fwd_lineage
stratum 0:
  rule fwd_lineage/3 (line 2):
    scan value
    filter =
    filter =
    semi-join superstep
  rule fwd_lineage/3 (line 3):
    scan receive_message
    semi-join fwd_lineage
    scan value
";

const NO_MESSAGE_NO_CHANGE_EXPLAIN: &str = "
direction: Local
modes: online=true layered=true vc-compatible=true
reads: evolution, receive_message, value
stratum 0:
  rule neighbor_change/2 (line 2):
    scan receive_message
stratum 1:
  rule problem/2 (line 3):
    scan evolution
    check not-in neighbor_change
    scan value
    scan value
    filter !=
";

const PAGERANK_CHECK_EXPLAIN: &str = "
direction: Local
modes: online=true layered=true vc-compatible=true
reads: in_edge, receive_message
stratum 0:
  rule in_degree/2 (line 2) [aggregate]:
    scan in_edge
  rule has_in/1 (line 3):
    scan in_edge
stratum 1:
  rule check_failed/3 (line 4):
    scan receive_message
    check not-in has_in
";

const VALUE_CHECK_EXPLAIN: &str = "
direction: Local
modes: online=true layered=true vc-compatible=true
reads: evolution, receive_message, value
stratum 0:
  rule check_failed/2 (line 2):
    scan evolution
    scan value
    scan value
    filter >
    semi-join receive_message
";

/// (file, expected direction, expected EXPLAIN snapshot).
const SNAPSHOTS: &[(&str, Direction, &str)] = &[
    ("apt.pql", Direction::Forward, APT_EXPLAIN),
    ("backward_lineage.pql", Direction::Backward, BACKWARD_LINEAGE_EXPLAIN),
    ("forward_lineage.pql", Direction::Forward, FORWARD_LINEAGE_EXPLAIN),
    ("no_message_no_change.pql", Direction::Local, NO_MESSAGE_NO_CHANGE_EXPLAIN),
    ("pagerank_check.pql", Direction::Local, PAGERANK_CHECK_EXPLAIN),
    ("value_check.pql", Direction::Local, VALUE_CHECK_EXPLAIN),
];

#[test]
fn every_shipped_query_has_a_snapshot() {
    let mut on_disk: Vec<String> = fs::read_dir(queries_dir())
        .expect("queries/ directory")
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.ends_with(".pql").then_some(name)
        })
        .collect();
    on_disk.sort();
    let mut snapshotted: Vec<String> =
        SNAPSHOTS.iter().map(|(n, _, _)| n.to_string()).collect();
    snapshotted.sort();
    assert_eq!(
        on_disk, snapshotted,
        "queries/*.pql and the SNAPSHOTS table must list the same files"
    );
}

#[test]
fn all_queries_compile_with_expected_plans() {
    for (name, direction, expected) in SNAPSHOTS {
        let q = compile_file(name);
        assert_eq!(q.direction(), *direction, "{name}: direction class");
        assert_explain(name, &q, expected);
    }
}

#[test]
fn direction_classes_imply_consistent_modes() {
    for (name, _, _) in SNAPSHOTS {
        let q = compile_file(name);
        let d = q.direction();
        // The capability matrix published in docs/PQL.md.
        match d {
            Direction::Local | Direction::Forward => {
                assert!(d.supports_online(), "{name}: local/forward must run online");
                assert!(d.supports_layered(), "{name}");
            }
            Direction::Backward => {
                assert!(!d.supports_online(), "{name}: backward cannot run online");
                assert!(d.supports_layered(), "{name}");
            }
            _ => {}
        }
        assert!(d.is_vc_compatible(), "{name}: every shipped query is VC-compatible");
        // The EXPLAIN `modes:` line must agree with the probes.
        let text = explain(q.query());
        let modes = format!(
            "modes: online={} layered={} vc-compatible={}",
            d.supports_online(),
            d.supports_layered(),
            d.is_vc_compatible()
        );
        assert!(text.contains(&modes), "{name}: {modes} missing from EXPLAIN");
    }
}

#[test]
fn pql_md_walkthrough_matches_compiler() {
    // docs/PQL.md publishes the backward_lineage EXPLAIN output verbatim
    // and points here; hold the doc to it.
    let doc_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/PQL.md");
    let doc = fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc_path.display()));
    let actual = explain(compile_file("backward_lineage.pql").query());
    let block = actual.trim_end();
    assert!(
        doc.contains(block),
        "docs/PQL.md no longer contains the compiler's EXPLAIN output for \
         backward_lineage.pql (alpha=v3, sigma=2); update the walkthrough.\n\
         expected block:\n{block}"
    );
    // And the doc's prose must keep pointing at this test.
    assert!(doc.contains("tests/queries_parse.rs"));
}
