//! Failure injection: the system must fail loudly and precisely, not
//! corrupt results.

use ariadne::session::Ariadne;
use ariadne::{compile, CaptureSpec};
use ariadne_analytics::Wcc;
use ariadne_graph::generators::regular::path;
use ariadne_pql::{Params, UdfRegistry, Value};

#[test]
fn unknown_udf_fails_the_online_run_loudly() {
    // A query that references a UDF nobody registered: analysis cannot
    // tell it from a predicate typo, so evaluation reports it the first
    // time a vertex reaches the call — as a typed error naming the
    // failing vertex and superstep, not a worker panic.
    let q = compile(
        "p(x, i) :- value(x, d, i), no_such_udf(d).",
        Params::new(),
    )
    .unwrap();
    let g = path(3);
    let err = Ariadne::default()
        .online(&Wcc, &g, &q)
        .expect_err("an unknown UDF must fail the run");
    match &err {
        ariadne::AriadneError::Query {
            vertex,
            superstep,
            source,
        } => {
            // Every vertex hits the UDF in its first active superstep;
            // the reported failure is the deterministic minimum.
            assert_eq!(*vertex, ariadne_graph::VertexId(0));
            assert_eq!(*superstep, 0);
            assert!(
                source.to_string().contains("no_such_udf"),
                "unhelpful error: {source}"
            );
        }
        other => panic!("expected AriadneError::Query, got {other:?}"),
    }
    // The error chain is preserved for callers using `Error::source`.
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn custom_udfs_can_be_supplied_instead() {
    // The same query compiles and runs fine once the UDF exists.
    let mut udfs = UdfRegistry::standard();
    udfs.register("no_such_udf", |args| {
        args[0].as_f64().map(|v| v >= 0.0).unwrap_or(false)
    });
    let q = ariadne::compile_with(
        "p(x, i) :- value(x, d, i), no_such_udf(d).",
        Params::new(),
        &ariadne_pql::Catalog::standard(),
        udfs,
    )
    .unwrap();
    let g = path(3);
    let run = Ariadne::default().online(&Wcc, &g, &q).unwrap();
    assert!(run.query_results.len("p") > 0);
}

#[test]
fn spool_dir_is_created_on_demand() {
    let dir = std::env::temp_dir()
        .join(format!("ariadne-missing-{}", std::process::id()))
        .join("deep")
        .join("nested");
    let ariadne = Ariadne {
        store: ariadne_provenance::StoreConfig::spilling(1, dir.clone()),
        ..Ariadne::default()
    };
    let g = path(4);
    let run = ariadne.capture(&Wcc, &g, &CaptureSpec::full()).unwrap();
    assert!(run.store.spills() > 0);
    std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap()).ok();
}

#[test]
fn unwritable_spool_dir_is_a_typed_io_error() {
    // Point the spool at a child of a regular file: the directory cannot
    // be created, and the failure must surface as a typed IO error
    // carrying the offending path — not a panic, and works even when the
    // test runs privileged (unlike permission-bit tricks).
    let file = std::env::temp_dir().join(format!("ariadne-flat-{}", std::process::id()));
    std::fs::write(&file, b"not a directory").unwrap();
    let dir = file.join("spool");
    let ariadne = Ariadne {
        store: ariadne_provenance::StoreConfig::spilling(1, dir.clone()),
        ..Ariadne::default()
    };
    let g = path(4);
    let err = ariadne
        .capture(&Wcc, &g, &CaptureSpec::full())
        .expect_err("spilling into an uncreatable dir must fail");
    match &err {
        ariadne::AriadneError::Store(ariadne::StoreError::Io { path, .. }) => {
            assert!(
                path.starts_with(&file),
                "error path {path:?} should point into {file:?}"
            );
        }
        other => panic!("expected StoreError::Io, got {other:?}"),
    }
    std::fs::remove_file(&file).ok();
}

#[test]
fn empty_graph_runs_everywhere() {
    let g = ariadne_graph::Csr::empty(0);
    let ariadne = Ariadne::default();
    let q = ariadne::queries::sssp_wcc_no_message_no_change().unwrap();
    let online = ariadne.online(&Wcc, &g, &q).unwrap();
    assert!(online.values.is_empty());
    let capture = ariadne.capture(&Wcc, &g, &CaptureSpec::full()).unwrap();
    assert_eq!(capture.store.tuple_count(), 0);
    assert!(ariadne.layered(&g, &capture.store, &q).is_ok());
    assert!(ariadne.naive(&g, &capture.store, &q).is_ok());
}

#[test]
fn queries_with_param_type_mismatches_evaluate_to_nothing() {
    // eps supplied as a string: udf_diff returns false rather than
    // panicking, so `change` is simply empty.
    let q = ariadne::queries::apt("udf_diff", Value::str("not-a-number")).unwrap();
    let g = path(4);
    let run = Ariadne::default().online(&Wcc, &g, &q).unwrap();
    assert_eq!(run.query_results.len("change"), 0);
    // And everything active (i > 0) counts as unsafe-to-skip.
    assert_eq!(
        run.query_results.len("no_execute"),
        run.query_results.len("unsafe")
    );
}
