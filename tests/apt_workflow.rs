//! The motivating scenario end-to-end (§2.2, §6.2.2): run the apt query
//! online, read its verdict, and check it predicts reality — the
//! optimization helps PageRank and SSSP but must be rejected for WCC.

use ariadne::optimize::{apt_report, evaluate_optimization};
use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne_analytics::pagerank::{delta_ranks, DeltaPageRank};
use ariadne_analytics::{ApproxSssp, ApproxWcc, Sssp, Wcc};
use ariadne_graph::generators::{rmat, RmatConfig};
use ariadne_graph::{Csr, VertexId};
use ariadne_pql::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn web_graph(seed: u64) -> Csr {
    rmat(RmatConfig {
        scale: 8,
        edge_factor: 6,
        seed,
        ..Default::default()
    })
}

#[test]
fn apt_recommends_pagerank_optimization_and_it_works() {
    let g = web_graph(1);
    let ariadne = Ariadne::default();
    let analytic = DeltaPageRank::exact(20);
    let apt = queries::apt("udf_diff", Value::Float(0.01)).unwrap();
    let run = ariadne.online(&analytic, &g, &apt).unwrap();
    let report = apt_report(&run.query_results, run.metrics.total_activations());

    assert!(report.no_execute > 0, "nothing skippable: {report:?}");
    assert!(report.recommended, "apt should endorse PageRank: {report:?}");

    // Follow the recommendation: the approximate variant must be close
    // and cheaper.
    let exact = ariadne.baseline(&analytic, &g);
    let approx = ariadne.baseline(&DeltaPageRank::approximate(20, 0.01), &g);
    let outcome = evaluate_optimization(
        &delta_ranks(&exact.values),
        &delta_ranks(&approx.values),
        2.0,
        exact.metrics.elapsed,
        approx.metrics.elapsed,
    );
    assert!(
        outcome.relative_error < 0.05,
        "error {:.4} too large",
        outcome.relative_error
    );
    assert!(
        approx.metrics.total_messages() < exact.metrics.total_messages(),
        "approximate PageRank should send fewer messages"
    );
}

#[test]
fn apt_recommends_sssp_optimization_and_it_works() {
    let mut rng = StdRng::seed_from_u64(2);
    let g = web_graph(2).map_weights(|_, _, _| rng.gen::<f64>());
    let ariadne = Ariadne::default();
    let source = VertexId(0);
    let apt = queries::apt("udf_diff", Value::Float(0.1)).unwrap();
    let run = ariadne.online(&Sssp::new(source), &g, &apt).unwrap();
    let report = apt_report(&run.query_results, run.metrics.total_activations());
    assert!(report.recommended, "apt should endorse SSSP: {report:?}");

    let exact = ariadne.baseline(&Sssp::new(source), &g);
    let approx = ariadne.baseline(&ApproxSssp::new(source, 0.1), &g);
    let outcome = evaluate_optimization(
        &exact.values,
        &approx.values,
        1.0,
        exact.metrics.elapsed,
        approx.metrics.elapsed,
    );
    assert!(
        outcome.relative_error < 0.15,
        "error {:.4} too large",
        outcome.relative_error
    );
    assert!(approx.metrics.total_activations() <= exact.metrics.total_activations());
}

#[test]
fn apt_rejects_wcc_optimization_and_rightly_so() {
    // §6.2.2: for WCC the query proves the developer must not pursue the
    // optimization — its `safe` table is empty. Component labels are
    // nominal, so the right comparison UDF is the strict one (only a
    // zero change is insignificant); with it, no skip is ever endorsed.
    // (Our WCC messages only travel on updates, so `no_execute` is empty
    // too; the paper's Giraph WCC also messages from non-updating
    // vertices, which fills `no_execute` and makes every entry unsafe —
    // either way the verdict is identical: nothing is safe to skip.)
    let g = web_graph(3);
    let ariadne = Ariadne::default();
    let apt = queries::apt("udf_diff_strict", Value::Float(1.0)).unwrap();
    let run = ariadne.online(&Wcc, &g, &apt).unwrap();
    let report = apt_report(&run.query_results, run.metrics.total_activations());

    assert_eq!(report.safe, 0, "WCC skips are never safe: {report:?}");
    assert!(!report.recommended);
    assert_eq!(report.no_execute, report.unsafe_count + report.safe);

    // Running the "optimization" anyway is a disaster, as the paper
    // reports (normalized error ~0.9). Label-change magnitudes depend on
    // id locality; web crawls are crawl-ordered (neighbours have nearby
    // ids), which a grid models — single-step label improvements
    // dominate and the threshold swallows them all.
    let g = ariadne_graph::generators::regular::grid(30, 20);
    let exact = ariadne.baseline(&Wcc, &g);
    let approx = ariadne.baseline(&ApproxWcc::default(), &g);
    let exact_f: Vec<f64> = exact.values.iter().map(|&v| v as f64).collect();
    let approx_f: Vec<f64> = approx.values.iter().map(|&v| v as f64).collect();
    let outcome = evaluate_optimization(
        &exact_f,
        &approx_f,
        2.0,
        exact.metrics.elapsed,
        approx.metrics.elapsed,
    );
    assert!(
        outcome.mismatch_fraction > 0.5,
        "expected most labels wrong, got {:.3}",
        outcome.mismatch_fraction
    );
}

#[test]
fn apt_skippable_fraction_grows_with_threshold() {
    let g = web_graph(4);
    let ariadne = Ariadne::default();
    let analytic = DeltaPageRank::exact(15);
    let mut last = 0.0;
    for eps in [0.001, 0.01, 0.1] {
        let apt = queries::apt("udf_diff", Value::Float(eps)).unwrap();
        let run = ariadne.online(&analytic, &g, &apt).unwrap();
        let report = apt_report(&run.query_results, run.metrics.total_activations());
        assert!(
            report.skippable_fraction >= last,
            "eps {eps}: fraction {} < previous {last}",
            report.skippable_fraction
        );
        last = report.skippable_fraction;
    }
    assert!(last > 0.0, "largest threshold still found nothing");
}
