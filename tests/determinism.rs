//! Cross-thread-count determinism of the flat message plane.
//!
//! The engine's contract is that an N-thread run is **bit-identical** to
//! the sequential reference — values, aggregates, superstep counts and
//! the logical per-superstep message traffic (`messages_sent`,
//! `message_bytes`). This holds in baseline mode (combiners honoured;
//! exact combiners fold at the sender) and in capture mode
//! (`use_combiner = false`, full per-source envelopes), at thread counts
//! that do and do not divide the vertex count.
//!
//! Note what is *not* asserted: `buffered_messages`/`buffered_bytes`
//! measure what the outboxes physically materialized, which legitimately
//! depends on the chunk layout under sender-side combining.

use ariadne_analytics::als::{Als, AlsConfig};
use ariadne_analytics::{PageRank, Sssp, Wcc};
use ariadne_graph::generators::{rmat, BipartiteRatings, RatingsConfig, RmatConfig};
use ariadne_graph::{Csr, VertexId};
use ariadne_vc::{Engine, EngineConfig, MessagePlane, RunResult, VertexProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 2 divides n = 256; 3 and 7 do not, so chunk boundaries land unevenly.
const THREADS: [usize; 3] = [2, 3, 7];

fn graph() -> Csr {
    rmat(RmatConfig {
        scale: 8,
        edge_factor: 6,
        seed: 77,
        ..Default::default()
    })
}

fn run<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    threads: usize,
    use_combiner: bool,
) -> RunResult<P::V> {
    Engine::new(EngineConfig {
        threads,
        use_combiner,
        ..EngineConfig::default()
    })
    .run(program, graph)
}

/// Assert that a parallel run equals the sequential reference on values,
/// aggregates and per-superstep logical message traffic.
fn assert_matches_sequential<P: VertexProgram>(name: &str, program: &P, graph: &Csr)
where
    P::V: PartialEq + std::fmt::Debug,
{
    for use_combiner in [true, false] {
        let mode = if use_combiner { "baseline" } else { "capture" };
        let seq = run(program, graph, 1, use_combiner);
        for t in THREADS {
            let par = run(program, graph, t, use_combiner);
            assert_eq!(
                seq.values, par.values,
                "{name} [{mode}]: values differ at {t} threads"
            );
            assert_eq!(
                seq.aggregates, par.aggregates,
                "{name} [{mode}]: aggregates differ at {t} threads"
            );
            assert_eq!(
                seq.metrics.num_supersteps(),
                par.metrics.num_supersteps(),
                "{name} [{mode}]: superstep count differs at {t} threads"
            );
            for (a, b) in seq.metrics.supersteps.iter().zip(&par.metrics.supersteps) {
                assert_eq!(
                    (
                        a.superstep,
                        a.active_vertices,
                        a.messages_sent,
                        a.messages_delivered,
                        a.message_bytes
                    ),
                    (
                        b.superstep,
                        b.active_vertices,
                        b.messages_sent,
                        b.messages_delivered,
                        b.message_bytes
                    ),
                    "{name} [{mode}]: superstep {} metrics differ at {t} threads",
                    a.superstep
                );
            }
        }
    }
}

#[test]
fn pagerank_deterministic_across_threads() {
    let g = graph();
    let pr = PageRank {
        supersteps: 12,
        ..Default::default()
    };
    assert_matches_sequential("pagerank", &pr, &g);
    // f64 `==` admits -0.0 == 0.0; pin the actual bit patterns too.
    let seq = run(&pr, &g, 1, true);
    for t in THREADS {
        let par = run(&pr, &g, t, true);
        let a: Vec<u64> = seq.values.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = par.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "pagerank rank bits differ at {t} threads");
    }
}

#[test]
fn sssp_deterministic_across_threads() {
    let mut rng = StdRng::seed_from_u64(41);
    let g = graph().map_weights(|_, _, _| 0.05 + rng.gen::<f64>());
    assert_matches_sequential("sssp", &Sssp::new(VertexId(0)), &g);
}

#[test]
fn wcc_deterministic_across_threads() {
    let g = graph();
    assert_matches_sequential("wcc", &Wcc, &g);
}

/// Message conservation: every message routed into an outbox is observed
/// in a destination inbox — `messages_sent == messages_delivered` per
/// superstep, on both planes, with and without combiners, at every
/// thread count. Both counters are computed at *independent* sites
/// (routing side vs. inbox occupancy), so this is a real cross-check of
/// the delivery pipeline, not a restatement.
#[test]
fn messages_sent_equal_messages_delivered_on_both_planes() {
    let g = graph();
    let pr = PageRank {
        supersteps: 8,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(41);
    let weighted = graph().map_weights(|_, _, _| 0.05 + rng.gen::<f64>());
    let sssp = Sssp::new(VertexId(0));

    for plane in [MessagePlane::Flat, MessagePlane::Naive] {
        for use_combiner in [true, false] {
            for t in [1, 2, 7] {
                let config = EngineConfig {
                    threads: t,
                    use_combiner,
                    plane,
                    ..EngineConfig::default()
                };
                for (name, metrics) in [
                    ("pagerank", Engine::new(config.clone()).run(&pr, &g).metrics),
                    (
                        "sssp",
                        Engine::new(config.clone()).run(&sssp, &weighted).metrics,
                    ),
                ] {
                    for s in &metrics.supersteps {
                        assert_eq!(
                            s.messages_sent, s.messages_delivered,
                            "{name} [{plane:?} combiner={use_combiner} t={t}]: \
                             superstep {} lost or duplicated messages",
                            s.superstep
                        );
                    }
                }
            }
        }
    }
}

/// Buffered-byte accounting versus logical traffic. With no combiner the
/// outboxes materialize exactly the logical traffic
/// (`buffered_bytes == message_bytes` per superstep). With a combiner,
/// delivery-side folding makes the stored traffic a strict lower bound
/// (`message_bytes < buffered_bytes`), and sender-side combining — which
/// engages only for *exact* combiners like SSSP's min, and only on the
/// flat plane — additionally shrinks what the outboxes ever materialize:
/// the flat plane's `buffered_bytes` must come in strictly below the
/// naive plane's for the same run.
#[test]
fn buffered_bytes_track_combiner_activity() {
    let mut rng = StdRng::seed_from_u64(41);
    let weighted = graph().map_weights(|_, _, _| 0.05 + rng.gen::<f64>());
    let sssp = Sssp::new(VertexId(0));

    let run_with = |plane: MessagePlane, use_combiner: bool| {
        Engine::new(EngineConfig {
            threads: 2,
            use_combiner,
            plane,
            ..EngineConfig::default()
        })
        .run(&sssp, &weighted)
        .metrics
    };

    // No combiner: buffered == logical, exactly, per superstep.
    for plane in [MessagePlane::Flat, MessagePlane::Naive] {
        let m = run_with(plane, false);
        for s in &m.supersteps {
            assert_eq!(
                s.buffered_bytes, s.message_bytes,
                "[{plane:?} capture]: superstep {} buffered more than it sent",
                s.superstep
            );
            assert_eq!(s.buffered_messages, s.messages_sent);
        }
    }

    // Exact combiner active: folding strictly compresses the traffic.
    let flat = run_with(MessagePlane::Flat, true);
    let naive = run_with(MessagePlane::Naive, true);
    assert!(
        flat.total_message_bytes() < flat.total_buffered_bytes(),
        "combined stored bytes should be strictly below buffered bytes"
    );
    // Sender-side combining (flat plane only) materializes strictly less
    // than the naive plane's raw per-source buffering.
    assert!(
        flat.total_buffered_bytes() < naive.total_buffered_bytes(),
        "sender-side exact combining should shrink outbox materialization \
         (flat {} vs naive {})",
        flat.total_buffered_bytes(),
        naive.total_buffered_bytes()
    );
    // Logical traffic still agrees across planes.
    assert_eq!(flat.total_message_bytes(), naive.total_message_bytes());
    assert_eq!(flat.total_messages(), naive.total_messages());
}

/// Run-local deterministic observability counters are bit-identical
/// across thread counts: the per-superstep logical counters recorded by
/// the engine and the query-evaluation counters ([`EvalStats`])
/// accumulated by the online wrapper must not depend on worker count or
/// interleaving. (Global-registry totals are process-wide and shared
/// across concurrently running tests, so determinism is asserted on the
/// run-local surfaces the registry is fed from.)
#[test]
fn online_query_stats_deterministic_across_threads() {
    use ariadne::session::Ariadne;
    use ariadne_pql::Params;

    let mut rng = StdRng::seed_from_u64(41);
    let weighted = graph().map_weights(|_, _, _| 0.05 + rng.gen::<f64>());
    let sssp = Sssp::new(VertexId(0));
    let query = ariadne::compile(
        "seen(x, v, i) :- value(x, v, i), superstep(x, i).",
        Params::new(),
    )
    .expect("monitoring query compiles");

    let seq = Ariadne::with_threads(1)
        .online(&sssp, &weighted, &query)
        .expect("sequential online run");
    assert!(
        seq.query_stats.rule_firings > 0,
        "online run should record rule firings"
    );
    assert!(seq.query_stats.derived_tuples > 0);
    for t in THREADS {
        let par = Ariadne::with_threads(t)
            .online(&sssp, &weighted, &query)
            .expect("parallel online run");
        assert_eq!(
            seq.query_stats, par.query_stats,
            "EvalStats differ at {t} threads"
        );
        assert_eq!(
            seq.metrics.total_messages_delivered(),
            par.metrics.total_messages_delivered(),
            "delivered totals differ at {t} threads"
        );
    }
}

/// Layered replay is bit-identical across thread counts on *every*
/// surface of the run: merged result tables, round structure, work
/// counters, store-read accounting and the chunk-order-merged
/// [`ariadne_pql::EvalStats`]. Thread counts that do not divide the
/// touched-set sizes are included, so chunk boundaries land unevenly.
#[test]
fn layered_deterministic_across_threads() {
    use ariadne::session::Ariadne;
    use ariadne::{queries, CaptureSpec, CompiledQuery, LayeredConfig};
    use ariadne_pql::Value;
    use ariadne_provenance::ProvStore;

    fn assert_layered_thread_invariant(tag: &str, g: &Csr, store: &ProvStore, q: &CompiledQuery) {
        let ariadne = Ariadne::default();
        let seq = ariadne
            .layered_with(g, store, q, &LayeredConfig::parallel(1))
            .unwrap();
        for t in THREADS {
            let par = ariadne
                .layered_with(g, store, q, &LayeredConfig::parallel(t))
                .unwrap();
            for pred in q.query().idbs.keys() {
                assert_eq!(
                    seq.query_results.sorted(pred),
                    par.query_results.sorted(pred),
                    "{tag}: {pred} differs at {t} threads"
                );
            }
            assert_eq!(
                (seq.layers, seq.flush_rounds),
                (par.layers, par.flush_rounds),
                "{tag}: round structure differs at {t} threads"
            );
            assert_eq!(
                (seq.shipped_tuples, seq.injected_tuples, seq.evaluated_vertices),
                (par.shipped_tuples, par.injected_tuples, par.evaluated_vertices),
                "{tag}: work counters differ at {t} threads"
            );
            assert_eq!(
                (seq.segments_read, seq.segments_skipped, seq.bytes_read, seq.bytes_skipped),
                (par.segments_read, par.segments_skipped, par.bytes_read, par.bytes_skipped),
                "{tag}: store-read accounting differs at {t} threads"
            );
            assert_eq!(
                seq.query_stats, par.query_stats,
                "{tag}: EvalStats differ at {t} threads"
            );
        }
    }

    let mut rng = StdRng::seed_from_u64(41);
    let g = graph().map_weights(|_, _, _| 0.05 + rng.gen::<f64>());
    let ariadne = Ariadne::default();
    let capture = ariadne
        .capture(&Sssp::new(VertexId(0)), &g, &CaptureSpec::full())
        .unwrap();

    // Forward: the apt query ships `change` replicas every layer.
    let apt = queries::apt("udf_diff", Value::Float(0.1)).unwrap();
    assert_layered_thread_invariant("sssp/apt", &g, &capture.store, &apt);

    // Backward: descending replay with layer-0 pre-injection.
    let sigma = capture.store.max_superstep().unwrap();
    let target = capture
        .store
        .layer(sigma)
        .unwrap()
        .into_iter()
        .find(|(p, _)| p == "superstep")
        .and_then(|(_, ts)| ts.first().and_then(|t| t[0].as_id()))
        .expect("someone was active in the last superstep");
    let back = queries::backward_lineage(VertexId(target), sigma).unwrap();
    assert_layered_thread_invariant("sssp/backward", &g, &capture.store, &back);
}

#[test]
fn als_deterministic_across_threads() {
    let br = BipartiteRatings::generate(&RatingsConfig {
        users: 80,
        items: 20,
        ratings_per_user: 10,
        planted_rank: 3,
        noise: 0.2,
        seed: 33,
    });
    let mut cfg = AlsConfig::new(br.users, 4);
    cfg.supersteps = 7;
    let als = Als::new(cfg);
    assert_matches_sequential("als", &als, &br.graph);
    // Factor vectors are f64; pin bit patterns across thread counts.
    let seq = run(&als, &br.graph, 1, true);
    for t in THREADS {
        let par = run(&als, &br.graph, t, true);
        let a: Vec<Vec<u64>> = seq
            .values
            .iter()
            .map(|f| f.iter().map(|x| x.to_bits()).collect())
            .collect();
        let b: Vec<Vec<u64>> = par
            .values
            .iter()
            .map(|f| f.iter().map(|x| x.to_bits()).collect())
            .collect();
        assert_eq!(a, b, "als factor bits differ at {t} threads");
    }
}
