//! Cross-thread-count determinism of the flat message plane.
//!
//! The engine's contract is that an N-thread run is **bit-identical** to
//! the sequential reference — values, aggregates, superstep counts and
//! the logical per-superstep message traffic (`messages_sent`,
//! `message_bytes`). This holds in baseline mode (combiners honoured;
//! exact combiners fold at the sender) and in capture mode
//! (`use_combiner = false`, full per-source envelopes), at thread counts
//! that do and do not divide the vertex count.
//!
//! Note what is *not* asserted: `buffered_messages`/`buffered_bytes`
//! measure what the outboxes physically materialized, which legitimately
//! depends on the chunk layout under sender-side combining.

use ariadne_analytics::als::{Als, AlsConfig};
use ariadne_analytics::{PageRank, Sssp, Wcc};
use ariadne_graph::generators::{rmat, BipartiteRatings, RatingsConfig, RmatConfig};
use ariadne_graph::{Csr, VertexId};
use ariadne_vc::{Engine, EngineConfig, RunResult, VertexProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 2 divides n = 256; 3 and 7 do not, so chunk boundaries land unevenly.
const THREADS: [usize; 3] = [2, 3, 7];

fn graph() -> Csr {
    rmat(RmatConfig {
        scale: 8,
        edge_factor: 6,
        seed: 77,
        ..Default::default()
    })
}

fn run<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    threads: usize,
    use_combiner: bool,
) -> RunResult<P::V> {
    Engine::new(EngineConfig {
        threads,
        use_combiner,
        ..EngineConfig::default()
    })
    .run(program, graph)
}

/// Assert that a parallel run equals the sequential reference on values,
/// aggregates and per-superstep logical message traffic.
fn assert_matches_sequential<P: VertexProgram>(name: &str, program: &P, graph: &Csr)
where
    P::V: PartialEq + std::fmt::Debug,
{
    for use_combiner in [true, false] {
        let mode = if use_combiner { "baseline" } else { "capture" };
        let seq = run(program, graph, 1, use_combiner);
        for t in THREADS {
            let par = run(program, graph, t, use_combiner);
            assert_eq!(
                seq.values, par.values,
                "{name} [{mode}]: values differ at {t} threads"
            );
            assert_eq!(
                seq.aggregates, par.aggregates,
                "{name} [{mode}]: aggregates differ at {t} threads"
            );
            assert_eq!(
                seq.metrics.num_supersteps(),
                par.metrics.num_supersteps(),
                "{name} [{mode}]: superstep count differs at {t} threads"
            );
            for (a, b) in seq.metrics.supersteps.iter().zip(&par.metrics.supersteps) {
                assert_eq!(
                    (a.superstep, a.active_vertices, a.messages_sent, a.message_bytes),
                    (b.superstep, b.active_vertices, b.messages_sent, b.message_bytes),
                    "{name} [{mode}]: superstep {} metrics differ at {t} threads",
                    a.superstep
                );
            }
        }
    }
}

#[test]
fn pagerank_deterministic_across_threads() {
    let g = graph();
    let pr = PageRank {
        supersteps: 12,
        ..Default::default()
    };
    assert_matches_sequential("pagerank", &pr, &g);
    // f64 `==` admits -0.0 == 0.0; pin the actual bit patterns too.
    let seq = run(&pr, &g, 1, true);
    for t in THREADS {
        let par = run(&pr, &g, t, true);
        let a: Vec<u64> = seq.values.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = par.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "pagerank rank bits differ at {t} threads");
    }
}

#[test]
fn sssp_deterministic_across_threads() {
    let mut rng = StdRng::seed_from_u64(41);
    let g = graph().map_weights(|_, _, _| 0.05 + rng.gen::<f64>());
    assert_matches_sequential("sssp", &Sssp::new(VertexId(0)), &g);
}

#[test]
fn wcc_deterministic_across_threads() {
    let g = graph();
    assert_matches_sequential("wcc", &Wcc, &g);
}

#[test]
fn als_deterministic_across_threads() {
    let br = BipartiteRatings::generate(&RatingsConfig {
        users: 80,
        items: 20,
        ratings_per_user: 10,
        planted_rank: 3,
        noise: 0.2,
        seed: 33,
    });
    let mut cfg = AlsConfig::new(br.users, 4);
    cfg.supersteps = 7;
    let als = Als::new(cfg);
    assert_matches_sequential("als", &als, &br.graph);
    // Factor vectors are f64; pin bit patterns across thread counts.
    let seq = run(&als, &br.graph, 1, true);
    for t in THREADS {
        let par = run(&als, &br.graph, t, true);
        let a: Vec<Vec<u64>> = seq
            .values
            .iter()
            .map(|f| f.iter().map(|x| x.to_bits()).collect())
            .collect();
        let b: Vec<Vec<u64>> = par
            .values
            .iter()
            .map(|f| f.iter().map(|x| x.to_bits()).collect())
            .collect();
        assert_eq!(a, b, "als factor bits differ at {t} threads");
    }
}
