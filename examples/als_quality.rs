//! ALS quality monitoring (§6.2.1, Queries 7–8): watch a recommender
//! train, check data and predictions stay in range, and spot users whose
//! error is going the wrong way.
//!
//! ```sh
//! cargo run --release --example als_quality
//! ```

use ariadne::custom::AlsProv;
use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne_analytics::als::{rmse, Als, AlsConfig};
use ariadne_graph::generators::{BipartiteRatings, RatingsConfig};
use ariadne_graph::VertexId;
use std::sync::Arc;

fn main() {
    // A MovieLens-shaped ratings graph: many users, few items, a long
    // tail of item popularity, ratings in 0–5 from a planted low-rank
    // model.
    let ratings = BipartiteRatings::generate(&RatingsConfig {
        users: 600,
        items: 120,
        ratings_per_user: 25,
        planted_rank: 5,
        noise: 0.25,
        seed: 2024,
    });
    println!(
        "ratings graph: {} users, {} items, {} ratings",
        ratings.users,
        ratings.items,
        ratings.num_ratings()
    );

    let mut cfg = AlsConfig::new(ratings.users, 8);
    cfg.supersteps = 11;
    let als = Als::new(cfg);
    let ariadne = Ariadne::default();

    // Train with Query 7 (range check) always on. The AlsProv generator
    // derives prov_error / prov_prediction from the analytic's state —
    // the ALS code itself knows nothing about provenance.
    let q7 = queries::als_range_check().unwrap();
    let run = ariadne
        .online_with(&als, &ratings.graph, &q7, Some(Arc::new(AlsProv)))
        .unwrap();
    let model_rmse = rmse(&ratings.graph, &run.values, ratings.users);
    println!(
        "trained {} supersteps, rmse {:.3}",
        run.metrics.num_supersteps(),
        model_rmse
    );
    println!(
        "Q7: input_failed={} algo_failed={}",
        run.query_results.len("input_failed"),
        run.query_results.len("algo_failed")
    );

    // Query 8: users/items whose average prediction error *increased*
    // between consecutive iterations — candidates for special handling.
    let q8 = queries::als_error_increase(0.25).unwrap();
    let run = ariadne
        .online_with(&als, &ratings.graph, &q8, Some(Arc::new(AlsProv)))
        .unwrap();
    let problems = run.query_results.sorted("problem");
    println!("Q8: {} error-increase events", problems.len());
    for t in problems.iter().take(5) {
        println!(
            "  vertex {}: avg error {:.3} -> {:.3} at superstep {}",
            t[0],
            t[2].as_f64().unwrap_or(f64::NAN),
            t[1].as_f64().unwrap_or(f64::NAN),
            t[3]
        );
    }

    // Now corrupt the input and watch Query 7 light up.
    println!("--- corrupting user 0's ratings to 30.0 ---");
    let corrupted = ratings.graph.map_weights(|s, d, w| {
        if s == VertexId(0) && d.index() >= ratings.users {
            30.0
        } else {
            w
        }
    });
    let run = ariadne
        .online_with(&als, &corrupted, &q7, Some(Arc::new(AlsProv)))
        .unwrap();
    let input_failed = run.query_results.sorted("input_failed");
    println!(
        "Q7 now reports {} input failures; first few:",
        input_failed.len()
    );
    for t in input_failed.iter().take(3) {
        println!("  edge {} -> {} at superstep {}", t[0], t[1], t[2]);
    }
}
