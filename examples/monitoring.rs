//! Execution monitoring (§6.2.1): always-on invariant checks that catch
//! a buggy analytic the moment it misbehaves — no crash required.
//!
//! ```sh
//! cargo run --release --example monitoring
//! ```

use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne_analytics::Sssp;
use ariadne_graph::{Csr, GraphBuilder, VertexId};
use ariadne_vc::{Context, Envelope, VertexProgram};

/// An SSSP with a subtle bug: one vertex adds a stale penalty to its
/// distance when it recomputes. No crash, no exception — just quietly
/// wrong results downstream.
struct SsspWithBug {
    inner: Sssp,
}

impl VertexProgram for SsspWithBug {
    type V = f64;
    type M = f64;

    fn init(&self, v: VertexId, g: &Csr) -> f64 {
        self.inner.init(v, g)
    }

    fn compute(&self, ctx: &mut dyn Context<f64>, value: &mut f64, msgs: &[Envelope<f64>]) {
        self.inner.compute(ctx, value, msgs);
        if ctx.vertex() == VertexId(2) && ctx.superstep() > 1 && value.is_finite() {
            *value += 4.0; // the bug
        }
    }
}

fn main() {
    // A diamond where vertex 2 is relaxed twice: first through the heavy
    // direct edge, then through the cheaper two-hop path.
    let mut b = GraphBuilder::new();
    b.add_edge(VertexId(0), VertexId(2), 5.0);
    b.add_edge(VertexId(0), VertexId(1), 1.0);
    b.add_edge(VertexId(1), VertexId(2), 1.0);
    b.add_edge(VertexId(2), VertexId(3), 1.0);
    b.add_edge(VertexId(3), VertexId(4), 1.0);
    let graph = b.build();

    let ariadne = Ariadne::default();
    // Query 5: a vertex value must never increase between activations.
    let q5 = queries::sssp_wcc_value_check().unwrap();
    // Query 6: no change without messages.
    let q6 = queries::sssp_wcc_no_message_no_change().unwrap();

    println!("--- correct SSSP, both monitors online ---");
    let good = Sssp::new(VertexId(0));
    for (name, q) in [("Q5", &q5), ("Q6", &q6)] {
        let run = ariadne.online(&good, &graph, q).unwrap();
        let pred = if name == "Q5" { "check_failed" } else { "problem" };
        println!("{name}: {} violations", run.query_results.sorted(pred).len());
    }

    println!("--- buggy SSSP, same monitors ---");
    let bad = SsspWithBug {
        inner: Sssp::new(VertexId(0)),
    };
    let run = ariadne.online(&bad, &graph, &q5).unwrap();
    let failures = run.query_results.sorted("check_failed");
    println!("Q5: {} violation(s)", failures.len());
    for t in &failures {
        println!(
            "  vertex {} increased its distance at superstep {}",
            t[0], t[1]
        );
    }
    println!("final (wrong) distances: {:?}", run.values);
    println!(
        "note: the analytic never crashed — without the monitor this bug \
         ships to production"
    );
}
