//! Checkpoint/restart: survive a mid-run crash and resume bit-identically.
//!
//! ```sh
//! cargo run --release --example checkpoint_resume
//! ```
//!
//! A provenance capture over a big graph is a long-running job; this
//! example shows the recovery story end to end:
//!
//! 1. run PageRank with barrier checkpoints (snapshot format v1:
//!    `"ARSN" | version | payload len | payload | CRC32`, one file per
//!    checkpointed superstep, written atomically);
//! 2. inject a deterministic crash mid-run with a [`FaultPlan`];
//! 3. resume from the latest valid snapshot and verify the result is
//!    **bit-identical** to an uninterrupted run — values, aggregates and
//!    per-superstep message counters all match, because the engine is
//!    deterministic and the barrier state is complete.

use ariadne::session::{Ariadne, AriadneError};
use ariadne::{CheckpointConfig, EngineConfig, EngineError, FaultPlan};
use ariadne_analytics::PageRank;
use ariadne_graph::generators::{rmat, RmatConfig};
use ariadne_vc::SNAPSHOT_VERSION;

fn main() {
    let graph = rmat(RmatConfig {
        scale: 10,
        edge_factor: 12,
        ..Default::default()
    });
    let analytic = PageRank {
        supersteps: 12,
        ..PageRank::default()
    };
    println!(
        "graph: {} vertices, {} edges; snapshot format v{SNAPSHOT_VERSION}",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Reference: an uninterrupted run (no checkpointing, no disk IO).
    let reference = Ariadne::default().baseline(&analytic, &graph);
    println!(
        "reference: {} supersteps in {:?}",
        reference.supersteps(),
        reference.metrics.elapsed
    );

    let ckpt_dir = std::env::temp_dir().join(format!("ariadne-ckpt-{}", std::process::id()));
    std::fs::remove_dir_all(&ckpt_dir).ok();

    // Crash run: checkpoint every 3 barriers, die at superstep 7.
    let plan = FaultPlan::new();
    plan.kill_at_superstep(7);
    let crashing = Ariadne {
        engine: EngineConfig {
            checkpoint: Some(CheckpointConfig::new(ckpt_dir.clone(), 3)),
            fault: Some(plan),
            ..EngineConfig::default()
        },
        ..Ariadne::default()
    };
    match crashing.baseline_checkpointed(&analytic, &graph) {
        Err(AriadneError::Engine(EngineError::InjectedCrash { superstep })) => {
            println!("crashed (injected) at superstep {superstep}");
        }
        other => panic!("expected the injected crash, got {other:?}"),
    }
    let snapshots: Vec<_> = std::fs::read_dir(&ckpt_dir)
        .expect("checkpoint dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    println!("snapshots on disk: {snapshots:?}");

    // Resume: same analytic, graph and engine config, fault plan spent.
    let resuming = Ariadne {
        engine: EngineConfig {
            checkpoint: Some(CheckpointConfig::new(ckpt_dir.clone(), 3)),
            fault: None,
            ..EngineConfig::default()
        },
        ..Ariadne::default()
    };
    let resumed = resuming
        .resume_baseline(&analytic, &graph)
        .expect("resume from latest valid snapshot");
    println!(
        "resumed: {} supersteps total in {:?}",
        resumed.supersteps(),
        resumed.metrics.elapsed
    );

    // Bit-identical recovery: every value, aggregate and per-superstep
    // counter matches the uninterrupted reference.
    assert_eq!(reference.values, resumed.values, "values diverged");
    assert_eq!(
        reference.aggregates, resumed.aggregates,
        "aggregates diverged"
    );
    for (a, b) in reference
        .metrics
        .supersteps
        .iter()
        .zip(&resumed.metrics.supersteps)
    {
        assert_eq!(
            (a.superstep, a.active_vertices, a.messages_sent),
            (b.superstep, b.active_vertices, b.messages_sent),
            "superstep counters diverged"
        );
    }
    println!("resume is bit-identical to the uninterrupted run ✓");

    std::fs::remove_dir_all(&ckpt_dir).ok();
}
