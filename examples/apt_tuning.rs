//! The paper's motivating scenario (§2.2): use the apt query to decide —
//! per analytic — whether the "skip small updates" approximation is
//! worth it, then act on the verdict and measure what happened.
//!
//! ```sh
//! cargo run --release --example apt_tuning
//! ```

use ariadne::optimize::{apt_report, evaluate_optimization};
use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne_analytics::pagerank::{delta_ranks, DeltaPageRank};
use ariadne_analytics::{ApproxSssp, ApproxWcc, Sssp, Wcc};
use ariadne_graph::generators::regular::grid;
use ariadne_graph::generators::{rmat, RmatConfig};
use ariadne_graph::VertexId;
use ariadne_pql::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let ariadne = Ariadne::default();
    let web = rmat(RmatConfig {
        scale: 10,
        edge_factor: 10,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(7);
    let weighted = web.map_weights(|_, _, _| 0.05 + rng.gen::<f64>());

    // ---------------- PageRank, eps = 0.01 ----------------
    println!("== PageRank, apt with udf_diff, eps = 0.01 ==");
    let pr = DeltaPageRank::exact(20);
    let apt = queries::apt("udf_diff", Value::Float(0.01)).unwrap();
    let run = ariadne.online(&pr, &web, &apt).unwrap();
    let report = apt_report(&run.query_results, run.metrics.total_activations());
    println!(
        "  no_execute={} safe={} unsafe={} ({:.0}% of activations skippable)",
        report.no_execute,
        report.safe,
        report.unsafe_count,
        report.skippable_fraction * 100.0
    );
    println!("  verdict: {}", verdict(report.recommended));
    if report.recommended {
        let exact = ariadne.baseline(&pr, &web);
        let approx = ariadne.baseline(&DeltaPageRank::approximate(20, 0.01), &web);
        let outcome = evaluate_optimization(
            &delta_ranks(&exact.values),
            &delta_ranks(&approx.values),
            2.0,
            exact.metrics.elapsed,
            approx.metrics.elapsed,
        );
        println!(
            "  followed it: {:.2}x speedup, L2 error {:.1e}, medians {:.3} -> {:.3}",
            outcome.speedup,
            outcome.relative_error,
            outcome.median_original,
            outcome.median_optimized
        );
    }

    // ---------------- SSSP, eps = 0.1 ----------------
    println!("== SSSP, apt with udf_diff, eps = 0.1 ==");
    let sssp = Sssp::new(VertexId(0));
    let apt = queries::apt("udf_diff", Value::Float(0.1)).unwrap();
    let run = ariadne.online(&sssp, &weighted, &apt).unwrap();
    let report = apt_report(&run.query_results, run.metrics.total_activations());
    println!(
        "  no_execute={} safe={} unsafe={}",
        report.no_execute, report.safe, report.unsafe_count
    );
    println!("  verdict: {}", verdict(report.recommended));
    if report.recommended {
        let exact = ariadne.baseline(&sssp, &weighted);
        let approx = ariadne.baseline(&ApproxSssp::new(VertexId(0), 0.1), &weighted);
        let outcome = evaluate_optimization(
            &exact.values,
            &approx.values,
            1.0,
            exact.metrics.elapsed,
            approx.metrics.elapsed,
        );
        println!(
            "  followed it: {:.2}x speedup, L1 error {:.1e}",
            outcome.speedup, outcome.relative_error
        );
    }

    // ---------------- WCC: the rejection (§6.2.2) ----------------
    println!("== WCC, apt with udf_diff_strict, eps = 1 ==");
    // Crawl-ordered ids = neighbouring pages have neighbouring ids: a
    // grid models that, and it is where the broken optimization hurts.
    let local = grid(40, 25);
    let apt = queries::apt("udf_diff_strict", Value::Float(1.0)).unwrap();
    let run = ariadne.online(&Wcc, &local, &apt).unwrap();
    let report = apt_report(&run.query_results, run.metrics.total_activations());
    println!(
        "  no_execute={} safe={} unsafe={}",
        report.no_execute, report.safe, report.unsafe_count
    );
    println!("  verdict: {}", verdict(report.recommended));
    // Ignore the verdict on purpose, and see why it was right:
    let exact = ariadne.baseline(&Wcc, &local);
    let approx = ariadne.baseline(&ApproxWcc::default(), &local);
    let wrong = exact
        .values
        .iter()
        .zip(&approx.values)
        .filter(|(a, b)| a != b)
        .count();
    println!(
        "  forcing it anyway mislabels {}/{} vertices ({:.0}%)",
        wrong,
        exact.values.len(),
        100.0 * wrong as f64 / exact.values.len() as f64
    );
}

fn verdict(recommended: bool) -> &'static str {
    if recommended {
        "adopt the approximate variant"
    } else {
        "REJECT the approximate variant"
    }
}
