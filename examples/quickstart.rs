//! Quickstart: run PageRank with an always-on provenance check.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's Figure 2 flow: compile a PQL query, append it to
//! an unchanged analytic, run both in lockstep, and read the query's
//! result tables next to the analytic's output.

use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne_analytics::PageRank;
use ariadne_graph::generators::{rmat, RmatConfig};

fn main() {
    // A small web-graph stand-in: heavy-tailed R-MAT, ~1k vertices.
    let graph = rmat(RmatConfig {
        scale: 10,
        edge_factor: 12,
        ..Default::default()
    });
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // The paper's Query 4: flag any message delivered to a vertex with no
    // incoming edges (Giraph-style send-by-id bugs).
    let query = queries::pagerank_check().expect("query compiles");
    println!("query direction: {:?} (online-capable)", query.direction());

    let ariadne = Ariadne::default();
    let analytic = PageRank::default();

    // Baseline run, for comparison.
    let baseline = ariadne.baseline(&analytic, &graph);
    println!(
        "baseline: {} supersteps in {:?}",
        baseline.supersteps(),
        baseline.metrics.elapsed
    );

    // Online run: analytic + query together, engine unmodified.
    let run = ariadne
        .online(&analytic, &graph, &query)
        .expect("online evaluation");
    println!(
        "online:   {} supersteps in {:?}",
        run.metrics.num_supersteps(),
        run.metrics.elapsed
    );

    // Theorem 5.4 in action: the analytic's result is untouched...
    assert_eq!(baseline.values, run.values);
    println!("analytic result identical to baseline [ok]");

    // ...and the query's verdict is ready the moment the run ends.
    let violations = run.query_results.sorted("check_failed");
    println!(
        "check_failed rows: {} (PageRank only messages real neighbours)",
        violations.len()
    );

    // Top-5 ranks, for flavour.
    let mut ranked: Vec<(usize, f64)> = run.values.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 5 ranks:");
    for (v, r) in ranked.into_iter().take(5) {
        println!("  vertex {v:4}  rank {r:.3}");
    }
}
