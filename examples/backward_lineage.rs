//! Backward lineage (§6.3): trace an output value back to the inputs
//! that produced it — over full provenance (Query 10) and over the
//! slim custom capture (Queries 11 + 12).
//!
//! ```sh
//! cargo run --release --example backward_lineage
//! ```

use ariadne::queries;
use ariadne::session::Ariadne;
use ariadne::CaptureSpec;
use ariadne_analytics::Sssp;
use ariadne_graph::generators::{rmat, RmatConfig};
use ariadne_graph::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let graph = rmat(RmatConfig {
        scale: 9,
        edge_factor: 8,
        ..Default::default()
    })
    .map_weights(|_, _, _| 0.05 + rng.gen::<f64>());
    let ariadne = Ariadne::default();
    let analytic = Sssp::new(VertexId(0));

    // --- Path A: capture everything (Query 2), trace with Query 10 ---
    let full = ariadne
        .capture(&analytic, &graph, &CaptureSpec::full())
        .unwrap();
    println!(
        "full capture: {} tuples, {} bytes",
        full.store.tuple_count(),
        full.store.byte_size()
    );

    // --- Path B: capture only what tracing needs (Query 11) ---
    let custom = ariadne
        .capture(
            &analytic,
            &graph,
            &queries::capture_backward_custom().unwrap(),
        )
        .unwrap();
    println!(
        "custom capture: {} tuples, {} bytes ({:.0}% of full)",
        custom.store.tuple_count(),
        custom.store.byte_size(),
        100.0 * custom.store.byte_size() as f64 / full.store.byte_size() as f64
    );

    // Pick a vertex that computed in the final superstep.
    let sigma = full.store.max_superstep().unwrap();
    let target = full
        .store
        .layer(sigma)
        .unwrap()
        .into_iter()
        .find(|(p, _)| p == "superstep")
        .and_then(|(_, ts)| ts.first().and_then(|t| t[0].as_id()))
        .map(VertexId)
        .unwrap();
    println!("tracing vertex {target} back from superstep {sigma}");

    // Trace over full provenance.
    let q10 = queries::backward_lineage(target, sigma).unwrap();
    let t0 = Instant::now();
    let full_run = ariadne.layered(&graph, &full.store, &q10).unwrap();
    let t_full = t0.elapsed();

    // Trace over the custom capture.
    let q12 = queries::backward_lineage_custom(target, sigma).unwrap();
    let t0 = Instant::now();
    let custom_run = ariadne.layered(&graph, &custom.store, &q12).unwrap();
    let t_custom = t0.elapsed();

    let lineage_full = full_run.query_results.sorted("back_lineage");
    let lineage_custom = custom_run.query_results.sorted("back_lineage");
    assert_eq!(lineage_full, lineage_custom, "both paths agree");

    println!(
        "lineage: {} superstep-0 ancestors (traces agree across both paths)",
        lineage_full.len()
    );
    println!(
        "query time: full {:?} vs custom {:?} ({:.1}x faster on the slim capture)",
        t_full,
        t_custom,
        t_full.as_secs_f64() / t_custom.as_secs_f64().max(1e-9)
    );
    for t in lineage_full.iter().take(5) {
        println!("  ancestor {} (value at superstep 0: {})", t[0], t[1]);
    }
}
