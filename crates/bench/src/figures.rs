//! Figures 7–12 of the paper: runtime overheads of capture and of the
//! three query evaluation modes, optimization speedups, and backward
//! tracing costs.

use crate::workloads::{CrawlWorkload, Workloads};
use ariadne::custom::AlsProv;
use ariadne::optimize::{apt_report, AptReport};
use ariadne::queries;
use ariadne::session::AriadneError;
use ariadne::{CaptureSpec, CompiledQuery};
use ariadne_analytics::als::{Als, AlsConfig};
use ariadne_analytics::pagerank::DeltaPageRank;
use ariadne_analytics::{ApproxSssp, ApproxWcc, Wcc};
use ariadne_graph::{Csr, VertexId};
use ariadne_pql::Value;
use ariadne_provenance::{ProvEncode, ProvStore};
use ariadne_vc::VertexProgram;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One row of Figure 7 (capture runtime overheads).
#[derive(Clone, Debug)]
pub struct CaptureRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Analytic name.
    pub analytic: &'static str,
    /// Bare analytic runtime T.
    pub baseline: Duration,
    /// Full capture (Query 2) runtime / T.
    pub full_ratio: f64,
    /// Custom capture (Query 3) runtime / T.
    pub custom_ratio: f64,
}

/// Figure 7: full vs custom capture overhead for each analytic/dataset.
pub fn fig7(w: &Workloads) -> Vec<CaptureRow> {
    let mut rows = Vec::new();
    for c in &w.crawls {
        let hub = c.graph.max_out_degree_vertex().unwrap();
        rows.push(capture_row(w, c, "PageRank", &w.pagerank(), &c.graph, hub));
        rows.push(capture_row(w, c, "SSSP", &w.sssp(c), &c.weighted, c.source));
        rows.push(capture_row(w, c, "WCC", &w.wcc(), &c.graph, hub));
    }
    rows
}

fn capture_row<A>(
    w: &Workloads,
    c: &CrawlWorkload,
    name: &'static str,
    analytic: &A,
    graph: &Csr,
    lineage_seed: VertexId,
) -> CaptureRow
where
    A: VertexProgram,
    A::V: ProvEncode,
    A::M: ProvEncode,
{
    let baseline = w.ariadne.baseline(analytic, graph).metrics.elapsed;
    let full = w
        .ariadne
        .capture(analytic, graph, &CaptureSpec::full())
        .unwrap()
        .metrics
        .elapsed;
    let custom_spec = queries::capture_forward_lineage(lineage_seed).unwrap();
    let custom = w
        .ariadne
        .capture(analytic, graph, &custom_spec)
        .unwrap()
        .metrics
        .elapsed;
    CaptureRow {
        dataset: c.dataset.name(),
        analytic: name,
        baseline,
        full_ratio: ratio(full, baseline),
        custom_ratio: ratio(custom, baseline),
    }
}

/// One row comparing the three evaluation modes against the baseline.
#[derive(Clone, Debug)]
pub struct ModeRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Analytic name.
    pub analytic: &'static str,
    /// Query label (e.g. "Q4").
    pub query: &'static str,
    /// Bare analytic runtime T.
    pub baseline: Duration,
    /// Online runtime / T.
    pub online_ratio: f64,
    /// Layered offline runtime / T (capture excluded, as in §6.2).
    pub layered_ratio: f64,
    /// Naive offline runtime / T; `None` when the materialization budget
    /// was exceeded (the paper's "Naive was not able to scale").
    pub naive_ratio: Option<f64>,
}

#[allow(clippy::too_many_arguments)]
fn mode_row<A>(
    w: &Workloads,
    dataset: &'static str,
    analytic_name: &'static str,
    query_name: &'static str,
    analytic: &A,
    graph: &Csr,
    query: &CompiledQuery,
    store: &ProvStore,
    baseline: Duration,
) -> ModeRow
where
    A: VertexProgram,
    A::V: ProvEncode,
    A::M: ProvEncode,
{
    let online = w
        .ariadne
        .online(analytic, graph, query)
        .unwrap()
        .metrics
        .elapsed;
    let t0 = Instant::now();
    w.ariadne.layered(graph, store, query).unwrap();
    let layered = t0.elapsed();
    let t0 = Instant::now();
    let naive = match w.ariadne.naive(graph, store, query) {
        Ok(_) => Some(ratio(t0.elapsed(), baseline)),
        Err(AriadneError::NaiveOverflow { .. }) => None,
        Err(e) => panic!("naive evaluation failed: {e}"),
    };
    ModeRow {
        dataset,
        analytic: analytic_name,
        query: query_name,
        baseline,
        online_ratio: ratio(online, baseline),
        layered_ratio: ratio(layered, baseline),
        naive_ratio: naive,
    }
}

/// Figure 8: execution-monitoring queries (4, 5, 6) in all three modes.
pub fn fig8(w: &Workloads) -> Vec<ModeRow> {
    let q4 = queries::pagerank_check().unwrap();
    let q5 = queries::sssp_wcc_value_check().unwrap();
    let q6 = queries::sssp_wcc_no_message_no_change().unwrap();
    let mut rows = Vec::new();
    for c in &w.crawls {
        let name = c.dataset.name();
        // PageRank + Query 4.
        let pr = w.pagerank();
        let base = w.ariadne.baseline(&pr, &c.graph).metrics.elapsed;
        let store = w
            .ariadne
            .capture(&pr, &c.graph, &CaptureSpec::full())
            .unwrap()
            .store;
        rows.push(mode_row(w, name, "PageRank", "Q4", &pr, &c.graph, &q4, &store, base));
        // SSSP + Queries 5, 6.
        let ss = w.sssp(c);
        let base = w.ariadne.baseline(&ss, &c.weighted).metrics.elapsed;
        let store = w
            .ariadne
            .capture(&ss, &c.weighted, &CaptureSpec::full())
            .unwrap()
            .store;
        rows.push(mode_row(w, name, "SSSP", "Q5", &ss, &c.weighted, &q5, &store, base));
        rows.push(mode_row(w, name, "SSSP", "Q6", &ss, &c.weighted, &q6, &store, base));
        // WCC + Queries 5, 6.
        let wc = w.wcc();
        let base = w.ariadne.baseline(&wc, &c.graph).metrics.elapsed;
        let store = w
            .ariadne
            .capture(&wc, &c.graph, &CaptureSpec::full())
            .unwrap()
            .store;
        rows.push(mode_row(w, name, "WCC", "Q5", &wc, &c.graph, &q5, &store, base));
        rows.push(mode_row(w, name, "WCC", "Q6", &wc, &c.graph, &q6, &store, base));
    }
    rows
}

/// One row of Figure 9 (ALS monitoring overhead).
#[derive(Clone, Debug)]
pub struct AlsRow {
    /// Feature count (the ML-20^k variants).
    pub rank: usize,
    /// Query label ("Q7" or "Q8").
    pub query: &'static str,
    /// Bare ALS runtime.
    pub baseline: Duration,
    /// Online runtime / T.
    pub online_ratio: f64,
}

/// Figure 9: ALS Queries 7 and 8 online, across feature counts.
pub fn fig9(w: &Workloads) -> Vec<AlsRow> {
    let q7 = queries::als_range_check().unwrap();
    let q8 = queries::als_error_increase(0.5).unwrap();
    let mut rows = Vec::new();
    for &rank in &w.config.als_ranks {
        let mut cfg = AlsConfig::new(w.ratings.users, rank);
        cfg.supersteps = w.config.als_supersteps;
        let als = Als::new(cfg);
        let baseline = w.ariadne.baseline(&als, &w.ratings.graph).metrics.elapsed;
        for (label, q) in [("Q7", &q7), ("Q8", &q8)] {
            let online = w
                .ariadne
                .online_with(&als, &w.ratings.graph, q, Some(Arc::new(AlsProv)))
                .unwrap()
                .metrics
                .elapsed;
            rows.push(AlsRow {
                rank,
                query: label,
                baseline,
                online_ratio: ratio(online, baseline),
            });
        }
    }
    rows
}

/// One row of Figure 10 (optimized-analytic speedup).
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Analytic name.
    pub analytic: &'static str,
    /// Original runtime / optimized runtime.
    pub speedup: f64,
    /// Messages saved: optimized / original message count.
    pub message_ratio: f64,
}

/// Figure 10: runtime improvement of the apt-optimized analytics.
pub fn fig10(w: &Workloads) -> Vec<SpeedupRow> {
    let steps = w.config.pagerank_supersteps;
    let mut rows = Vec::new();
    for c in &w.crawls {
        let exact = w.ariadne.baseline(&DeltaPageRank::exact(steps), &c.graph);
        let approx = w
            .ariadne
            .baseline(&DeltaPageRank::approximate(steps, 0.01), &c.graph);
        rows.push(SpeedupRow {
            dataset: c.dataset.name(),
            analytic: "PageRank",
            speedup: ratio(exact.metrics.elapsed, approx.metrics.elapsed),
            message_ratio: approx.metrics.total_messages() as f64
                / exact.metrics.total_messages().max(1) as f64,
        });
        let exact = w.ariadne.baseline(&w.sssp(c), &c.weighted);
        let approx = w
            .ariadne
            .baseline(&ApproxSssp::new(c.source, 0.1), &c.weighted);
        rows.push(SpeedupRow {
            dataset: c.dataset.name(),
            analytic: "SSSP",
            speedup: ratio(exact.metrics.elapsed, approx.metrics.elapsed),
            message_ratio: approx.metrics.total_messages() as f64
                / exact.metrics.total_messages().max(1) as f64,
        });
    }
    rows
}

/// One row of Figure 11 (apt query overhead) plus the report the
/// developer reads.
#[derive(Clone, Debug)]
pub struct AptRow {
    /// The mode-ratio measurements.
    pub modes: ModeRow,
    /// The apt verdict.
    pub report: AptReport,
}

/// Figure 11: the apt query across analytics and datasets, all modes.
pub fn fig11(w: &Workloads) -> Vec<AptRow> {
    let mut rows = Vec::new();
    for c in &w.crawls {
        let name = c.dataset.name();
        // PageRank (delta formulation — the one the optimization targets).
        let pr = DeltaPageRank::exact(w.config.pagerank_supersteps);
        let apt_pr = queries::apt("udf_diff", Value::Float(0.01)).unwrap();
        rows.push(apt_row(w, name, "PageRank", &pr, &c.graph, &apt_pr));
        // SSSP.
        let apt_ss = queries::apt("udf_diff", Value::Float(0.1)).unwrap();
        rows.push(apt_row(w, name, "SSSP", &w.sssp(c), &c.weighted, &apt_ss));
        // WCC (strict comparison: labels are nominal).
        let apt_wc = queries::apt("udf_diff_strict", Value::Float(1.0)).unwrap();
        rows.push(apt_row(w, name, "WCC", &w.wcc(), &c.graph, &apt_wc));
    }
    rows
}

fn apt_row<A>(
    w: &Workloads,
    dataset: &'static str,
    analytic_name: &'static str,
    analytic: &A,
    graph: &Csr,
    query: &CompiledQuery,
) -> AptRow
where
    A: VertexProgram,
    A::V: ProvEncode,
    A::M: ProvEncode,
{
    let baseline = w.ariadne.baseline(analytic, graph).metrics.elapsed;
    let online_run = w.ariadne.online(analytic, graph, query).unwrap();
    let report = apt_report(
        &online_run.query_results,
        online_run.metrics.total_activations(),
    );
    let store = w
        .ariadne
        .capture(analytic, graph, &CaptureSpec::full())
        .unwrap()
        .store;
    let t0 = Instant::now();
    w.ariadne.layered(graph, &store, query).unwrap();
    let layered = t0.elapsed();
    let t0 = Instant::now();
    let naive = match w.ariadne.naive(graph, &store, query) {
        Ok(_) => Some(ratio(t0.elapsed(), baseline)),
        Err(AriadneError::NaiveOverflow { .. }) => None,
        Err(e) => panic!("naive evaluation failed: {e}"),
    };
    AptRow {
        modes: ModeRow {
            dataset,
            analytic: analytic_name,
            query: "Q1",
            baseline,
            online_ratio: ratio(online_run.metrics.elapsed, baseline),
            layered_ratio: ratio(layered, baseline),
            naive_ratio: naive,
        },
        report,
    }
}

/// One row of Figure 12 (backward lineage costs).
#[derive(Clone, Debug)]
pub struct BackwardRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Analytic name.
    pub analytic: &'static str,
    /// Layered Query 10 over full capture, / T.
    pub full_ratio: f64,
    /// Layered Query 12 over the Query-11 custom capture, / T.
    pub custom_ratio: f64,
    /// Lineage sizes must agree between the two paths.
    pub lineage_size: usize,
}

/// Figure 12: backward lineage over full (Q10) vs custom (Q11+Q12)
/// capture, layered in both cases.
pub fn fig12(w: &Workloads) -> Vec<BackwardRow> {
    let directed = queries::capture_backward_custom().unwrap();
    // WCC messages both edge directions, so its prov_edges must too.
    let undirected = queries::capture_backward_custom_undirected().unwrap();
    let mut rows = Vec::new();
    for c in &w.crawls {
        rows.push(backward_row(w, c, "PageRank", &w.pagerank(), &c.graph, &directed));
        rows.push(backward_row(w, c, "SSSP", &w.sssp(c), &c.weighted, &directed));
        rows.push(backward_row(w, c, "WCC", &w.wcc(), &c.graph, &undirected));
    }
    rows
}

fn backward_row<A>(
    w: &Workloads,
    c: &CrawlWorkload,
    name: &'static str,
    analytic: &A,
    graph: &Csr,
    custom_spec: &CaptureSpec,
) -> BackwardRow
where
    A: VertexProgram,
    A::V: ProvEncode,
    A::M: ProvEncode,
{
    let baseline = w.ariadne.baseline(analytic, graph).metrics.elapsed;
    let full = w
        .ariadne
        .capture(analytic, graph, &CaptureSpec::full())
        .unwrap()
        .store;
    let custom = w
        .ariadne
        .capture(analytic, graph, custom_spec)
        .unwrap()
        .store;
    let sigma = full.max_superstep().unwrap();
    let target = full
        .layer(sigma)
        .unwrap()
        .into_iter()
        .find(|(p, _)| p == "superstep")
        .and_then(|(_, ts)| ts.first().and_then(|t| t[0].as_id()))
        .map(VertexId)
        .unwrap_or(c.source);

    let q10 = queries::backward_lineage(target, sigma).unwrap();
    let t0 = Instant::now();
    let full_run = w.ariadne.layered(graph, &full, &q10).unwrap();
    let full_time = t0.elapsed();

    let q12 = queries::backward_lineage_custom(target, sigma).unwrap();
    let t0 = Instant::now();
    let custom_run = w.ariadne.layered(graph, &custom, &q12).unwrap();
    let custom_time = t0.elapsed();

    let full_lineage = full_run.query_results.sorted("back_lineage");
    let custom_lineage = custom_run.query_results.sorted("back_lineage");
    assert_eq!(
        full_lineage, custom_lineage,
        "Q10 and Q12 must return the same lineage"
    );
    BackwardRow {
        dataset: c.dataset.name(),
        analytic: name,
        full_ratio: ratio(full_time, baseline),
        custom_ratio: ratio(custom_time, baseline),
        lineage_size: full_lineage.len(),
    }
}

/// The §6.2.2 WCC narrative: apt's verdict plus the damage done by
/// ignoring it.
#[derive(Clone, Debug)]
pub struct WccNarrative {
    /// The apt verdict on the id-local (grid-structured) model.
    pub report: AptReport,
    /// Fraction of labels wrong after forcing the optimization.
    pub mismatch_fraction: f64,
}

/// Run the WCC rejection story on an id-local graph (web crawls are
/// crawl-ordered, so neighbouring pages have neighbouring ids — a grid
/// models that locality).
pub fn wcc_narrative(_w: &Workloads) -> WccNarrative {
    let g = ariadne_graph::generators::regular::grid(40, 25);
    let ariadne = ariadne::session::Ariadne::default();
    let apt = queries::apt("udf_diff_strict", Value::Float(1.0)).unwrap();
    let run = ariadne.online(&Wcc, &g, &apt).unwrap();
    let report = apt_report(&run.query_results, run.metrics.total_activations());
    let exact = ariadne.baseline(&Wcc, &g);
    let approx = ariadne.baseline(&ApproxWcc::default(), &g);
    let wrong = exact
        .values
        .iter()
        .zip(&approx.values)
        .filter(|(a, b)| a != b)
        .count();
    WccNarrative {
        report,
        mismatch_fraction: wrong as f64 / exact.values.len().max(1) as f64,
    }
}

/// The §2.2 threshold-sweep workflow: the apt query at several ε values
/// on one dataset, so a developer can pick the best safe threshold.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Threshold ε.
    pub epsilon: f64,
    /// Fraction of activations skippable at this ε.
    pub skippable: f64,
    /// Unsafe skips at this ε.
    pub unsafe_count: usize,
    /// Whether the verdict endorses this ε.
    pub recommended: bool,
}

/// Sweep apt thresholds for delta-PageRank on the UK-02 model (the
/// dataset the paper analyzes before transferring the threshold).
pub fn sweep(w: &Workloads) -> Vec<SweepRow> {
    let c = &w.crawls[1]; // UK-02
    let pr = DeltaPageRank::exact(w.config.pagerank_supersteps);
    let points = ariadne::optimize::sweep_apt_thresholds(
        &w.ariadne,
        &pr,
        &c.graph,
        "udf_diff",
        &[0.001, 0.005, 0.01, 0.05, 0.1],
    )
    .unwrap();
    points
        .into_iter()
        .map(|p| SweepRow {
            epsilon: p.epsilon,
            skippable: p.report.skippable_fraction,
            unsafe_count: p.report.unsafe_count,
            recommended: p.report.recommended,
        })
        .collect()
}

fn ratio(num: Duration, den: Duration) -> f64 {
    let d = den.as_secs_f64();
    if d > 0.0 {
        num.as_secs_f64() / d
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::workloads::Workloads;

    #[test]
    fn fig9_and_10_shapes() {
        let w = Workloads::prepare(ExperimentConfig::tiny());
        let als = fig9(&w);
        assert_eq!(als.len(), 2); // mini sweeps one rank x two queries
        for r in &als {
            assert!(r.online_ratio.is_finite() && r.online_ratio > 0.0);
        }
        let speedups = fig10(&w);
        assert_eq!(speedups.len(), 8);
        for r in &speedups {
            assert!(
                r.message_ratio <= 1.0 + 1e-9,
                "optimized sent more messages: {r:?}"
            );
        }
    }

    #[test]
    fn fig12_lineages_agree() {
        let w = Workloads::prepare(ExperimentConfig::tiny());
        let rows = fig12(&w);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(r.full_ratio.is_finite());
            assert!(r.custom_ratio.is_finite());
        }
    }

    #[test]
    fn sweep_is_monotone_in_threshold() {
        let w = Workloads::prepare(ExperimentConfig::tiny());
        let rows = sweep(&w);
        assert_eq!(rows.len(), 5);
        for pair in rows.windows(2) {
            assert!(pair[0].skippable <= pair[1].skippable + 1e-12);
        }
    }

    #[test]
    fn wcc_narrative_rejects() {
        let w = Workloads::prepare(ExperimentConfig::mini());
        let n = wcc_narrative(&w);
        assert_eq!(n.report.safe, 0);
        assert!(!n.report.recommended);
        assert!(n.mismatch_fraction > 0.5, "{}", n.mismatch_fraction);
    }
}
