//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--scale DENOM] [--als-scale DENOM] [--threads N] [EXPERIMENT...]
//!
//! EXPERIMENT: table2 table3 table4 table5 table6
//!             fig7 fig8 fig9 fig10 fig11 fig12 wcc
//!             all (default)
//! ```

use ariadne_bench::{config::ExperimentConfig, figures, report, tables, Workloads};
use std::time::Instant;

fn main() {
    let mut config = ExperimentConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                config.denominator = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number");
            }
            "--als-scale" => {
                config.als_denominator = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--als-scale needs a number");
            }
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--supersteps" => {
                config.pagerank_supersteps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--supersteps needs a number");
            }
            "--mini" => config = ExperimentConfig::mini(),
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--scale N] [--als-scale N] [--threads N] [--supersteps N] [--mini] [EXPERIMENT...]"
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "table2", "table3", "table4", "fig7", "fig8", "fig9", "fig10", "fig11", "table5",
            "table6", "wcc", "sweep", "fig12",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    eprintln!(
        "preparing workloads (web crawls at 1/{}, MovieLens at 1/{}, {} thread(s))...",
        config.denominator, config.als_denominator, config.threads
    );
    let t0 = Instant::now();
    let w = Workloads::prepare(config);
    eprintln!("workloads ready in {:.2}s", t0.elapsed().as_secs_f64());

    for name in &wanted {
        let t0 = Instant::now();
        match name.as_str() {
            "table2" => {
                println!("\n## Table 2 — dataset characteristics (scale models)\n");
                println!("{}", report::render_table2(&tables::table2(&w)));
            }
            "table3" => {
                println!("\n## Table 3 — full provenance size vs input (Query 2)\n");
                println!("{}", report::render_sizes(&tables::table3(&w)));
            }
            "table4" => {
                println!("\n## Table 4 — custom provenance size (Query 3)\n");
                println!("{}", report::render_sizes(&tables::table4(&w)));
            }
            "table5" => {
                println!("\n## Table 5 — PageRank relative error (L2), eps = 0.01\n");
                println!("{}", report::render_errors(&tables::table5(&w), "L2"));
            }
            "table6" => {
                println!("\n## Table 6 — SSSP relative error (L1), eps = 0.1\n");
                println!("{}", report::render_errors(&tables::table6(&w), "L1"));
            }
            "fig7" => {
                println!("\n## Figure 7 — capture runtime: full vs custom\n");
                println!("{}", report::render_fig7(&figures::fig7(&w)));
            }
            "fig8" => {
                println!("\n## Figure 8 — monitoring queries 4/5/6, three modes\n");
                println!("{}", report::render_modes(&figures::fig8(&w)));
            }
            "fig9" => {
                println!("\n## Figure 9 — ALS queries 7/8, online\n");
                println!("{}", report::render_fig9(&figures::fig9(&w)));
            }
            "fig10" => {
                println!("\n## Figure 10 — optimized analytic speedup\n");
                println!("{}", report::render_fig10(&figures::fig10(&w)));
            }
            "fig11" => {
                println!("\n## Figure 11 — apt query (Query 1), three modes\n");
                println!("{}", report::render_fig11(&figures::fig11(&w)));
            }
            "fig12" => {
                println!("\n## Figure 12 — backward lineage: full (Q10) vs custom (Q12)\n");
                println!("{}", report::render_fig12(&figures::fig12(&w)));
            }
            "sweep" => {
                println!("\n## §2.2 — apt threshold sweep (delta-PageRank, UK-02 model)\n");
                println!("{}", report::render_sweep(&figures::sweep(&w)));
            }
            "wcc" => {
                println!("\n## §6.2.2 — WCC: the optimization apt rightly rejects\n");
                println!("{}", report::render_wcc(&figures::wcc_narrative(&w)));
            }
            other => eprintln!("unknown experiment {other:?} (see --help)"),
        }
        eprintln!("[{name} done in {:.2}s]", t0.elapsed().as_secs_f64());
    }
}
