//! Observability smoke harness.
//!
//! Runs a capture-mode PageRank (provenance capture + a capture query)
//! on a small seeded R-MAT graph with structured tracing enabled, then
//! writes three artifacts to `--out-dir`:
//!
//! * `metrics.prom` — the full obs registry in Prometheus text
//!   exposition format (engine phase timings, store spill/checksum
//!   counters, PQL iteration metrics);
//! * `trace.jsonl` — the structured trace ring drained to JSON Lines;
//! * `report.json` — the run's [`ariadne::RunReport`].
//!
//! CI's `obs-smoke` job runs this and validates the artifact schemas;
//! the formats are documented in `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p ariadne-bench --bin obs -- \
//!     [--scale N] [--threads T] [--out-dir obs-smoke]
//! ```

use ariadne::capture::CaptureSpec;
use ariadne::session::Ariadne;
use ariadne::{compile, StoreConfig};
use ariadne_analytics::PageRank;
use ariadne_graph::generators::rmat::{rmat, RmatConfig};
use ariadne_obs::trace::{self, Level};
use ariadne_pql::Params;
use std::path::PathBuf;

struct Cli {
    scale: u32,
    threads: usize,
    out_dir: PathBuf,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        scale: 8,
        threads: 2,
        out_dir: PathBuf::from("obs-smoke"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => cli.scale = value("--scale").parse().expect("--scale: integer"),
            "--threads" => cli.threads = value("--threads").parse().expect("--threads: integer"),
            "--out-dir" => cli.out_dir = PathBuf::from(value("--out-dir")),
            other => panic!("unknown argument {other} (expected --scale/--threads/--out-dir)"),
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();

    // Record everything unless the operator asked for something else.
    if std::env::var("ARIADNE_LOG").is_err() {
        trace::set_filter("debug");
    }
    trace::event(
        Level::Info,
        "bench::obs",
        "smoke_start",
        &[
            ("scale", u64::from(cli.scale).into()),
            ("threads", cli.threads.into()),
        ],
    );

    std::fs::create_dir_all(&cli.out_dir).expect("create --out-dir");

    let graph = rmat(RmatConfig {
        scale: cli.scale,
        edge_factor: 8,
        seed: 0xBE2C4,
        ..RmatConfig::default()
    });
    eprintln!(
        "obs: rmat scale={} -> {} vertices, {} edges, threads={}",
        cli.scale,
        graph.num_vertices(),
        graph.num_edges(),
        cli.threads
    );

    // Capture-mode PageRank: raw EDBs plus a capture query, spilling to
    // a tight memory budget so the store's spill path is exercised too.
    let analytic = PageRank {
        supersteps: 6,
        ..PageRank::default()
    };
    let query = compile(
        "seen(x, v, i) :- value(x, v, i), superstep(x, i).",
        Params::new(),
    )
    .expect("capture query compiles");
    let spec = CaptureSpec::raw(["superstep", "value"]).with_query(query);

    let spool = cli.out_dir.join("spool");
    let mut ariadne = Ariadne::with_threads(cli.threads);
    ariadne.store = StoreConfig::spilling(64 * 1024, spool);

    let run = ariadne
        .capture(&analytic, &graph, &spec)
        .expect("capture run succeeds");
    let report = run.report();

    // Artifacts.
    let snapshot = ariadne_obs::registry().snapshot();
    let prom = ariadne_obs::prometheus_text(&snapshot);
    let (events, dropped) = trace::drain_stats();
    let jsonl = ariadne_obs::trace_jsonl(&events);

    let prom_path = cli.out_dir.join("metrics.prom");
    let trace_path = cli.out_dir.join("trace.jsonl");
    let report_path = cli.out_dir.join("report.json");
    std::fs::write(&prom_path, &prom).expect("write metrics.prom");
    std::fs::write(&trace_path, &jsonl).expect("write trace.jsonl");
    std::fs::write(&report_path, report.to_json() + "\n").expect("write report.json");

    eprintln!(
        "obs: wrote {} ({} metrics), {} ({} events, {} dropped), {}",
        prom_path.display(),
        snapshot.samples.len(),
        trace_path.display(),
        events.len(),
        dropped,
        report_path.display()
    );

    // Sanity: the three instrumented layers must all have reported.
    for required in [
        "engine_supersteps_total",
        "engine_phase_compute_ns_total",
        "store_ingest_tuples_total",
        "pql_rule_firings_total",
    ] {
        assert!(
            snapshot.counter(required).is_some(),
            "missing expected metric {required}"
        );
    }
    assert!(
        !events.is_empty(),
        "tracing enabled but no events were recorded"
    );
    println!("obs smoke OK");
}
