//! Performance harness: message plane (flat vs naive, baseline vs
//! capture) plus layered offline replay.
//!
//! **Engine section.** Runs PageRank, SSSP and WCC on seeded R-MAT
//! graphs under both message planes ([`MessagePlane::Flat`] and
//! [`MessagePlane::Naive`]) at a sweep of thread counts, in both
//! baseline mode (combiners honoured) and capture mode (combiners
//! disabled, as a provenance-capture run requires). Reported per run:
//! supersteps/sec, messages/sec, payload bytes moved, peak buffered
//! bytes, allocator traffic (calls + bytes, via a counting global
//! allocator) and the engine's per-phase wall-time breakdown.
//!
//! **Layered section.** Captures SSSP with the full Table-1 spec once,
//! then replays the paper's apt query (§7) through [`LayeredConfig`] at
//! every CLI thread count with predicate pruning on, plus one unpruned
//! run at the top thread count. The harness cross-checks every parallel
//! run bit-for-bit against the single-threaded reference (results and
//! all replay counters) and verifies the pruned/unpruned byte
//! partition, so a published JSON is itself evidence of determinism.
//!
//! **Segments section.** Captures PageRank and SSSP with the full
//! Table-1 spec under each segment format — v1 row-major, v2 columnar,
//! v3 columnar + per-record LZ — and reports bytes-on-disk,
//! layered-replay read bytes, and the column blocks the backward-lineage
//! query's column masks skipped. Before anything is written the harness
//! asserts the replay result sets are bit-identical across all formats
//! and across thread counts 1/2/3/7, and that v2 shrinks the
//! full-capture PageRank store by at least 30%.
//!
//! **Spool section.** The same full SSSP capture spilled to an on-disk
//! spool under each format, the v3 spool compacted into an indexed
//! generation file, then the backward-lineage replay measured at
//! threads 1/2/3/7 under both read backends (buffered and mmap). Every
//! cell is pinned bit-for-bit to the v1/buffered/t=1 reference, and the
//! harness asserts the compacted v3 spool serves the replay with
//! strictly fewer bytes read than the v2 spool.
//!
//! **Latency section.** Replays the apt query repeatedly at threads
//! 1/2/3/7 and reports the per-query end-to-end latency distribution —
//! p50/p90/p99/max interpolated from the obs crate's power-of-two
//! histogram buckets ([`HistogramSnapshot::quantile`]) — with every
//! sample's results pinned bit-for-bit to the t=1 reference first.
//!
//! **Serve section.** Stands up an in-process [`QueryService`] (the
//! `ariadne-serve` daemon core) over the same full SSSP capture and
//! issues a sweep of backward-lineage queries with distinct `$alpha`
//! roots — distinct fingerprints, so the cold pass replays the store
//! per query — then re-issues the identical sweep warm against the
//! layer-replay cache. Before anything is written the harness asserts
//! every warm response was a cache hit that read zero store bytes
//! (counter-verified via `serve_replay_bytes_total`), and that walking
//! a paginated cursor chain reproduces the un-paged row sequence
//! bit-for-bit.
//!
//! **Mutations section.** Chains three mutation barriers (insert-only,
//! delete-heavy, mixed) through a [`MutableSession`] per analytic and
//! measures both re-execution paths against their cold baselines: the
//! result-only frontier re-run ([`MutableSession::rerun_incremental`])
//! vs a cold run — values asserted bit-identical first — and the
//! capture-grade epoch append ([`MutableSession::capture_epoch`]) vs
//! the bytes a full re-capture would have written
//! ([`EpochStats::cold_bytes`]). After the final epoch the live store's
//! logical database is asserted equal, predicate by predicate in sorted
//! order, to a cold capture of the mutated graph — the published JSON
//! is itself evidence of the no-ghost-provenance contract.
//!
//! ```text
//! cargo run --release -p ariadne-bench --bin perf -- \
//!     [--scale N] [--threads 1,2,4,8] [--reps R] [--out BENCH_pr10.json] [--quick]
//! ```
//!
//! The output schema is documented in `EXPERIMENTS.md` ("BENCH_pr10.json").
//!
//! [`MutableSession`]: ariadne::MutableSession
//! [`MutableSession::rerun_incremental`]: ariadne::MutableSession::rerun_incremental
//! [`MutableSession::capture_epoch`]: ariadne::MutableSession::capture_epoch
//! [`EpochStats::cold_bytes`]: ariadne_provenance::EpochStats::cold_bytes
//!
//! [`QueryService`]: ariadne_serve::QueryService
//!
//! [`HistogramSnapshot::quantile`]: ariadne_obs::metrics::HistogramSnapshot::quantile

use ariadne::session::Ariadne;
use ariadne::{queries, CaptureSpec, CompiledQuery, LayeredConfig, LayeredRun, MutableSession};
use ariadne_analytics::{PageRank, Sssp, Wcc};
use ariadne_graph::generators::rmat::{rmat, RmatConfig};
use ariadne_graph::{Csr, GraphDelta, VertexId};
use ariadne_pql::Value;
use ariadne_provenance::{ProvEncode, ProvStore};
use ariadne_vc::{Engine, EngineConfig, IncrementalMode, MessagePlane, RunMetrics, VertexProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------

/// Wraps the system allocator and counts every allocation. The counters
/// are monotonic; callers diff snapshots around a region of interest.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counters are
// lock-free atomics and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // Count only the growth so realloc chains aren't double-counted.
        ALLOC_BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

/// One measured engine run.
struct Measurement {
    analytic: &'static str,
    plane: MessagePlane,
    mode: &'static str, // "baseline" | "capture"
    threads: usize,
    supersteps: u32,
    messages: usize,
    messages_delivered: usize,
    message_bytes: usize,
    buffered_messages: usize,
    buffered_bytes: usize,
    peak_buffered_bytes: usize,
    /// Per-phase wall time (ns) of the measured repetition.
    phase_compute_ns: u128,
    phase_combine_ns: u128,
    phase_scatter_ns: u128,
    phase_barrier_ns: u128,
    /// Best-of-reps wall time, seconds.
    secs: f64,
    /// Allocator calls during the measured (last) repetition.
    alloc_calls: u64,
    /// Allocator bytes requested during the measured repetition.
    alloc_bytes: u64,
}

impl Measurement {
    fn supersteps_per_sec(&self) -> f64 {
        self.supersteps as f64 / self.secs.max(1e-9)
    }
    fn messages_per_sec(&self) -> f64 {
        self.messages as f64 / self.secs.max(1e-9)
    }
}

fn plane_name(p: MessagePlane) -> &'static str {
    match p {
        MessagePlane::Flat => "flat",
        MessagePlane::Naive => "naive",
    }
}

/// Run `program` `reps` times; keep the best wall time and the last
/// repetition's metrics + allocator deltas (steady-state behaviour).
fn measure<P: VertexProgram>(
    analytic: &'static str,
    program: &P,
    graph: &Csr,
    plane: MessagePlane,
    mode: &'static str,
    threads: usize,
    reps: usize,
) -> Measurement {
    let config = EngineConfig {
        threads,
        use_combiner: mode == "baseline",
        plane,
        ..EngineConfig::default()
    };
    let engine = Engine::new(config);

    let mut best = f64::INFINITY;
    let mut last_metrics: Option<RunMetrics> = None;
    let mut alloc_calls = 0u64;
    let mut alloc_bytes = 0u64;
    for _ in 0..reps.max(1) {
        let before = alloc_snapshot();
        let start = Instant::now();
        let result = engine.run(program, graph);
        let secs = start.elapsed().as_secs_f64();
        let after = alloc_snapshot();
        best = best.min(secs);
        alloc_calls = after.0 - before.0;
        alloc_bytes = after.1 - before.1;
        last_metrics = Some(result.metrics);
    }
    let m = last_metrics.expect("at least one repetition");
    let phases = m.phase_totals();
    Measurement {
        analytic,
        plane,
        mode,
        threads,
        supersteps: m.num_supersteps(),
        messages: m.total_messages(),
        messages_delivered: m.total_messages_delivered(),
        message_bytes: m.total_message_bytes(),
        buffered_messages: m.total_buffered_messages(),
        buffered_bytes: m.total_buffered_bytes(),
        peak_buffered_bytes: m.peak_buffered_bytes(),
        phase_compute_ns: phases.compute.as_nanos(),
        phase_combine_ns: phases.combine.as_nanos(),
        phase_scatter_ns: phases.scatter.as_nanos(),
        phase_barrier_ns: phases.barrier.as_nanos(),
        secs: best,
        alloc_calls,
        alloc_bytes,
    }
}

// ---------------------------------------------------------------------
// Layered replay measurement
// ---------------------------------------------------------------------

/// One measured layered replay of the apt query over a captured store.
struct LayeredMeasurement {
    threads: usize,
    prune: bool,
    layers: u32,
    flush_rounds: u32,
    shipped_tuples: usize,
    injected_tuples: usize,
    evaluated_vertices: usize,
    segments_read: usize,
    segments_skipped: usize,
    bytes_read: usize,
    bytes_skipped: usize,
    phase_inject_ns: u64,
    phase_eval_ns: u64,
    phase_merge_ns: u64,
    /// Best-of-reps wall time, seconds.
    secs: f64,
    alloc_calls: u64,
    alloc_bytes: u64,
}

impl LayeredMeasurement {
    fn layers_per_sec(&self) -> f64 {
        self.layers as f64 / self.secs.max(1e-9)
    }
}

/// Run the layered replay `reps` times; keep the best wall time, the
/// last repetition's counters/allocator deltas, and the last
/// [`LayeredRun`] so the caller can cross-check results across
/// configurations.
fn measure_layered(
    ariadne: &Ariadne,
    graph: &Csr,
    store: &ProvStore,
    query: &CompiledQuery,
    config: &LayeredConfig,
    reps: usize,
) -> (LayeredMeasurement, LayeredRun) {
    let mut best = f64::INFINITY;
    let mut alloc_calls = 0u64;
    let mut alloc_bytes = 0u64;
    let mut last: Option<LayeredRun> = None;
    for _ in 0..reps.max(1) {
        let before = alloc_snapshot();
        let start = Instant::now();
        let run = ariadne
            .layered_with(graph, store, query, config)
            .expect("layered replay");
        let secs = start.elapsed().as_secs_f64();
        let after = alloc_snapshot();
        best = best.min(secs);
        alloc_calls = after.0 - before.0;
        alloc_bytes = after.1 - before.1;
        last = Some(run);
    }
    let run = last.expect("at least one repetition");
    let m = LayeredMeasurement {
        threads: config.threads,
        prune: config.prune,
        layers: run.layers,
        flush_rounds: run.flush_rounds,
        shipped_tuples: run.shipped_tuples,
        injected_tuples: run.injected_tuples,
        evaluated_vertices: run.evaluated_vertices,
        segments_read: run.segments_read,
        segments_skipped: run.segments_skipped,
        bytes_read: run.bytes_read,
        bytes_skipped: run.bytes_skipped,
        phase_inject_ns: run.phase_inject_ns,
        phase_eval_ns: run.phase_eval_ns,
        phase_merge_ns: run.phase_merge_ns,
        secs: best,
        alloc_calls,
        alloc_bytes,
    };
    (m, run)
}

/// One thread count's per-query replay latency distribution, measured
/// over repeated end-to-end replays into a private obs histogram and
/// summarized by interpolated quantiles.
struct LatencyRow {
    threads: usize,
    samples: u64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    mean_ns: u64,
}

fn latency_json(r: &LatencyRow) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"threads\":{},\"samples\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\
         \"max_ns\":{},\"mean_ns\":{}}}",
        r.threads, r.samples, r.p50_ns, r.p90_ns, r.p99_ns, r.max_ns, r.mean_ns,
    );
    s
}

/// One serve-phase cell: a sweep of distinct queries through the
/// [`ariadne_serve::QueryService`], cold (every query replays) or warm
/// (every query must hit the layer-replay cache).
struct ServeRow {
    phase: &'static str,
    queries: usize,
    rows: usize,
    replay_bytes_read: u64,
    cache_hits: u64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    mean_ns: u64,
}

fn serve_json(r: &ServeRow) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"phase\":\"{}\",\"queries\":{},\"rows\":{},\"replay_bytes_read\":{},\
         \"cache_hits\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{},\
         \"mean_ns\":{}}}",
        r.phase,
        r.queries,
        r.rows,
        r.replay_bytes_read,
        r.cache_hits,
        r.p50_ns,
        r.p90_ns,
        r.p99_ns,
        r.max_ns,
        r.mean_ns,
    );
    s
}

// ---------------------------------------------------------------------
// Mutation measurement (incremental re-execution + epoch deltas)
// ---------------------------------------------------------------------

/// One (analytic, batch kind) cell of the mutations section: a mutation
/// barrier committed through a [`MutableSession`], then both
/// re-execution paths measured against their cold baselines.
struct MutationRow {
    analytic: &'static str,
    /// Batch shape: "insert" | "delete" | "mixed".
    batch: &'static str,
    threads: usize,
    /// Which path [`ariadne_vc::Engine::run_incremental`] actually took.
    mode: &'static str, // "frontier" | "full_rerun"
    /// Vertices the taint closure reset to `init`.
    reset_vertices: usize,
    /// Vertices in the superstep-0 reseed frontier.
    activated_vertices: usize,
    inc_supersteps: u32,
    cold_supersteps: u32,
    /// Best-of-reps wall time of the incremental re-run, seconds.
    inc_secs: f64,
    /// Best-of-reps wall time of the cold re-run, seconds.
    cold_secs: f64,
    /// The store's mutation epoch after the append.
    epoch: u64,
    /// (layer, predicate) pairs carried forward without writing a byte.
    carried: usize,
    /// Pairs whose sorted suffix was appended (`~add~pred`).
    appended: usize,
    /// Pairs rewritten in full.
    replaced: usize,
    /// Pairs tombstoned (`~del~pred`).
    tombstoned: usize,
    /// Encoded bytes the epoch appended to the live store.
    bytes_appended: usize,
    /// Encoded bytes a full re-capture would have written.
    cold_bytes: usize,
}

impl MutationRow {
    fn speedup(&self) -> f64 {
        self.cold_secs / self.inc_secs.max(1e-9)
    }
    fn bytes_ratio(&self) -> f64 {
        self.bytes_appended as f64 / self.cold_bytes.max(1) as f64
    }
}

fn mutation_json(r: &MutationRow) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"analytic\":\"{}\",\"batch\":\"{}\",\"threads\":{},\"mode\":\"{}\",\
         \"reset_vertices\":{},\"activated_vertices\":{},\
         \"inc_supersteps\":{},\"cold_supersteps\":{},\
         \"inc_secs\":{},\"cold_secs\":{},\"speedup\":{},\
         \"epoch\":{},\"carried\":{},\"appended\":{},\"replaced\":{},\"tombstoned\":{},\
         \"bytes_appended\":{},\"cold_bytes\":{},\"bytes_ratio\":{}}}",
        r.analytic,
        r.batch,
        r.threads,
        r.mode,
        r.reset_vertices,
        r.activated_vertices,
        r.inc_supersteps,
        r.cold_supersteps,
        json_f64(r.inc_secs),
        json_f64(r.cold_secs),
        json_f64(r.speedup()),
        r.epoch,
        r.carried,
        r.appended,
        r.replaced,
        r.tombstoned,
        r.bytes_appended,
        r.cold_bytes,
        json_f64(r.bytes_ratio()),
    );
    s
}

const MUTATION_BATCHES: [&str; 3] = ["insert", "delete", "mixed"];

/// A deterministic mutation batch of `kind` against `csr`, sized to the
/// graph (~1% of edges inserted, half that removed) so the frontier is
/// a real but small fraction of the graph at every scale.
fn mutation_batch(csr: &Csr, kind: &str, seed: u64) -> GraphDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = csr.num_vertices() as u64;
    let adds = (csr.num_edges() / 100).clamp(8, 256);
    let mut delta = GraphDelta::new();
    if kind != "delete" {
        for _ in 0..adds {
            delta.add_edge(
                VertexId(rng.gen_range(0..n)),
                VertexId(rng.gen_range(0..n)),
                0.001 + rng.gen::<f64>(),
            );
        }
    }
    if kind != "insert" {
        let existing: Vec<(VertexId, VertexId, f64)> = csr.edges().collect();
        for _ in 0..adds / 2 {
            let (s, d, _) = existing[rng.gen_range(0..existing.len())];
            delta.remove_edge(s, d);
        }
    }
    delta
}

/// Chain the three batch kinds as successive mutation barriers over one
/// [`MutableSession`] + live [`ProvStore`], measuring each barrier's
/// incremental re-run vs a cold re-run (values asserted bit-identical)
/// and its epoch-append storage stats. After the final epoch, the live
/// store's logical database is asserted equal — per predicate, in
/// sorted order — to a cold capture of the mutated graph.
fn measure_mutations<P>(
    analytic: &'static str,
    program: &P,
    base: &Csr,
    threads: usize,
    reps: usize,
    rows: &mut Vec<MutationRow>,
) where
    P: VertexProgram,
    P::V: ProvEncode + PartialEq + std::fmt::Debug + Sync,
    P::M: ProvEncode,
{
    let spec = CaptureSpec::full();
    let session = Ariadne::with_threads(threads);
    let mut store = session
        .capture(program, base, &spec)
        .expect("mutations: base capture")
        .store;
    let mut s = MutableSession::new(session, base.clone());
    for (i, batch) in MUTATION_BATCHES.into_iter().enumerate() {
        let prev = s.baseline(program);
        s.mutate(mutation_batch(s.csr(), batch, 0xA51A + i as u64));
        s.commit();

        let mut inc_secs = f64::INFINITY;
        let mut inc = None;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let run = s
                .rerun_incremental(program, &prev.values)
                .expect("mutations: incremental re-run");
            inc_secs = inc_secs.min(start.elapsed().as_secs_f64());
            inc = Some(run);
        }
        let inc = inc.expect("at least one repetition");
        let mut cold_secs = f64::INFINITY;
        let mut cold = None;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let run = s.baseline(program);
            cold_secs = cold_secs.min(start.elapsed().as_secs_f64());
            cold = Some(run);
        }
        let cold = cold.expect("at least one repetition");
        assert_eq!(
            inc.result.values, cold.values,
            "mutations {analytic} {batch}: incremental values diverge from cold"
        );

        let (_, stats) = s
            .capture_epoch(program, &spec, &mut store)
            .expect("mutations: epoch capture");
        assert_eq!(stats.epoch, (i + 1) as u64, "mutations {analytic} {batch}");
        rows.push(MutationRow {
            analytic,
            batch,
            threads,
            mode: match inc.mode {
                IncrementalMode::Frontier => "frontier",
                IncrementalMode::FullRerun => "full_rerun",
            },
            reset_vertices: inc.reset_vertices,
            activated_vertices: inc.activated_vertices,
            inc_supersteps: inc.result.metrics.num_supersteps(),
            cold_supersteps: cold.metrics.num_supersteps(),
            inc_secs,
            cold_secs,
            epoch: stats.epoch,
            carried: stats.carried,
            appended: stats.appended,
            replaced: stats.replaced,
            tombstoned: stats.tombstoned,
            bytes_appended: stats.bytes_appended,
            cold_bytes: stats.cold_bytes,
        });
    }
    // No-ghost check: after three epochs the live store reads exactly
    // like a cold capture of the final graph. Sorted per predicate —
    // multi-threaded captures ingest per-chunk buffers in arrival
    // order, so equivalence is over canonical layer content.
    let cold_db = Ariadne::with_threads(threads)
        .capture(program, s.csr(), &spec)
        .expect("mutations: cold reference capture")
        .store
        .to_database()
        .expect("mutations: cold database");
    let live_db = store.to_database().expect("mutations: live database");
    let names = |db: &ariadne_pql::Database| {
        let mut v: Vec<String> = db.iter().map(|(n, _)| n.to_string()).collect();
        v.sort();
        v
    };
    assert_eq!(
        names(&live_db),
        names(&cold_db),
        "mutations {analytic}: predicate sets diverge from cold capture"
    );
    for name in names(&cold_db) {
        assert_eq!(
            live_db.sorted(&name),
            cold_db.sorted(&name),
            "mutations {analytic}: ghost or missing provenance in {name:?}"
        );
    }
}

/// Assert two layered runs agree on everything pruning is allowed to
/// leave unchanged: sorted result sets per IDB predicate and the round
/// structure. (Injection/evaluation volume legitimately shrinks when
/// unreferenced predicates are filtered out.)
fn assert_layered_equivalent(tag: &str, query: &CompiledQuery, a: &LayeredRun, b: &LayeredRun) {
    for pred in query.query().idbs.keys() {
        assert_eq!(
            a.query_results.sorted(pred),
            b.query_results.sorted(pred),
            "{tag}: result sets diverge on {pred:?}"
        );
    }
    assert_eq!(
        (a.layers, a.flush_rounds, a.shipped_tuples),
        (b.layers, b.flush_rounds, b.shipped_tuples),
        "{tag}: round structure diverges"
    );
}

/// Assert two layered runs are bit-identical on every surface a user
/// can observe: sorted result sets per IDB predicate and all replay
/// counters. Used to pin parallel runs to the t=1 reference.
fn assert_layered_identical(tag: &str, query: &CompiledQuery, a: &LayeredRun, b: &LayeredRun) {
    assert_layered_equivalent(tag, query, a, b);
    assert_eq!(
        (a.injected_tuples, a.evaluated_vertices, a.query_stats),
        (b.injected_tuples, b.evaluated_vertices, b.query_stats),
        "{tag}: evaluation counters diverge"
    );
}

// ---------------------------------------------------------------------
// Segment-format measurement (v1 row-major vs v2 columnar)
// ---------------------------------------------------------------------

/// One (analytic, segment format) cell of the segments section.
struct SegmentMeasurement {
    analytic: &'static str,
    format: &'static str, // "v1" | "v2" | "v3"
    /// Encoded store bytes after capture (memory + spool).
    store_bytes: usize,
    /// Decoded tuple count (identical across formats by construction).
    store_tuples: usize,
    /// Number of (superstep, predicate) segments.
    segments: usize,
    /// Encoded bytes the t=1 replay decoded.
    replay_bytes_read: usize,
    /// Column runs the replay's column masks skipped.
    replay_cols_skipped: usize,
    /// Encoded bytes of skipped v2 column blocks.
    replay_col_bytes_skipped: usize,
    /// Best-of-reps t=1 replay wall time, seconds.
    replay_secs: f64,
}

fn segment_json(m: &SegmentMeasurement) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"analytic\":\"{}\",\"format\":\"{}\",\"store_bytes\":{},\"store_tuples\":{},\
         \"segments\":{},\"replay_bytes_read\":{},\"replay_cols_skipped\":{},\
         \"replay_col_bytes_skipped\":{},\"replay_secs\":{}}}",
        m.analytic,
        m.format,
        m.store_bytes,
        m.store_tuples,
        m.segments,
        m.replay_bytes_read,
        m.replay_cols_skipped,
        m.replay_col_bytes_skipped,
        json_f64(m.replay_secs),
    );
    s
}

/// One (record format, read backend) cell of the spool section: a full
/// capture spilled to disk, replayed through the backward-lineage
/// query. The v3 cell is measured after compaction.
struct SpoolMeasurement {
    format: &'static str,  // "v1" | "v2" | "v3"
    backend: &'static str, // "buffered" | "mmap"
    /// Whether the spool was compacted before replay (v3 only).
    compacted: bool,
    /// On-disk bytes of every spool file (segments + manifest).
    spool_bytes: u64,
    /// Encoded bytes the t=1 replay read from the spool.
    replay_bytes_read: usize,
    /// Best-of-reps t=1 replay wall time, seconds.
    replay_secs: f64,
}

fn spool_json(m: &SpoolMeasurement) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"format\":\"{}\",\"backend\":\"{}\",\"compacted\":{},\"spool_bytes\":{},\
         \"replay_bytes_read\":{},\"replay_secs\":{}}}",
        m.format,
        m.backend,
        m.compacted,
        m.spool_bytes,
        m.replay_bytes_read,
        json_f64(m.replay_secs),
    );
    s
}

// ---------------------------------------------------------------------
// JSON (hand-rolled; the workspace is offline and carries no serde)
// ---------------------------------------------------------------------

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn layered_json(m: &LayeredMeasurement) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"threads\":{},\"prune\":{},\"layers\":{},\"flush_rounds\":{},\
         \"shipped_tuples\":{},\"injected_tuples\":{},\"evaluated_vertices\":{},\
         \"segments_read\":{},\"segments_skipped\":{},\"bytes_read\":{},\"bytes_skipped\":{},\
         \"phase_inject_ns\":{},\"phase_eval_ns\":{},\"phase_merge_ns\":{},\
         \"secs\":{},\"layers_per_sec\":{},\"alloc_calls\":{},\"alloc_bytes\":{}}}",
        m.threads,
        m.prune,
        m.layers,
        m.flush_rounds,
        m.shipped_tuples,
        m.injected_tuples,
        m.evaluated_vertices,
        m.segments_read,
        m.segments_skipped,
        m.bytes_read,
        m.bytes_skipped,
        m.phase_inject_ns,
        m.phase_eval_ns,
        m.phase_merge_ns,
        json_f64(m.secs),
        json_f64(m.layers_per_sec()),
        m.alloc_calls,
        m.alloc_bytes,
    );
    s
}

fn measurement_json(m: &Measurement) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"analytic\":\"{}\",\"plane\":\"{}\",\"mode\":\"{}\",\"threads\":{},\
         \"supersteps\":{},\"messages\":{},\"messages_delivered\":{},\"message_bytes\":{},\
         \"buffered_messages\":{},\"buffered_bytes\":{},\"peak_buffered_bytes\":{},\
         \"phase_compute_ns\":{},\"phase_combine_ns\":{},\"phase_scatter_ns\":{},\
         \"phase_barrier_ns\":{},\
         \"secs\":{},\"supersteps_per_sec\":{},\"messages_per_sec\":{},\
         \"alloc_calls\":{},\"alloc_bytes\":{}}}",
        m.analytic,
        plane_name(m.plane),
        m.mode,
        m.threads,
        m.supersteps,
        m.messages,
        m.messages_delivered,
        m.message_bytes,
        m.buffered_messages,
        m.buffered_bytes,
        m.peak_buffered_bytes,
        m.phase_compute_ns,
        m.phase_combine_ns,
        m.phase_scatter_ns,
        m.phase_barrier_ns,
        json_f64(m.secs),
        json_f64(m.supersteps_per_sec()),
        json_f64(m.messages_per_sec()),
        m.alloc_calls,
        m.alloc_bytes,
    );
    s
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

struct Cli {
    scale: u32,
    edge_factor: usize,
    threads: Vec<usize>,
    reps: usize,
    out: String,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        scale: 13,
        edge_factor: 16,
        threads: vec![1, 2, 4, 8],
        reps: 3,
        out: "BENCH_pr10.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => cli.scale = value("--scale").parse().expect("--scale: integer"),
            "--edge-factor" => {
                cli.edge_factor = value("--edge-factor").parse().expect("--edge-factor: integer")
            }
            "--threads" => {
                cli.threads = value("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads: comma-separated integers"))
                    .collect()
            }
            "--reps" => cli.reps = value("--reps").parse().expect("--reps: integer"),
            "--out" => cli.out = value("--out"),
            "--quick" => {
                cli.scale = 9;
                cli.edge_factor = 8;
                cli.threads = vec![1, 2];
                cli.reps = 1;
            }
            other => panic!(
                "unknown argument {other} (expected --scale/--edge-factor/--threads/--reps/--out/--quick)"
            ),
        }
    }
    assert!(!cli.threads.is_empty(), "--threads must name at least one count");
    cli
}

// ---------------------------------------------------------------------
// Main
// ---------------------------------------------------------------------

fn main() {
    let cli = parse_cli();

    eprintln!(
        "perf: rmat scale={} edge_factor={} threads={:?} reps={}",
        cli.scale, cli.edge_factor, cli.threads, cli.reps
    );
    let graph = rmat(RmatConfig {
        scale: cli.scale,
        edge_factor: cli.edge_factor,
        seed: 0xBE2C4,
        ..RmatConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let weighted = graph.map_weights(|_, _, _| 0.001 + rng.gen::<f64>());
    eprintln!(
        "perf: graph has {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let pagerank = PageRank {
        supersteps: 10,
        ..PageRank::default()
    };
    let sssp = Sssp::new(VertexId(0));
    let wcc = Wcc;

    let mut runs: Vec<Measurement> = Vec::new();
    for &plane in &[MessagePlane::Flat, MessagePlane::Naive] {
        for &threads in &cli.threads {
            for &mode in &["baseline", "capture"] {
                eprintln!(
                    "perf: plane={} threads={} mode={}",
                    plane_name(plane),
                    threads,
                    mode
                );
                runs.push(measure(
                    "pagerank", &pagerank, &graph, plane, mode, threads, cli.reps,
                ));
                runs.push(measure(
                    "sssp", &sssp, &weighted, plane, mode, threads, cli.reps,
                ));
                runs.push(measure("wcc", &wcc, &graph, plane, mode, threads, cli.reps));
            }
        }
    }

    // Cross-checks: both planes must agree on logical message traffic.
    for a in &runs {
        for b in &runs {
            if a.analytic == b.analytic && a.mode == b.mode && a.threads == b.threads {
                assert_eq!(
                    (a.supersteps, a.messages, a.message_bytes),
                    (b.supersteps, b.messages, b.message_bytes),
                    "planes disagree on logical traffic for {} {} t={}",
                    a.analytic,
                    a.mode,
                    a.threads
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // Layered replay: capture SSSP once with the full Table-1 spec, then
    // replay the apt query at each thread count (pruned) plus one
    // unpruned run at the top thread count. Every parallel run is pinned
    // bit-for-bit to the single-threaded reference before anything is
    // written out.
    // -----------------------------------------------------------------
    let layered_scale = cli.scale.saturating_sub(2).max(6);
    let layered_graph = rmat(RmatConfig {
        scale: layered_scale,
        edge_factor: cli.edge_factor,
        seed: 0xA51AD,
        ..RmatConfig::default()
    });
    let mut lrng = StdRng::seed_from_u64(0x1A7E5);
    let layered_weighted = layered_graph.map_weights(|_, _, _| 0.001 + lrng.gen::<f64>());
    eprintln!(
        "perf: layered capture on rmat scale={} ({} vertices, {} edges)",
        layered_scale,
        layered_graph.num_vertices(),
        layered_graph.num_edges()
    );
    let ariadne = Ariadne::default();
    let capture = ariadne
        .capture(
            &Sssp::new(VertexId(0)),
            &layered_weighted,
            &CaptureSpec::full(),
        )
        .expect("layered capture run");
    let apt = queries::apt("udf_diff", Value::Float(0.1)).expect("apt query compiles");

    let max_threads = *cli.threads.iter().max().unwrap();
    let mut layered_runs: Vec<LayeredMeasurement> = Vec::new();
    let mut reference: Option<LayeredRun> = None;
    // t=1 pruned reference first, then the CLI sweep in order.
    let mut layered_threads: Vec<usize> = vec![1];
    layered_threads.extend(cli.threads.iter().copied().filter(|&t| t != 1));
    for &threads in &layered_threads {
        eprintln!("perf: layered threads={threads} prune=true");
        let config = LayeredConfig {
            prune: true,
            ..LayeredConfig::parallel(threads)
        };
        let (m, run) = measure_layered(
            &ariadne,
            &layered_weighted,
            &capture.store,
            &apt,
            &config,
            cli.reps,
        );
        match &reference {
            None => reference = Some(run),
            Some(r) => assert_layered_identical(&format!("layered t={threads}"), &apt, &run, r),
        }
        layered_runs.push(m);
    }
    // Unpruned control at the top thread count: identical results, full
    // byte volume; pruning must partition it exactly.
    eprintln!("perf: layered threads={max_threads} prune=false");
    let (full_m, full_run) = measure_layered(
        &ariadne,
        &layered_weighted,
        &capture.store,
        &apt,
        &LayeredConfig {
            prune: false,
            ..LayeredConfig::parallel(max_threads)
        },
        cli.reps,
    );
    assert_layered_equivalent(
        "layered unpruned",
        &apt,
        &full_run,
        reference.as_ref().unwrap(),
    );
    let pruned_ref = &layered_runs[0];
    assert!(
        pruned_ref.segments_skipped > 0,
        "full capture must contain segments the apt query never joins"
    );
    assert_eq!(
        pruned_ref.bytes_read + pruned_ref.bytes_skipped,
        full_m.bytes_read,
        "pruning must partition the decoded byte volume"
    );
    let pruning_bytes_ratio = pruned_ref.bytes_read as f64 / full_m.bytes_read.max(1) as f64;
    let layered_t1_secs = pruned_ref.secs;
    layered_runs.push(full_m);

    // -----------------------------------------------------------------
    // Segments: full-capture PageRank and SSSP under both segment
    // formats (v1 row-major, v2 columnar). Replays the backward-lineage
    // query (whose `send_message` payload column is provably dead, so
    // the column masks have something to skip) at threads 1/2/3/7 and
    // asserts bit-identical result sets across formats and thread
    // counts before reporting byte volumes.
    // -----------------------------------------------------------------
    use ariadne_provenance::SegmentFormat;
    let seg_threads: [usize; 4] = [1, 2, 3, 7];
    let mut segment_rows: Vec<SegmentMeasurement> = Vec::new();
    let mut seg_reductions: Vec<(String, f64)> = Vec::new();
    let seg_cases: [(&'static str, &Csr); 2] =
        [("pagerank", &layered_graph), ("sssp", &layered_weighted)];
    for (analytic, seg_graph) in seg_cases {
        let alpha = seg_graph.max_out_degree_vertex().unwrap();
        let mut v1_bytes = 0usize;
        let mut cross_format_ref: Option<LayeredRun> = None;
        for format in [SegmentFormat::V1, SegmentFormat::V2, SegmentFormat::V3] {
            let fmt_name = match format {
                SegmentFormat::V1 => "v1",
                SegmentFormat::V2 => "v2",
                SegmentFormat::V3 => "v3",
            };
            eprintln!("perf: segments analytic={analytic} format={fmt_name}");
            let mut session = Ariadne::default();
            session.store = session.store.with_format(format);
            let capture = match analytic {
                "pagerank" => session
                    .capture(
                        &PageRank {
                            supersteps: 10,
                            ..PageRank::default()
                        },
                        seg_graph,
                        &CaptureSpec::full(),
                    )
                    .expect("segments capture"),
                _ => session
                    .capture(&Sssp::new(VertexId(0)), seg_graph, &CaptureSpec::full())
                    .expect("segments capture"),
            };
            let store = &capture.store;
            let sigma = store.max_superstep().unwrap_or(0);
            let query = queries::backward_lineage(alpha, sigma).expect("lineage query");
            // t=1 first: it becomes the reference every other thread
            // count (and the other segment format) is pinned to.
            let mut t1: Option<(LayeredMeasurement, LayeredRun)> = None;
            for &threads in &seg_threads {
                let config = LayeredConfig::parallel(threads);
                let (m, run) =
                    measure_layered(&session, seg_graph, store, &query, &config, cli.reps);
                match &t1 {
                    None => t1 = Some((m, run)),
                    Some((_, r)) => assert_layered_identical(
                        &format!("segments {analytic} {fmt_name} t={threads}"),
                        &query,
                        &run,
                        r,
                    ),
                }
            }
            let (m1, run1) = t1.expect("t=1 measured");
            if let Some(r) = &cross_format_ref {
                assert_layered_identical(
                    &format!("segments {analytic} v1-vs-v2"),
                    &query,
                    &run1,
                    r,
                );
            }
            let store_bytes = store.byte_size();
            if format == SegmentFormat::V1 {
                v1_bytes = store_bytes;
            } else {
                let reduction = 1.0 - store_bytes as f64 / v1_bytes.max(1) as f64;
                if analytic == "pagerank" {
                    assert!(
                        reduction >= 0.30,
                        "{fmt_name} must shrink the full-capture PageRank store by >= 30%, got {:.1}%",
                        reduction * 100.0
                    );
                }
                seg_reductions.push((format!("{analytic}_{fmt_name}"), reduction));
            }
            segment_rows.push(SegmentMeasurement {
                analytic,
                format: fmt_name,
                store_bytes,
                store_tuples: store.tuple_count(),
                segments: store.segment_index().count(),
                replay_bytes_read: m1.bytes_read,
                replay_cols_skipped: run1.cols_skipped,
                replay_col_bytes_skipped: run1.col_bytes_skipped,
                replay_secs: m1.secs,
            });
            if cross_format_ref.is_none() {
                cross_format_ref = Some(run1);
            }
        }
    }

    // -----------------------------------------------------------------
    // Spool: the same full SSSP capture spilled to an on-disk spool
    // under every record format, the v3 spool compacted into an
    // indexed generation file, then the backward-lineage replay at
    // threads 1/2/3/7 under both read backends. Every cell is pinned
    // bit-for-bit to the v1/buffered/t=1 reference, and the compacted
    // v3 spool must serve the replay with strictly fewer bytes read
    // than the v2 spool.
    // -----------------------------------------------------------------
    use ariadne::{CompactReport, ReadBackend, StoreConfig};
    let spool_root =
        std::env::temp_dir().join(format!("ariadne-perf-spool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool_root);
    let spool_graph = &layered_weighted;
    let spool_alpha = spool_graph.max_out_degree_vertex().unwrap();
    let mut spool_rows: Vec<SpoolMeasurement> = Vec::new();
    let mut spool_ref: Option<LayeredRun> = None;
    let mut spool_lineage_bytes: Vec<(&'static str, usize)> = Vec::new();
    let mut v3_compaction: Option<CompactReport> = None;
    for format in [SegmentFormat::V1, SegmentFormat::V2, SegmentFormat::V3] {
        let fmt_name = match format {
            SegmentFormat::V1 => "v1",
            SegmentFormat::V2 => "v2",
            SegmentFormat::V3 => "v3",
        };
        eprintln!("perf: spool format={fmt_name}");
        let dir = spool_root.join(fmt_name);
        let session = Ariadne {
            store: StoreConfig::spilling(0, dir.clone()).with_format(format),
            ..Ariadne::default()
        };
        let mut capture = session
            .capture(&Sssp::new(VertexId(0)), spool_graph, &CaptureSpec::full())
            .expect("spool capture");
        if format == SegmentFormat::V3 {
            let report = capture.store.compact().expect("compact the v3 spool");
            assert!(report.generation >= 1, "compaction must publish a generation");
            assert!(report.tuples > 0, "compaction must carry the captured tuples");
            v3_compaction = Some(report);
        }
        let spool_bytes: u64 = std::fs::read_dir(&dir)
            .expect("spool dir")
            .map(|e| e.unwrap().metadata().unwrap().len())
            .sum();
        let store = &mut capture.store;
        let sigma = store.max_superstep().unwrap_or(0);
        let query = queries::backward_lineage(spool_alpha, sigma).expect("lineage query");
        for backend in [ReadBackend::Buffered, ReadBackend::Mmap] {
            let backend_name = match backend {
                ReadBackend::Buffered => "buffered",
                ReadBackend::Mmap => "mmap",
            };
            store.set_read_backend(backend);
            let mut t1: Option<LayeredMeasurement> = None;
            for &threads in &seg_threads {
                let config = LayeredConfig::parallel(threads);
                let (m, run) =
                    measure_layered(&session, spool_graph, store, &query, &config, cli.reps);
                match &spool_ref {
                    None => spool_ref = Some(run),
                    Some(r) => assert_layered_identical(
                        &format!("spool {fmt_name} {backend_name} t={threads}"),
                        &query,
                        &run,
                        r,
                    ),
                }
                if t1.is_none() {
                    t1 = Some(m);
                }
            }
            let m1 = t1.expect("t=1 measured");
            if backend == ReadBackend::Buffered {
                spool_lineage_bytes.push((fmt_name, m1.bytes_read));
            }
            spool_rows.push(SpoolMeasurement {
                format: fmt_name,
                backend: backend_name,
                compacted: format == SegmentFormat::V3,
                spool_bytes,
                replay_bytes_read: m1.bytes_read,
                replay_secs: m1.secs,
            });
        }
    }
    let lineage_bytes = |fmt: &str| {
        spool_lineage_bytes
            .iter()
            .find(|(f, _)| *f == fmt)
            .map(|(_, b)| *b)
            .expect("measured format")
    };
    let (spool_v1_bytes, spool_v2_bytes, spool_v3_bytes) =
        (lineage_bytes("v1"), lineage_bytes("v2"), lineage_bytes("v3"));
    assert!(
        spool_v3_bytes < spool_v2_bytes,
        "the compacted v3 spool must serve the lineage replay with strictly fewer bytes read \
         (v3 {spool_v3_bytes} vs v2 {spool_v2_bytes})"
    );
    let _ = std::fs::remove_dir_all(&spool_root);

    // -----------------------------------------------------------------
    // Latency: per-query end-to-end apt-replay latency at threads
    // 1/2/3/7, each sample recorded into a private obs histogram and
    // summarized by interpolated p50/p90/p99/max. Every sample's
    // results are pinned bit-for-bit to the t=1 reference before the
    // distribution is written out, so the quantiles describe runs that
    // provably computed the same answer.
    // -----------------------------------------------------------------
    let latency_registry = ariadne_obs::metrics::Registry::new();
    let latency_cases: [(usize, &'static str); 4] = [
        (1, "perf_replay_latency_t1_ns"),
        (2, "perf_replay_latency_t2_ns"),
        (3, "perf_replay_latency_t3_ns"),
        (7, "perf_replay_latency_t7_ns"),
    ];
    let latency_samples = (cli.reps * 5).clamp(5, 20);
    let mut latency_rows: Vec<LatencyRow> = Vec::new();
    for (threads, hist_name) in latency_cases {
        eprintln!("perf: latency threads={threads} samples={latency_samples}");
        let hist = latency_registry.histogram(
            hist_name,
            "end-to-end apt replay latency per query",
            false,
        );
        let config = LayeredConfig {
            prune: true,
            ..LayeredConfig::parallel(threads)
        };
        for _ in 0..latency_samples {
            let start = Instant::now();
            let run = ariadne
                .layered_with(&layered_weighted, &capture.store, &apt, &config)
                .expect("latency replay");
            hist.record(start.elapsed().as_nanos() as u64);
            assert_layered_identical(
                &format!("latency t={threads}"),
                &apt,
                &run,
                reference.as_ref().unwrap(),
            );
        }
        let snap = hist.snapshot();
        latency_rows.push(LatencyRow {
            threads,
            samples: snap.count,
            p50_ns: snap.quantile(0.5).unwrap_or(0),
            p90_ns: snap.quantile(0.9).unwrap_or(0),
            p99_ns: snap.quantile(0.99).unwrap_or(0),
            max_ns: snap.max_bound().unwrap_or(0),
            mean_ns: snap.sum / snap.count.max(1),
        });
    }

    // -----------------------------------------------------------------
    // Serve: the long-lived query service over the same SSSP capture.
    // A sweep of backward-lineage queries with distinct $alpha roots
    // (distinct fingerprints) runs cold — each replays the store — then
    // the identical sweep runs warm against the layer-replay cache.
    // The warm pass is counter-verified to read zero store bytes, and a
    // cursor walk is asserted bit-identical to the un-paged sequence,
    // before anything is written out.
    // -----------------------------------------------------------------
    use ariadne_serve::{AdmissionConfig, QueryRequest, QueryService, ServeConfig};
    const SERVE_LINEAGE_PQL: &str = "back_trace(x, i) :- superstep(x, i), i = $sigma, x = $alpha.
back_trace(x, i) :- send_message(x, y, m, i), back_trace(y, j), j = i + 1.
back_lineage(x, d) :- back_trace(x, i), value(x, d, i), i = 0.";
    const SERVE_SCAN_PQL: &str = "active(x, i) :- superstep(x, i).";
    let serve_threads = max_threads;
    let serve_page_size = 64usize;
    let service = QueryService::new(
        layered_weighted.clone(),
        capture.store,
        ServeConfig {
            threads: serve_threads,
            // The scan query returns every evaluation; lift the page
            // ceiling so "un-paged" really is a single page.
            default_limit: 1 << 20,
            max_limit: 1 << 20,
            // Admission is benchmarked nowhere here: quotas off,
            // capacity at the worker count.
            admission: AdmissionConfig {
                max_in_flight: serve_threads.max(1),
                quota_burst: 1e9,
                quota_per_sec: 0.0,
            },
            ..ServeConfig::default()
        },
    );
    let serve_counter = |name: &str| {
        ariadne_obs::registry()
            .snapshot()
            .counter(name)
            .unwrap_or(0)
    };
    // Lineage roots that actually exist: stride-sample (vertex, layer)
    // evaluation pairs from a full scan through the service itself, so
    // every sweep query is guaranteed non-empty and roots span the
    // whole layer range. The scan also doubles as the pagination
    // reference below.
    let scan = service
        .execute(&QueryRequest {
            pql: Some(SERVE_SCAN_PQL),
            limit: Some(1 << 20),
            ..QueryRequest::default()
        })
        .expect("un-paged scan");
    let mut serve_roots: Vec<(String, String)> = Vec::new();
    for j in 0..latency_samples {
        let (_, tuple) = &scan.rows()[j * scan.total_rows / latency_samples];
        if let (Some(Value::Id(x)), Some(Value::Int(i))) = (tuple.first(), tuple.get(1)) {
            let pair = (format!("v{x}"), i.to_string());
            if !serve_roots.contains(&pair) {
                serve_roots.push(pair);
            }
        }
    }
    assert!(!serve_roots.is_empty(), "scan produced no evaluation pairs");
    let serve_queries = serve_roots.len();
    eprintln!("perf: serve threads={serve_threads} queries={serve_queries}");
    let mut serve_rows_out: Vec<ServeRow> = Vec::new();
    for (phase, hist_name) in [("cold", "perf_serve_cold_ns"), ("warm", "perf_serve_warm_ns")] {
        let hist = latency_registry.histogram(
            hist_name,
            "end-to-end /query service latency per request",
            false,
        );
        let bytes_before = serve_counter("serve_replay_bytes_total");
        let hits_before = serve_counter("serve_cache_hits_total");
        let mut rows_total = 0usize;
        for (alpha, sigma) in &serve_roots {
            let params = [("alpha", alpha.as_str()), ("sigma", sigma.as_str())];
            let request = QueryRequest {
                pql: Some(SERVE_LINEAGE_PQL),
                params: &params,
                limit: Some(1 << 20),
                ..QueryRequest::default()
            };
            let start = Instant::now();
            let page = service.execute(&request).expect("serve query");
            hist.record(start.elapsed().as_nanos() as u64);
            assert!(page.next_cursor.is_none(), "limit must cover the result");
            assert_eq!(
                page.cache_hit,
                phase == "warm",
                "serve {phase} pass: wrong cache disposition for {alpha}@{sigma}"
            );
            assert!(page.total_rows > 0, "lineage from {alpha}@{sigma} must be non-empty");
            rows_total += page.total_rows;
        }
        let bytes_delta = serve_counter("serve_replay_bytes_total") - bytes_before;
        let hits_delta = serve_counter("serve_cache_hits_total") - hits_before;
        if phase == "warm" {
            assert_eq!(bytes_delta, 0, "a warm pass must read zero store bytes");
            assert_eq!(hits_delta, serve_queries as u64, "every warm query must hit");
        } else {
            assert!(bytes_delta > 0, "a cold pass must replay the store");
        }
        let snap = hist.snapshot();
        serve_rows_out.push(ServeRow {
            phase,
            queries: serve_queries,
            rows: rows_total,
            replay_bytes_read: bytes_delta,
            cache_hits: hits_delta,
            p50_ns: snap.quantile(0.5).unwrap_or(0),
            p90_ns: snap.quantile(0.9).unwrap_or(0),
            p99_ns: snap.quantile(0.99).unwrap_or(0),
            max_ns: snap.max_bound().unwrap_or(0),
            mean_ns: snap.sum / snap.count.max(1),
        });
    }
    // Pagination identity: the full-scan query (thousands of rows,
    // already materialized above) walked through the cursor chain at a
    // small page size. The concatenation must reproduce the un-paged
    // page bit-for-bit.
    let serve_paginated_rows = {
        let whole = &scan;
        assert!(
            whole.total_rows > serve_page_size,
            "scan must span multiple pages ({} rows)",
            whole.total_rows
        );
        let mut paged: Vec<(String, ariadne_pql::Tuple)> = Vec::new();
        let mut cursor: Option<String> = None;
        loop {
            let page = service
                .execute(&QueryRequest {
                    pql: Some(SERVE_SCAN_PQL),
                    cursor: cursor.as_deref(),
                    limit: Some(serve_page_size),
                    ..QueryRequest::default()
                })
                .expect("paged scan");
            paged.extend(page.rows().iter().cloned());
            match page.next_cursor {
                Some(next) => cursor = Some(next),
                None => break,
            }
        }
        assert_eq!(paged.len(), whole.total_rows, "cursor walk must cover every row");
        assert!(
            paged.iter().eq(whole.rows().iter()),
            "paginated rows must be bit-identical to the un-paged sequence"
        );
        paged.len()
    };

    // -----------------------------------------------------------------
    // Mutations: three successive mutation barriers (insert / delete /
    // mixed) per analytic through a MutableSession, measuring the
    // frontier re-run vs a cold re-run (values asserted bit-identical)
    // and the epoch-append storage delta vs a full re-capture. The
    // final store is asserted ghost-free against a cold capture before
    // anything is written out.
    // -----------------------------------------------------------------
    let mutation_threads = max_threads;
    eprintln!("perf: mutations threads={mutation_threads} batches={MUTATION_BATCHES:?}");
    let mut mutation_rows: Vec<MutationRow> = Vec::new();
    measure_mutations(
        "pagerank",
        &PageRank {
            supersteps: 10,
            ..PageRank::default()
        },
        &layered_weighted,
        mutation_threads,
        cli.reps,
        &mut mutation_rows,
    );
    measure_mutations(
        "sssp",
        &Sssp::new(VertexId(0)),
        &layered_weighted,
        mutation_threads,
        cli.reps,
        &mut mutation_rows,
    );
    measure_mutations(
        "wcc",
        &Wcc,
        &layered_weighted,
        mutation_threads,
        cli.reps,
        &mut mutation_rows,
    );

    // Summary: flat-over-naive supersteps/sec speedup per (analytic, threads)
    // in baseline mode, plus the SSSP combiner-path allocation comparison.
    let lookup = |analytic: &str, plane: MessagePlane, mode: &str, threads: usize| {
        runs.iter().find(|m| {
            m.analytic == analytic && m.plane == plane && m.mode == mode && m.threads == threads
        })
    };
    let speedup_map = |mode: &str| {
        let mut out = String::from("{");
        for (i, &threads) in cli.threads.iter().enumerate() {
            let flat = lookup("pagerank", MessagePlane::Flat, mode, threads);
            let naive = lookup("pagerank", MessagePlane::Naive, mode, threads);
            let ratio = match (flat, naive) {
                (Some(f), Some(n)) => f.supersteps_per_sec() / n.supersteps_per_sec(),
                _ => f64::NAN,
            };
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{threads}\":{}", json_f64(ratio));
        }
        out.push('}');
        out
    };
    let speedups = speedup_map("baseline");
    let capture_speedups = speedup_map("capture");

    let sssp_flat = lookup("sssp", MessagePlane::Flat, "baseline", max_threads).unwrap();
    let sssp_naive = lookup("sssp", MessagePlane::Naive, "baseline", max_threads).unwrap();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"ariadne-bench-pr10/v1\",");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p ariadne-bench --bin perf\","
    );
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let _ = writeln!(json, "  \"host\": {{\"cores\": {host_cores}}},");
    let _ = writeln!(
        json,
        "  \"graph\": {{\"generator\": \"rmat\", \"scale\": {}, \"edge_factor\": {}, \"vertices\": {}, \"edges\": {}}},",
        cli.scale,
        cli.edge_factor,
        graph.num_vertices(),
        graph.num_edges()
    );
    let _ = writeln!(
        json,
        "  \"threads\": [{}],",
        cli.threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let _ = writeln!(json, "  \"reps\": {},", cli.reps);
    json.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        let sep = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{}", measurement_json(m), sep);
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"layered\": {{\n    \"graph\": {{\"generator\": \"rmat\", \"scale\": {}, \"edge_factor\": {}, \"vertices\": {}, \"edges\": {}}},\n    \"analytic\": \"sssp\",\n    \"query\": \"apt(udf_diff, 0.1)\",\n    \"capture\": \"full\",\n    \"runs\": [",
        layered_scale,
        cli.edge_factor,
        layered_graph.num_vertices(),
        layered_graph.num_edges()
    );
    for (i, m) in layered_runs.iter().enumerate() {
        let sep = if i + 1 < layered_runs.len() { "," } else { "" };
        let _ = writeln!(json, "      {}{}", layered_json(m), sep);
    }
    json.push_str("    ]\n  },\n");
    let _ = writeln!(
        json,
        "  \"segments\": {{\n    \"graph\": {{\"generator\": \"rmat\", \"scale\": {}, \"edge_factor\": {}}},\n    \"query\": \"backward_lineage(max_out_degree_vertex, max_superstep)\",\n    \"capture\": \"full\",\n    \"replay_threads\": [1,2,3,7],\n    \"cases\": [",
        layered_scale, cli.edge_factor
    );
    for (i, m) in segment_rows.iter().enumerate() {
        let sep = if i + 1 < segment_rows.len() { "," } else { "" };
        let _ = writeln!(json, "      {}{}", segment_json(m), sep);
    }
    json.push_str("    ],\n    \"summary\": {");
    for (i, (case, reduction)) in seg_reductions.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\"{case}_store_bytes_reduction\": {}",
            json_f64(*reduction)
        );
    }
    json.push_str("}\n  },\n");
    let _ = writeln!(
        json,
        "  \"spool\": {{\n    \"graph\": {{\"generator\": \"rmat\", \"scale\": {}, \"edge_factor\": {}}},\n    \"analytic\": \"sssp\",\n    \"query\": \"backward_lineage(max_out_degree_vertex, max_superstep)\",\n    \"capture\": \"full\",\n    \"replay_threads\": [1,2,3,7],\n    \"compaction\": {},\n    \"cases\": [",
        layered_scale,
        cli.edge_factor,
        v3_compaction.as_ref().map_or_else(|| "null".to_string(), |r| r.to_json()),
    );
    for (i, m) in spool_rows.iter().enumerate() {
        let sep = if i + 1 < spool_rows.len() { "," } else { "" };
        let _ = writeln!(json, "      {}{}", spool_json(m), sep);
    }
    let _ = writeln!(
        json,
        "    ],\n    \"summary\": {{\"lineage_read_bytes\": {{\"v1\": {spool_v1_bytes}, \"v2\": {spool_v2_bytes}, \"v3\": {spool_v3_bytes}}}}}\n  }},"
    );
    let _ = writeln!(
        json,
        "  \"latency\": {{\n    \"analytic\": \"sssp\",\n    \"query\": \"apt(udf_diff, 0.1)\",\n    \"samples_per_cell\": {latency_samples},\n    \"quantile_source\": \"power-of-two bucket interpolation\",\n    \"cells\": ["
    );
    for (i, r) in latency_rows.iter().enumerate() {
        let sep = if i + 1 < latency_rows.len() { "," } else { "" };
        let _ = writeln!(json, "      {}{}", latency_json(r), sep);
    }
    json.push_str("    ]\n  },\n");
    let _ = writeln!(
        json,
        "  \"serve\": {{\n    \"analytic\": \"sssp\",\n    \"query\": \"backward_lineage($alpha sweep, max_superstep)\",\n    \"threads\": {serve_threads},\n    \"queries_per_phase\": {serve_queries},\n    \"page_size\": {serve_page_size},\n    \"paginated_rows\": {serve_paginated_rows},\n    \"cases\": ["
    );
    for (i, r) in serve_rows_out.iter().enumerate() {
        let sep = if i + 1 < serve_rows_out.len() { "," } else { "" };
        let _ = writeln!(json, "      {}{}", serve_json(r), sep);
    }
    json.push_str("    ]\n  },\n");
    let _ = writeln!(
        json,
        "  \"mutations\": {{\n    \"graph\": {{\"generator\": \"rmat\", \"scale\": {}, \"edge_factor\": {}, \"vertices\": {}, \"edges\": {}}},\n    \"capture\": \"full\",\n    \"batches\": [\"insert\",\"delete\",\"mixed\"],\n    \"threads\": {mutation_threads},\n    \"reps\": {},\n    \"cases\": [",
        layered_scale,
        cli.edge_factor,
        layered_weighted.num_vertices(),
        layered_weighted.num_edges(),
        cli.reps,
    );
    for (i, r) in mutation_rows.iter().enumerate() {
        let sep = if i + 1 < mutation_rows.len() { "," } else { "" };
        let _ = writeln!(json, "      {}{}", mutation_json(r), sep);
    }
    json.push_str("    ]\n  },\n");
    let _ = writeln!(json, "  \"summary\": {{");
    {
        let mut speedups = String::from("{");
        for (i, m) in layered_runs.iter().filter(|m| m.prune).enumerate() {
            if i > 0 {
                speedups.push(',');
            }
            let _ = write!(
                speedups,
                "\"{}\":{}",
                m.threads,
                json_f64(layered_t1_secs / m.secs.max(1e-9))
            );
        }
        speedups.push('}');
        let _ = writeln!(
            json,
            "    \"layered_thread_speedup_over_t1\": {speedups},"
        );
    }
    let _ = writeln!(
        json,
        "    \"layered_pruning\": {{\"segments_skipped\": {}, \"bytes_read_pruned\": {}, \"bytes_read_full\": {}, \"bytes_ratio\": {}}},",
        layered_runs[0].segments_skipped,
        layered_runs[0].bytes_read,
        layered_runs.last().unwrap().bytes_read,
        json_f64(pruning_bytes_ratio)
    );
    let _ = writeln!(
        json,
        "    \"pagerank_flat_over_naive_supersteps_per_sec\": {speedups},"
    );
    let _ = writeln!(
        json,
        "    \"pagerank_capture_flat_over_naive_supersteps_per_sec\": {capture_speedups},"
    );
    let _ = writeln!(
        json,
        "    \"sssp_baseline_alloc_calls\": {{\"flat\": {}, \"naive\": {}}},",
        sssp_flat.alloc_calls, sssp_naive.alloc_calls
    );
    let _ = writeln!(
        json,
        "    \"sssp_baseline_buffered_bytes\": {{\"flat\": {}, \"naive\": {}}}",
        sssp_flat.buffered_bytes, sssp_naive.buffered_bytes
    );
    json.push_str("  }\n}\n");

    std::fs::write(&cli.out, &json).expect("write output JSON");
    eprintln!("perf: wrote {}", cli.out);

    // Human-readable recap on stdout.
    println!(
        "{:<9} {:<6} {:<9} {:>3} {:>6} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "analytic",
        "plane",
        "mode",
        "thr",
        "steps",
        "steps/s",
        "msgs/s",
        "bytes",
        "peak_buf",
        "allocs"
    );
    for m in &runs {
        println!(
            "{:<9} {:<6} {:<9} {:>3} {:>6} {:>12.1} {:>14.0} {:>14} {:>12} {:>12}",
            m.analytic,
            plane_name(m.plane),
            m.mode,
            m.threads,
            m.supersteps,
            m.supersteps_per_sec(),
            m.messages_per_sec(),
            m.message_bytes,
            m.peak_buffered_bytes,
            m.alloc_calls
        );
    }
    println!();
    println!(
        "{:<9} {:>3} {:>6} {:>7} {:>6} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "layered", "thr", "prune", "layers", "flush", "layers/s", "seg_read", "seg_skip", "bytes_read", "allocs"
    );
    for m in &layered_runs {
        println!(
            "{:<9} {:>3} {:>6} {:>7} {:>6} {:>12.1} {:>10} {:>10} {:>12} {:>12}",
            "apt",
            m.threads,
            m.prune,
            m.layers,
            m.flush_rounds,
            m.layers_per_sec(),
            m.segments_read,
            m.segments_skipped,
            m.bytes_read,
            m.alloc_calls
        );
    }
    println!();
    println!(
        "{:<9} {:<4} {:>12} {:>10} {:>8} {:>12} {:>10} {:>14}",
        "segments", "fmt", "store_bytes", "tuples", "segs", "read_bytes", "col_skip", "col_skip_bytes"
    );
    for m in &segment_rows {
        println!(
            "{:<9} {:<4} {:>12} {:>10} {:>8} {:>12} {:>10} {:>14}",
            m.analytic,
            m.format,
            m.store_bytes,
            m.store_tuples,
            m.segments,
            m.replay_bytes_read,
            m.replay_cols_skipped,
            m.replay_col_bytes_skipped
        );
    }
    for (case, reduction) in &seg_reductions {
        println!("segments: {case} store bytes reduction over v1 {:.1}%", reduction * 100.0);
    }
    println!();
    println!(
        "{:<6} {:<9} {:>9} {:>12} {:>12} {:>10}",
        "spool", "backend", "compacted", "spool_bytes", "read_bytes", "secs"
    );
    for m in &spool_rows {
        println!(
            "{:<6} {:<9} {:>9} {:>12} {:>12} {:>10.4}",
            m.format, m.backend, m.compacted, m.spool_bytes, m.replay_bytes_read, m.replay_secs
        );
    }
    println!(
        "spool: lineage read bytes v3 {} < v2 {} ({:.1}% fewer)",
        spool_v3_bytes,
        spool_v2_bytes,
        (1.0 - spool_v3_bytes as f64 / spool_v2_bytes.max(1) as f64) * 100.0
    );
    println!();
    println!(
        "{:<8} {:>3} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "latency", "thr", "samples", "p50_ns", "p90_ns", "p99_ns", "max_ns"
    );
    for r in &latency_rows {
        println!(
            "{:<8} {:>3} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "apt", r.threads, r.samples, r.p50_ns, r.p90_ns, r.p99_ns, r.max_ns
        );
    }
    println!();
    println!(
        "{:<6} {:>7} {:>8} {:>14} {:>6} {:>12} {:>12} {:>12}",
        "serve", "queries", "rows", "replay_bytes", "hits", "p50_ns", "p99_ns", "max_ns"
    );
    for r in &serve_rows_out {
        println!(
            "{:<6} {:>7} {:>8} {:>14} {:>6} {:>12} {:>12} {:>12}",
            r.phase,
            r.queries,
            r.rows,
            r.replay_bytes_read,
            r.cache_hits,
            r.p50_ns,
            r.p99_ns,
            r.max_ns
        );
    }
    println!(
        "serve: cursor walk reproduced {} rows bit-for-bit at page size {}",
        serve_paginated_rows, serve_page_size
    );
    println!();
    println!(
        "{:<9} {:<7} {:<10} {:>7} {:>7} {:>9} {:>9} {:>8} {:>12} {:>12} {:>7}",
        "mutations", "batch", "mode", "reset", "active", "inc_steps", "speedup", "carried",
        "bytes_added", "cold_bytes", "ratio"
    );
    for r in &mutation_rows {
        println!(
            "{:<9} {:<7} {:<10} {:>7} {:>7} {:>9} {:>9.2} {:>8} {:>12} {:>12} {:>7.3}",
            r.analytic,
            r.batch,
            r.mode,
            r.reset_vertices,
            r.activated_vertices,
            r.inc_supersteps,
            r.speedup(),
            r.carried,
            r.bytes_appended,
            r.cold_bytes,
            r.bytes_ratio()
        );
    }
}
