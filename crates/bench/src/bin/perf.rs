//! Message-plane performance harness: flat vs naive, baseline vs capture.
//!
//! Runs PageRank, SSSP and WCC on seeded R-MAT graphs under both message
//! planes ([`MessagePlane::Flat`] and [`MessagePlane::Naive`]) at a sweep
//! of thread counts, in both baseline mode (combiners honoured) and
//! capture mode (combiners disabled, as a provenance-capture run
//! requires), and writes the measurements as JSON.
//!
//! Reported per run: supersteps/sec, messages/sec, payload bytes moved,
//! peak buffered bytes (the in-flight footprint of the message plane),
//! allocator traffic (calls + bytes, via a counting global allocator) and
//! the engine's per-phase wall-time breakdown (compute / sender-combine /
//! scatter / barrier).
//!
//! ```text
//! cargo run --release -p ariadne-bench --bin perf -- \
//!     [--scale N] [--threads 1,2,4,8] [--reps R] [--out BENCH_pr3.json] [--quick]
//! ```
//!
//! The output schema is documented in `EXPERIMENTS.md` ("BENCH_pr3.json").

use ariadne_analytics::{PageRank, Sssp, Wcc};
use ariadne_graph::generators::rmat::{rmat, RmatConfig};
use ariadne_graph::{Csr, VertexId};
use ariadne_vc::{Engine, EngineConfig, MessagePlane, RunMetrics, VertexProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------

/// Wraps the system allocator and counts every allocation. The counters
/// are monotonic; callers diff snapshots around a region of interest.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counters are
// lock-free atomics and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // Count only the growth so realloc chains aren't double-counted.
        ALLOC_BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

/// One measured engine run.
struct Measurement {
    analytic: &'static str,
    plane: MessagePlane,
    mode: &'static str, // "baseline" | "capture"
    threads: usize,
    supersteps: u32,
    messages: usize,
    messages_delivered: usize,
    message_bytes: usize,
    buffered_messages: usize,
    buffered_bytes: usize,
    peak_buffered_bytes: usize,
    /// Per-phase wall time (ns) of the measured repetition.
    phase_compute_ns: u128,
    phase_combine_ns: u128,
    phase_scatter_ns: u128,
    phase_barrier_ns: u128,
    /// Best-of-reps wall time, seconds.
    secs: f64,
    /// Allocator calls during the measured (last) repetition.
    alloc_calls: u64,
    /// Allocator bytes requested during the measured repetition.
    alloc_bytes: u64,
}

impl Measurement {
    fn supersteps_per_sec(&self) -> f64 {
        self.supersteps as f64 / self.secs.max(1e-9)
    }
    fn messages_per_sec(&self) -> f64 {
        self.messages as f64 / self.secs.max(1e-9)
    }
}

fn plane_name(p: MessagePlane) -> &'static str {
    match p {
        MessagePlane::Flat => "flat",
        MessagePlane::Naive => "naive",
    }
}

/// Run `program` `reps` times; keep the best wall time and the last
/// repetition's metrics + allocator deltas (steady-state behaviour).
fn measure<P: VertexProgram>(
    analytic: &'static str,
    program: &P,
    graph: &Csr,
    plane: MessagePlane,
    mode: &'static str,
    threads: usize,
    reps: usize,
) -> Measurement {
    let config = EngineConfig {
        threads,
        use_combiner: mode == "baseline",
        plane,
        ..EngineConfig::default()
    };
    let engine = Engine::new(config);

    let mut best = f64::INFINITY;
    let mut last_metrics: Option<RunMetrics> = None;
    let mut alloc_calls = 0u64;
    let mut alloc_bytes = 0u64;
    for _ in 0..reps.max(1) {
        let before = alloc_snapshot();
        let start = Instant::now();
        let result = engine.run(program, graph);
        let secs = start.elapsed().as_secs_f64();
        let after = alloc_snapshot();
        best = best.min(secs);
        alloc_calls = after.0 - before.0;
        alloc_bytes = after.1 - before.1;
        last_metrics = Some(result.metrics);
    }
    let m = last_metrics.expect("at least one repetition");
    let phases = m.phase_totals();
    Measurement {
        analytic,
        plane,
        mode,
        threads,
        supersteps: m.num_supersteps(),
        messages: m.total_messages(),
        messages_delivered: m.total_messages_delivered(),
        message_bytes: m.total_message_bytes(),
        buffered_messages: m.total_buffered_messages(),
        buffered_bytes: m.total_buffered_bytes(),
        peak_buffered_bytes: m.peak_buffered_bytes(),
        phase_compute_ns: phases.compute.as_nanos(),
        phase_combine_ns: phases.combine.as_nanos(),
        phase_scatter_ns: phases.scatter.as_nanos(),
        phase_barrier_ns: phases.barrier.as_nanos(),
        secs: best,
        alloc_calls,
        alloc_bytes,
    }
}

// ---------------------------------------------------------------------
// JSON (hand-rolled; the workspace is offline and carries no serde)
// ---------------------------------------------------------------------

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn measurement_json(m: &Measurement) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"analytic\":\"{}\",\"plane\":\"{}\",\"mode\":\"{}\",\"threads\":{},\
         \"supersteps\":{},\"messages\":{},\"messages_delivered\":{},\"message_bytes\":{},\
         \"buffered_messages\":{},\"buffered_bytes\":{},\"peak_buffered_bytes\":{},\
         \"phase_compute_ns\":{},\"phase_combine_ns\":{},\"phase_scatter_ns\":{},\
         \"phase_barrier_ns\":{},\
         \"secs\":{},\"supersteps_per_sec\":{},\"messages_per_sec\":{},\
         \"alloc_calls\":{},\"alloc_bytes\":{}}}",
        m.analytic,
        plane_name(m.plane),
        m.mode,
        m.threads,
        m.supersteps,
        m.messages,
        m.messages_delivered,
        m.message_bytes,
        m.buffered_messages,
        m.buffered_bytes,
        m.peak_buffered_bytes,
        m.phase_compute_ns,
        m.phase_combine_ns,
        m.phase_scatter_ns,
        m.phase_barrier_ns,
        json_f64(m.secs),
        json_f64(m.supersteps_per_sec()),
        json_f64(m.messages_per_sec()),
        m.alloc_calls,
        m.alloc_bytes,
    );
    s
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

struct Cli {
    scale: u32,
    edge_factor: usize,
    threads: Vec<usize>,
    reps: usize,
    out: String,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        scale: 13,
        edge_factor: 16,
        threads: vec![1, 2, 4, 8],
        reps: 3,
        out: "BENCH_pr3.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => cli.scale = value("--scale").parse().expect("--scale: integer"),
            "--edge-factor" => {
                cli.edge_factor = value("--edge-factor").parse().expect("--edge-factor: integer")
            }
            "--threads" => {
                cli.threads = value("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads: comma-separated integers"))
                    .collect()
            }
            "--reps" => cli.reps = value("--reps").parse().expect("--reps: integer"),
            "--out" => cli.out = value("--out"),
            "--quick" => {
                cli.scale = 9;
                cli.edge_factor = 8;
                cli.threads = vec![1, 2];
                cli.reps = 1;
            }
            other => panic!(
                "unknown argument {other} (expected --scale/--edge-factor/--threads/--reps/--out/--quick)"
            ),
        }
    }
    assert!(!cli.threads.is_empty(), "--threads must name at least one count");
    cli
}

// ---------------------------------------------------------------------
// Main
// ---------------------------------------------------------------------

fn main() {
    let cli = parse_cli();

    eprintln!(
        "perf: rmat scale={} edge_factor={} threads={:?} reps={}",
        cli.scale, cli.edge_factor, cli.threads, cli.reps
    );
    let graph = rmat(RmatConfig {
        scale: cli.scale,
        edge_factor: cli.edge_factor,
        seed: 0xBE2C4,
        ..RmatConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let weighted = graph.map_weights(|_, _, _| 0.001 + rng.gen::<f64>());
    eprintln!(
        "perf: graph has {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let pagerank = PageRank {
        supersteps: 10,
        ..PageRank::default()
    };
    let sssp = Sssp::new(VertexId(0));
    let wcc = Wcc;

    let mut runs: Vec<Measurement> = Vec::new();
    for &plane in &[MessagePlane::Flat, MessagePlane::Naive] {
        for &threads in &cli.threads {
            for &mode in &["baseline", "capture"] {
                eprintln!(
                    "perf: plane={} threads={} mode={}",
                    plane_name(plane),
                    threads,
                    mode
                );
                runs.push(measure(
                    "pagerank", &pagerank, &graph, plane, mode, threads, cli.reps,
                ));
                runs.push(measure(
                    "sssp", &sssp, &weighted, plane, mode, threads, cli.reps,
                ));
                runs.push(measure("wcc", &wcc, &graph, plane, mode, threads, cli.reps));
            }
        }
    }

    // Cross-checks: both planes must agree on logical message traffic.
    for a in &runs {
        for b in &runs {
            if a.analytic == b.analytic && a.mode == b.mode && a.threads == b.threads {
                assert_eq!(
                    (a.supersteps, a.messages, a.message_bytes),
                    (b.supersteps, b.messages, b.message_bytes),
                    "planes disagree on logical traffic for {} {} t={}",
                    a.analytic,
                    a.mode,
                    a.threads
                );
            }
        }
    }

    // Summary: flat-over-naive supersteps/sec speedup per (analytic, threads)
    // in baseline mode, plus the SSSP combiner-path allocation comparison.
    let lookup = |analytic: &str, plane: MessagePlane, mode: &str, threads: usize| {
        runs.iter().find(|m| {
            m.analytic == analytic && m.plane == plane && m.mode == mode && m.threads == threads
        })
    };
    let speedup_map = |mode: &str| {
        let mut out = String::from("{");
        for (i, &threads) in cli.threads.iter().enumerate() {
            let flat = lookup("pagerank", MessagePlane::Flat, mode, threads);
            let naive = lookup("pagerank", MessagePlane::Naive, mode, threads);
            let ratio = match (flat, naive) {
                (Some(f), Some(n)) => f.supersteps_per_sec() / n.supersteps_per_sec(),
                _ => f64::NAN,
            };
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{threads}\":{}", json_f64(ratio));
        }
        out.push('}');
        out
    };
    let speedups = speedup_map("baseline");
    let capture_speedups = speedup_map("capture");

    let max_threads = *cli.threads.iter().max().unwrap();
    let sssp_flat = lookup("sssp", MessagePlane::Flat, "baseline", max_threads).unwrap();
    let sssp_naive = lookup("sssp", MessagePlane::Naive, "baseline", max_threads).unwrap();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"ariadne-bench-pr3/v1\",");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p ariadne-bench --bin perf\","
    );
    let _ = writeln!(
        json,
        "  \"graph\": {{\"generator\": \"rmat\", \"scale\": {}, \"edge_factor\": {}, \"vertices\": {}, \"edges\": {}}},",
        cli.scale,
        cli.edge_factor,
        graph.num_vertices(),
        graph.num_edges()
    );
    let _ = writeln!(
        json,
        "  \"threads\": [{}],",
        cli.threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let _ = writeln!(json, "  \"reps\": {},", cli.reps);
    json.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        let sep = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{}", measurement_json(m), sep);
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"summary\": {{");
    let _ = writeln!(
        json,
        "    \"pagerank_flat_over_naive_supersteps_per_sec\": {speedups},"
    );
    let _ = writeln!(
        json,
        "    \"pagerank_capture_flat_over_naive_supersteps_per_sec\": {capture_speedups},"
    );
    let _ = writeln!(
        json,
        "    \"sssp_baseline_alloc_calls\": {{\"flat\": {}, \"naive\": {}}},",
        sssp_flat.alloc_calls, sssp_naive.alloc_calls
    );
    let _ = writeln!(
        json,
        "    \"sssp_baseline_buffered_bytes\": {{\"flat\": {}, \"naive\": {}}}",
        sssp_flat.buffered_bytes, sssp_naive.buffered_bytes
    );
    json.push_str("  }\n}\n");

    std::fs::write(&cli.out, &json).expect("write output JSON");
    eprintln!("perf: wrote {}", cli.out);

    // Human-readable recap on stdout.
    println!(
        "{:<9} {:<6} {:<9} {:>3} {:>6} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "analytic",
        "plane",
        "mode",
        "thr",
        "steps",
        "steps/s",
        "msgs/s",
        "bytes",
        "peak_buf",
        "allocs"
    );
    for m in &runs {
        println!(
            "{:<9} {:<6} {:<9} {:>3} {:>6} {:>12.1} {:>14.0} {:>14} {:>12} {:>12}",
            m.analytic,
            plane_name(m.plane),
            m.mode,
            m.threads,
            m.supersteps,
            m.supersteps_per_sec(),
            m.messages_per_sec(),
            m.message_bytes,
            m.peak_buffered_bytes,
            m.alloc_calls
        );
    }
}
