//! Live telemetry demo: serve the observability plane over HTTP while
//! the system does real work.
//!
//! Binds [`ariadne_obs::ObsServer`] on `--listen`, runs a capture-mode
//! PageRank once, publishes its [`ariadne::RunReport`] to `/report`,
//! and then replays a provenance query in a loop for `--duration`
//! seconds so an operator can watch counters, latency quantiles and
//! span trees move:
//!
//! ```text
//! cargo run --release -p ariadne-bench --bin obs-serve -- \
//!     [--listen 127.0.0.1:9464] [--scale N] [--threads T] [--duration SECS]
//!
//! curl http://127.0.0.1:9464/metrics   # Prometheus text exposition
//! curl http://127.0.0.1:9464/trace    # span/event tree as JSONL
//! curl http://127.0.0.1:9464/report   # latest RunReport JSON
//! curl http://127.0.0.1:9464/healthz
//! ```
//!
//! `--duration 0` does a single capture + replay pass and exits (used
//! by CI to smoke the binary without holding a port open).

use ariadne::capture::CaptureSpec;
use ariadne::session::Ariadne;
use ariadne::{compile, StoreConfig};
use ariadne_analytics::PageRank;
use ariadne_graph::generators::rmat::{rmat, RmatConfig};
use ariadne_obs::trace;
use ariadne_pql::Params;
use std::time::{Duration, Instant};

struct Cli {
    listen: String,
    scale: u32,
    threads: usize,
    duration: u64,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        listen: "127.0.0.1:9464".into(),
        scale: 8,
        threads: 2,
        duration: 30,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--listen" => cli.listen = value("--listen"),
            "--scale" => cli.scale = value("--scale").parse().expect("--scale: integer"),
            "--threads" => cli.threads = value("--threads").parse().expect("--threads: integer"),
            "--duration" => {
                cli.duration = value("--duration").parse().expect("--duration: seconds")
            }
            other => {
                panic!("unknown argument {other} (expected --listen/--scale/--threads/--duration)")
            }
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    if std::env::var("ARIADNE_LOG").is_err() {
        trace::set_filter("debug");
    }

    let server = ariadne_obs::ObsServer::bind(cli.listen.as_str()).expect("bind --listen");
    println!(
        "obs-serve: http://{} (/metrics /trace /report /healthz), {}s",
        server.local_addr(),
        cli.duration
    );

    let graph = rmat(RmatConfig {
        scale: cli.scale,
        edge_factor: 8,
        seed: 0xBE2C4,
        ..RmatConfig::default()
    });
    let analytic = PageRank {
        supersteps: 6,
        ..PageRank::default()
    };
    let capture_query = compile(
        "seen(x, v, i) :- value(x, v, i), superstep(x, i).",
        Params::new(),
    )
    .expect("capture query compiles");
    let spec = CaptureSpec::raw(["superstep", "value"]).with_query(capture_query);

    let spool = std::env::temp_dir().join(format!("ariadne-obs-serve-{}", std::process::id()));
    let mut ariadne = Ariadne::with_threads(cli.threads);
    ariadne.store = StoreConfig::spilling(64 * 1024, spool.clone());

    let run = ariadne
        .capture(&analytic, &graph, &spec)
        .expect("capture run succeeds");
    ariadne_obs::publish_report(run.report().to_json());
    println!(
        "obs-serve: captured {} tuples; replaying until the clock runs out",
        run.store.tuple_count()
    );

    // Replay loop: every iteration exercises compile -> layered replay
    // -> store reads, so /metrics quantiles and /trace span trees keep
    // moving while the operator watches.
    let replay_query = compile(
        "hot(x, i) :- value(x, v, i), superstep(x, i).",
        Params::new(),
    )
    .expect("replay query compiles");
    let deadline = Instant::now() + Duration::from_secs(cli.duration);
    let mut replays = 0u64;
    loop {
        let replay = ariadne
            .layered(&graph, &run.store, &replay_query)
            .expect("layered replay succeeds");
        replays += 1;
        if replays == 1 {
            println!(
                "obs-serve: replay returns {} rows over {} layers",
                replay.query_results.len("hot"),
                replay.layers
            );
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(200));
    }

    println!("obs-serve: {replays} replays done, shutting down");
    server.shutdown();
    std::fs::remove_dir_all(&spool).ok();
}
