//! Markdown rendering of experiment rows.

use crate::figures::{AlsRow, AptRow, BackwardRow, CaptureRow, ModeRow, SpeedupRow, WccNarrative};
use crate::tables::{ErrorRow, SizeRow, Table2Row};
use std::fmt::Write as _;

/// Human-readable byte count.
pub fn bytes(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{:.1}MB", n as f64 / (1 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1}KB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n}B")
    }
}

fn naive_cell(r: Option<f64>) -> String {
    match r {
        Some(x) => format!("{x:.2}x"),
        None => "OOM".to_string(),
    }
}

/// Render Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    writeln!(s, "| Dataset | |V| | |E| | Avg deg | Avg diam | paper |V| | paper |E| | paper deg |").unwrap();
    writeln!(s, "|---|---|---|---|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            s,
            "| {} | {} | {} | {:.2} | {:.2} | {} | {} | {:.2} |",
            r.dataset,
            r.vertices,
            r.edges,
            r.avg_degree,
            r.avg_diameter,
            r.paper_vertices,
            r.paper_edges,
            r.paper_avg_degree
        )
        .unwrap();
    }
    s
}

/// Render Tables 3/4.
pub fn render_sizes(rows: &[SizeRow]) -> String {
    let mut s = String::new();
    writeln!(s, "| Dataset | Analytic | Input | Provenance | Ratio | Vertex coverage |").unwrap();
    writeln!(s, "|---|---|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            s,
            "| {} | {} | {} | {} | {:.2}x | {:.0}% |",
            r.dataset,
            r.analytic,
            bytes(r.input_bytes),
            bytes(r.prov_bytes),
            r.ratio,
            r.vertex_coverage * 100.0
        )
        .unwrap();
    }
    s
}

/// Render Tables 5/6.
pub fn render_errors(rows: &[ErrorRow], norm: &str) -> String {
    let mut s = String::new();
    writeln!(s, "| Dataset | Error ({norm}) | Median A | Median B |").unwrap();
    writeln!(s, "|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            s,
            "| {} | {:.1e} | {:.3} | {:.3} |",
            r.dataset, r.error, r.median_original, r.median_optimized
        )
        .unwrap();
    }
    s
}

/// Render Figure 7.
pub fn render_fig7(rows: &[CaptureRow]) -> String {
    let mut s = String::new();
    writeln!(s, "| Dataset | Analytic | Baseline T | Full / T | Custom / T |").unwrap();
    writeln!(s, "|---|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            s,
            "| {} | {} | {:.3}s | {:.2}x | {:.2}x |",
            r.dataset,
            r.analytic,
            r.baseline.as_secs_f64(),
            r.full_ratio,
            r.custom_ratio
        )
        .unwrap();
    }
    s
}

/// Render Figures 8/11 mode rows.
pub fn render_modes(rows: &[ModeRow]) -> String {
    let mut s = String::new();
    writeln!(s, "| Dataset | Analytic | Query | Baseline T | Online / T | Layered / T | Naive / T |").unwrap();
    writeln!(s, "|---|---|---|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            s,
            "| {} | {} | {} | {:.3}s | {:.2}x | {:.2}x | {} |",
            r.dataset,
            r.analytic,
            r.query,
            r.baseline.as_secs_f64(),
            r.online_ratio,
            r.layered_ratio,
            naive_cell(r.naive_ratio)
        )
        .unwrap();
    }
    s
}

/// Render Figure 9.
pub fn render_fig9(rows: &[AlsRow]) -> String {
    let mut s = String::new();
    writeln!(s, "| Features | Query | Baseline T | Online / T |").unwrap();
    writeln!(s, "|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            s,
            "| ML-20^{} | {} | {:.3}s | {:.2}x |",
            r.rank,
            r.query,
            r.baseline.as_secs_f64(),
            r.online_ratio
        )
        .unwrap();
    }
    s
}

/// Render Figure 10.
pub fn render_fig10(rows: &[SpeedupRow]) -> String {
    let mut s = String::new();
    writeln!(s, "| Dataset | Analytic | Speedup | Messages (opt/orig) |").unwrap();
    writeln!(s, "|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            s,
            "| {} | {} | {:.2}x | {:.0}% |",
            r.dataset,
            r.analytic,
            r.speedup,
            r.message_ratio * 100.0
        )
        .unwrap();
    }
    s
}

/// Render Figure 11 (modes + verdicts).
pub fn render_fig11(rows: &[AptRow]) -> String {
    let mut s = render_modes(&rows.iter().map(|r| r.modes.clone()).collect::<Vec<_>>());
    writeln!(s).unwrap();
    writeln!(s, "| Dataset | Analytic | no_execute | safe | unsafe | skippable | verdict |").unwrap();
    writeln!(s, "|---|---|---|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            s,
            "| {} | {} | {} | {} | {} | {:.0}% | {} |",
            r.modes.dataset,
            r.modes.analytic,
            r.report.no_execute,
            r.report.safe,
            r.report.unsafe_count,
            r.report.skippable_fraction * 100.0,
            if r.report.recommended { "optimize" } else { "reject" }
        )
        .unwrap();
    }
    s
}

/// Render Figure 12.
pub fn render_fig12(rows: &[BackwardRow]) -> String {
    let mut s = String::new();
    writeln!(s, "| Dataset | Analytic | Full (Q10) / T | Custom (Q12) / T | Lineage size |").unwrap();
    writeln!(s, "|---|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            s,
            "| {} | {} | {:.2}x | {:.2}x | {} |",
            r.dataset, r.analytic, r.full_ratio, r.custom_ratio, r.lineage_size
        )
        .unwrap();
    }
    s
}

/// Render the threshold sweep.
pub fn render_sweep(rows: &[crate::figures::SweepRow]) -> String {
    let mut s = String::new();
    writeln!(s, "| eps | Skippable | Unsafe | Verdict |").unwrap();
    writeln!(s, "|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            s,
            "| {} | {:.0}% | {} | {} |",
            r.epsilon,
            r.skippable * 100.0,
            r.unsafe_count,
            if r.recommended { "safe" } else { "reject" }
        )
        .unwrap();
    }
    s
}

/// Render the WCC rejection narrative.
pub fn render_wcc(n: &WccNarrative) -> String {
    format!(
        "apt verdict on WCC: no_execute={}, safe={}, unsafe={} → {}\n\
         forcing the optimization anyway mislabels {:.0}% of vertices\n",
        n.report.no_execute,
        n.report.safe,
        n.report.unsafe_count,
        if n.report.recommended { "optimize" } else { "reject" },
        n.mismatch_fraction * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(bytes(10), "10B");
        assert_eq!(bytes(2048), "2.0KB");
        assert_eq!(bytes(3 << 20), "3.0MB");
    }

    #[test]
    fn naive_cells() {
        assert_eq!(naive_cell(Some(3.5)), "3.50x");
        assert_eq!(naive_cell(None), "OOM");
    }
}
