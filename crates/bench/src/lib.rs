//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation section (§6) on the synthetic scale-model datasets.
//!
//! Each `table*`/`fig*` function runs the same workloads, queries and
//! evaluation modes as the corresponding paper experiment and returns
//! structured rows; `src/bin/experiments.rs` prints them as tables and
//! the Criterion benches in `benches/` time the hot paths.
//!
//! Absolute numbers differ from the paper's Giraph cluster, but the
//! *shape* — who wins, by roughly what factor, where modes fall over —
//! is the reproduction target (see `EXPERIMENTS.md`).

pub mod config;
pub mod figures;
pub mod report;
pub mod tables;
pub mod workloads;

pub use config::ExperimentConfig;
pub use workloads::Workloads;
