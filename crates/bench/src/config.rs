//! Experiment configuration.

/// Knobs for the experiment harness.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// The web-crawl datasets are modelled at `1/denominator` of their
    /// Table-2 vertex counts.
    pub denominator: u64,
    /// The MovieLens model's scale denominator.
    pub als_denominator: u64,
    /// PageRank superstep count (the paper ran 20).
    pub pagerank_supersteps: u32,
    /// Engine worker threads.
    pub threads: usize,
    /// Naive-mode materialization budget in tuples: runs beyond it fail
    /// with the paper's "Naive was not able to scale" outcome.
    pub naive_budget: usize,
    /// ALS feature counts to sweep (the paper uses 5, 10, 15).
    pub als_ranks: Vec<usize>,
    /// ALS superstep cap.
    pub als_supersteps: u32,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            denominator: 4000,
            als_denominator: 200,
            pagerank_supersteps: 20,
            threads: 1,
            naive_budget: 3_000_000,
            als_ranks: vec![5, 10, 15],
            als_supersteps: 11,
        }
    }
}

impl ExperimentConfig {
    /// A microscopic configuration for unit tests of the harness itself.
    pub fn tiny() -> Self {
        ExperimentConfig {
            denominator: 200_000,
            als_denominator: 4_000,
            pagerank_supersteps: 5,
            naive_budget: 10_000_000,
            als_ranks: vec![4],
            als_supersteps: 5,
            ..Default::default()
        }
    }

    /// A miniature configuration for Criterion benches and smoke tests.
    pub fn mini() -> Self {
        ExperimentConfig {
            denominator: 40_000,
            als_denominator: 1_000,
            pagerank_supersteps: 8,
            naive_budget: 10_000_000,
            als_ranks: vec![5],
            als_supersteps: 7,
            ..Default::default()
        }
    }
}
