//! Shared workloads: the scale-model datasets and analytic instances.

use crate::config::ExperimentConfig;
use ariadne::session::Ariadne;
use ariadne_analytics::{PageRank, Sssp, Wcc};
use ariadne_graph::generators::{paper_graph, paper_ratings, BipartiteRatings, Dataset};
use ariadne_graph::{Csr, VertexId};
use ariadne_provenance::StoreConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One prepared web-crawl dataset: the unweighted graph (PageRank, WCC)
/// and its weighted variant (SSSP; random positive weights in (0, 1], as
/// §6 assigns).
pub struct CrawlWorkload {
    /// Which paper dataset this models.
    pub dataset: Dataset,
    /// Unweighted scale model.
    pub graph: Csr,
    /// Weighted variant for SSSP.
    pub weighted: Csr,
    /// SSSP source (vertex 0, consistently reachable in R-MAT models).
    pub source: VertexId,
}

/// All prepared workloads plus the system handle.
pub struct Workloads {
    /// The experiment configuration.
    pub config: ExperimentConfig,
    /// The four web-crawl models.
    pub crawls: Vec<CrawlWorkload>,
    /// The MovieLens model.
    pub ratings: BipartiteRatings,
    /// The configured Ariadne handle.
    pub ariadne: Ariadne,
}

impl Workloads {
    /// Build every dataset for `config`.
    pub fn prepare(config: ExperimentConfig) -> Self {
        let crawls = Dataset::web_crawls()
            .into_iter()
            .map(|dataset| {
                let graph = paper_graph(dataset, config.denominator);
                let mut rng = StdRng::seed_from_u64(0xBEEF ^ dataset as u64);
                let weighted = graph.map_weights(|_, _, _| 0.001 + rng.gen::<f64>());
                CrawlWorkload {
                    dataset,
                    graph,
                    weighted,
                    source: VertexId(0),
                }
            })
            .collect();
        let ratings = paper_ratings(config.als_denominator);
        let mut ariadne = Ariadne::with_threads(config.threads);
        ariadne.naive_budget = Some(config.naive_budget);
        ariadne.store = StoreConfig::in_memory();
        Workloads {
            config,
            crawls,
            ratings,
            ariadne,
        }
    }

    /// The PageRank instance used across experiments.
    pub fn pagerank(&self) -> PageRank {
        PageRank {
            supersteps: self.config.pagerank_supersteps,
            ..Default::default()
        }
    }

    /// The SSSP instance for a crawl.
    pub fn sssp(&self, crawl: &CrawlWorkload) -> Sssp {
        Sssp::new(crawl.source)
    }

    /// The WCC instance.
    pub fn wcc(&self) -> Wcc {
        Wcc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_workloads_build() {
        let w = Workloads::prepare(ExperimentConfig::mini());
        assert_eq!(w.crawls.len(), 4);
        for c in &w.crawls {
            assert!(c.graph.num_vertices() >= 64);
            assert_eq!(c.graph.num_edges(), c.weighted.num_edges());
        }
        assert!(w.ratings.num_ratings() > 0);
    }
}
