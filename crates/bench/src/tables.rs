//! Tables 2–6 of the paper.

use crate::workloads::Workloads;
use ariadne::queries;
use ariadne::CaptureSpec;
use ariadne_analytics::error::{median, relative_error};
use ariadne_analytics::pagerank::{delta_ranks, DeltaPageRank};
use ariadne_analytics::{ApproxSssp, Sssp};
use ariadne_graph::generators::Dataset;
use ariadne_graph::stats::graph_stats;
use ariadne_graph::Csr;

/// One row of Table 2 (dataset characteristics).
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Dataset short name.
    pub dataset: &'static str,
    /// Scale-model vertex count.
    pub vertices: usize,
    /// Scale-model edge count.
    pub edges: usize,
    /// Average degree (paper full-scale value in `paper_avg_degree`).
    pub avg_degree: f64,
    /// Approximate average distance (sampled BFS).
    pub avg_diameter: f64,
    /// The paper's full-scale |V|.
    pub paper_vertices: u64,
    /// The paper's full-scale |E|.
    pub paper_edges: u64,
    /// The paper's average degree.
    pub paper_avg_degree: f64,
}

/// Table 2: dataset characteristics of the scale models.
pub fn table2(w: &Workloads) -> Vec<Table2Row> {
    let mut rows: Vec<Table2Row> = w
        .crawls
        .iter()
        .map(|c| {
            let s = graph_stats(&c.graph, 8);
            Table2Row {
                dataset: c.dataset.name(),
                vertices: s.vertices,
                edges: s.edges,
                avg_degree: s.avg_degree,
                avg_diameter: s.avg_diameter,
                paper_vertices: c.dataset.full_vertices(),
                paper_edges: c.dataset.full_edges(),
                paper_avg_degree: c.dataset.avg_degree(),
            }
        })
        .collect();
    let ml = graph_stats(&w.ratings.graph, 8);
    rows.push(Table2Row {
        dataset: Dataset::Ml20.name(),
        vertices: ml.vertices,
        edges: ml.edges,
        avg_degree: ml.avg_degree,
        avg_diameter: ml.avg_diameter,
        paper_vertices: Dataset::Ml20.full_vertices(),
        paper_edges: Dataset::Ml20.full_edges(),
        paper_avg_degree: Dataset::Ml20.avg_degree(),
    });
    rows
}

/// One row of Tables 3/4 (provenance size vs input size).
#[derive(Clone, Debug)]
pub struct SizeRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Analytic name.
    pub analytic: &'static str,
    /// Input graph bytes.
    pub input_bytes: usize,
    /// Captured provenance bytes.
    pub prov_bytes: usize,
    /// prov / input ratio.
    pub ratio: f64,
    /// Fraction of input vertices carrying provenance (Table 4's
    /// "contains more than 80% of the input vertices" claim).
    pub vertex_coverage: f64,
}

fn size_row(
    dataset: &'static str,
    analytic: &'static str,
    graph: &Csr,
    store: &ariadne_provenance::ProvStore,
) -> SizeRow {
    // Count distinct vertices appearing as tuple locations.
    let mut seen = vec![false; graph.num_vertices()];
    if let Some(max) = store.max_superstep() {
        for s in 0..=max {
            for (_, tuples) in store.layer(s).unwrap() {
                for t in tuples {
                    if let Some(v) = t.first().and_then(|v| v.as_id()) {
                        if (v as usize) < seen.len() {
                            seen[v as usize] = true;
                        }
                    }
                }
            }
        }
    }
    let covered = seen.iter().filter(|&&b| b).count();
    let input_bytes = graph.byte_size();
    let prov_bytes = store.byte_size();
    SizeRow {
        dataset,
        analytic,
        input_bytes,
        prov_bytes,
        ratio: prov_bytes as f64 / input_bytes.max(1) as f64,
        vertex_coverage: covered as f64 / graph.num_vertices().max(1) as f64,
    }
}

/// A session whose store is pinned to the v1 (row-major) segment
/// format. Tables 3–4 reproduce the *paper's* accounting — the raw
/// captured-tuple footprint — which the v2 columnar compression would
/// understate (its savings are measured separately by the `segments`
/// perf section).
fn v1_session(w: &Workloads) -> ariadne::Ariadne {
    let mut a = w.ariadne.clone();
    a.store = a.store.with_format(ariadne_provenance::SegmentFormat::V1);
    a
}

/// Table 3: full provenance graph size (Query 2) vs input size.
pub fn table3(w: &Workloads) -> Vec<SizeRow> {
    let ariadne = v1_session(w);
    let mut rows = Vec::new();
    for c in &w.crawls {
        let pr = ariadne
            .capture(&w.pagerank(), &c.graph, &CaptureSpec::full())
            .unwrap();
        rows.push(size_row(c.dataset.name(), "PageRank", &c.graph, &pr.store));
        let ss = ariadne
            .capture(&w.sssp(c), &c.weighted, &CaptureSpec::full())
            .unwrap();
        rows.push(size_row(c.dataset.name(), "SSSP", &c.weighted, &ss.store));
        let wc = ariadne
            .capture(&w.wcc(), &c.graph, &CaptureSpec::full())
            .unwrap();
        rows.push(size_row(c.dataset.name(), "WCC", &c.graph, &wc.store));
    }
    rows
}

/// Table 4: custom provenance size (Query 3, forward lineage from the
/// highest-degree vertex for PageRank/WCC and from the source for SSSP).
pub fn table4(w: &Workloads) -> Vec<SizeRow> {
    let ariadne = v1_session(w);
    let mut rows = Vec::new();
    for c in &w.crawls {
        let hub = c.graph.max_out_degree_vertex().unwrap();
        let spec_hub = queries::capture_forward_lineage(hub).unwrap();
        let spec_src = queries::capture_forward_lineage(c.source).unwrap();

        let pr = ariadne
            .capture(&w.pagerank(), &c.graph, &spec_hub)
            .unwrap();
        rows.push(size_row(c.dataset.name(), "PageRank", &c.graph, &pr.store));
        let ss = ariadne
            .capture(&w.sssp(c), &c.weighted, &spec_src)
            .unwrap();
        rows.push(size_row(c.dataset.name(), "SSSP", &c.weighted, &ss.store));
        let wc = ariadne.capture(&w.wcc(), &c.graph, &spec_hub).unwrap();
        rows.push(size_row(c.dataset.name(), "WCC", &c.graph, &wc.store));
    }
    rows
}

/// One row of Tables 5/6 (approximation error).
#[derive(Clone, Debug)]
pub struct ErrorRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Normalized relative error (L2 for PageRank, L1 for SSSP).
    pub error: f64,
    /// Median of the original analytic's results.
    pub median_original: f64,
    /// Median of the optimized analytic's results.
    pub median_optimized: f64,
}

/// Table 5: PageRank relative error (L2) for ε = 0.01, plus medians.
pub fn table5(w: &Workloads) -> Vec<ErrorRow> {
    let steps = w.config.pagerank_supersteps;
    w.crawls
        .iter()
        .map(|c| {
            let exact = w.ariadne.baseline(&DeltaPageRank::exact(steps), &c.graph);
            let approx = w
                .ariadne
                .baseline(&DeltaPageRank::approximate(steps, 0.01), &c.graph);
            let r0 = delta_ranks(&exact.values);
            let r1 = delta_ranks(&approx.values);
            ErrorRow {
                dataset: c.dataset.name(),
                error: relative_error(&r0, &r1, 2.0),
                median_original: median(&r0),
                median_optimized: median(&r1),
            }
        })
        .collect()
}

/// Table 6: SSSP relative error (L1) for ε = 0.1, plus medians.
pub fn table6(w: &Workloads) -> Vec<ErrorRow> {
    w.crawls
        .iter()
        .map(|c| {
            let exact = w.ariadne.baseline(&Sssp::new(c.source), &c.weighted);
            let approx = w
                .ariadne
                .baseline(&ApproxSssp::new(c.source, 0.1), &c.weighted);
            ErrorRow {
                dataset: c.dataset.name(),
                error: relative_error(&exact.values, &approx.values, 1.0),
                median_original: median(&exact.values),
                median_optimized: median(&approx.values),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    fn mini() -> Workloads {
        Workloads::prepare(ExperimentConfig::mini())
    }

    #[test]
    fn table2_has_five_rows() {
        let rows = table2(&mini());
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.vertices > 0 && r.edges > 0));
    }

    #[test]
    fn table3_provenance_exceeds_input() {
        let w = mini();
        let rows = table3(&w);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(r.ratio > 1.0, "{}/{} ratio {}", r.dataset, r.analytic, r.ratio);
        }
    }

    #[test]
    fn table4_custom_smaller_than_input_scale() {
        let w = mini();
        let full = table3(&w);
        let custom = table4(&w);
        for (f, c) in full.iter().zip(&custom) {
            assert!(
                c.prov_bytes < f.prov_bytes,
                "{}/{}: custom {} >= full {}",
                c.dataset,
                c.analytic,
                c.prov_bytes,
                f.prov_bytes
            );
        }
    }

    #[test]
    fn error_tables_small_errors() {
        let w = mini();
        for r in table5(&w) {
            assert!(r.error < 0.1, "PageRank error {} on {}", r.error, r.dataset);
            assert!(r.median_original.is_finite());
        }
        for r in table6(&w) {
            assert!(r.error < 0.3, "SSSP error {} on {}", r.error, r.dataset);
        }
    }
}
