//! Figure 9 bench: ALS with Queries 7/8 online vs bare ALS.

use ariadne::custom::AlsProv;
use ariadne::queries;
use ariadne_analytics::als::{Als, AlsConfig};
use ariadne_bench::{ExperimentConfig, Workloads};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_als(c: &mut Criterion) {
    let w = Workloads::prepare(ExperimentConfig::mini());
    let mut cfg = AlsConfig::new(w.ratings.users, 5);
    cfg.supersteps = w.config.als_supersteps;
    let als = Als::new(cfg);
    let q7 = queries::als_range_check().unwrap();
    let q8 = queries::als_error_increase(0.5).unwrap();

    let mut group = c.benchmark_group("fig9_als");
    group.sample_size(10);
    group.bench_function("als_baseline", |b| {
        b.iter(|| black_box(w.ariadne.baseline(&als, &w.ratings.graph).supersteps()))
    });
    group.bench_function("als_q7_online", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .online_with(&als, &w.ratings.graph, &q7, Some(Arc::new(AlsProv)))
                    .unwrap()
                    .query_results
                    .total_tuples(),
            )
        })
    });
    group.bench_function("als_q8_online", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .online_with(&als, &w.ratings.graph, &q8, Some(Arc::new(AlsProv)))
                    .unwrap()
                    .query_results
                    .total_tuples(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_als);
criterion_main!(benches);
