//! Figure 10 / Tables 5–6 bench: original vs apt-optimized analytics.

use ariadne_analytics::pagerank::DeltaPageRank;
use ariadne_analytics::{ApproxSssp, Sssp};
use ariadne_bench::{ExperimentConfig, Workloads};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_optimized(c: &mut Criterion) {
    let w = Workloads::prepare(ExperimentConfig::mini());
    let crawl = &w.crawls[0];
    let steps = w.config.pagerank_supersteps;

    let mut group = c.benchmark_group("fig10_optimized");
    group.sample_size(10);
    group.bench_function("pagerank_exact", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .baseline(&DeltaPageRank::exact(steps), &crawl.graph)
                    .metrics
                    .total_messages(),
            )
        })
    });
    group.bench_function("pagerank_approx_0_01", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .baseline(&DeltaPageRank::approximate(steps, 0.01), &crawl.graph)
                    .metrics
                    .total_messages(),
            )
        })
    });
    group.bench_function("sssp_exact", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .baseline(&Sssp::new(crawl.source), &crawl.weighted)
                    .metrics
                    .total_messages(),
            )
        })
    });
    group.bench_function("sssp_approx_0_1", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .baseline(&ApproxSssp::new(crawl.source, 0.1), &crawl.weighted)
                    .metrics
                    .total_messages(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_optimized);
criterion_main!(benches);
