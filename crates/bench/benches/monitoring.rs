//! Figure 8 bench: monitoring queries 4/5/6 in the three evaluation
//! modes, against the bare analytic.

use ariadne::queries;
use ariadne::CaptureSpec;
use ariadne_bench::{ExperimentConfig, Workloads};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_monitoring(c: &mut Criterion) {
    let w = Workloads::prepare(ExperimentConfig::mini());
    let crawl = &w.crawls[0];
    let sssp = w.sssp(crawl);
    let q5 = queries::sssp_wcc_value_check().unwrap();
    let q6 = queries::sssp_wcc_no_message_no_change().unwrap();
    let store = w
        .ariadne
        .capture(&sssp, &crawl.weighted, &CaptureSpec::full())
        .unwrap()
        .store;

    let mut group = c.benchmark_group("fig8_monitoring");
    group.sample_size(10);
    group.bench_function("sssp_baseline", |b| {
        b.iter(|| black_box(w.ariadne.baseline(&sssp, &crawl.weighted).supersteps()))
    });
    group.bench_function("sssp_q5_online", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .online(&sssp, &crawl.weighted, &q5)
                    .unwrap()
                    .query_results
                    .total_tuples(),
            )
        })
    });
    group.bench_function("sssp_q6_online", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .online(&sssp, &crawl.weighted, &q6)
                    .unwrap()
                    .query_results
                    .total_tuples(),
            )
        })
    });
    group.bench_function("sssp_q5_layered", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .layered(&crawl.weighted, &store, &q5)
                    .unwrap()
                    .layers,
            )
        })
    });
    group.bench_function("sssp_q5_naive", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .naive(&crawl.weighted, &store, &q5)
                    .unwrap()
                    .unfolded_nodes,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_monitoring);
criterion_main!(benches);
