//! Figure 12 bench: backward lineage over full (Query 10) vs custom
//! (Queries 11 + 12) provenance.

use ariadne::queries;
use ariadne::CaptureSpec;
use ariadne_bench::{ExperimentConfig, Workloads};
use ariadne_graph::VertexId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_backward(c: &mut Criterion) {
    let w = Workloads::prepare(ExperimentConfig::mini());
    let crawl = &w.crawls[0];
    let sssp = w.sssp(crawl);

    let full = w
        .ariadne
        .capture(&sssp, &crawl.weighted, &CaptureSpec::full())
        .unwrap()
        .store;
    let custom = w
        .ariadne
        .capture(
            &sssp,
            &crawl.weighted,
            &queries::capture_backward_custom().unwrap(),
        )
        .unwrap()
        .store;
    let sigma = full.max_superstep().unwrap();
    let target = full
        .layer(sigma)
        .unwrap()
        .into_iter()
        .find(|(p, _)| p == "superstep")
        .and_then(|(_, ts)| ts.first().and_then(|t| t[0].as_id()))
        .map(VertexId)
        .unwrap();
    let q10 = queries::backward_lineage(target, sigma).unwrap();
    let q12 = queries::backward_lineage_custom(target, sigma).unwrap();

    let mut group = c.benchmark_group("fig12_backward");
    group.sample_size(10);
    group.bench_function("q10_full_layered", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .layered(&crawl.weighted, &full, &q10)
                    .unwrap()
                    .query_results
                    .len("back_lineage"),
            )
        })
    });
    group.bench_function("q12_custom_layered", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .layered(&crawl.weighted, &custom, &q12)
                    .unwrap()
                    .query_results
                    .len("back_lineage"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_backward);
criterion_main!(benches);
