//! Table 2 bench: dataset generation and statistics.

use ariadne_bench::{ExperimentConfig, Workloads};
use ariadne_graph::generators::{paper_graph, Dataset};
use ariadne_graph::stats::graph_stats;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("generate_in04_model", |b| {
        b.iter(|| black_box(paper_graph(Dataset::In04, 40_000)))
    });
    let w = Workloads::prepare(ExperimentConfig::mini());
    group.bench_function("stats_all_crawls", |b| {
        b.iter(|| {
            for crawl in &w.crawls {
                black_box(graph_stats(&crawl.graph, 8));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_datasets);
criterion_main!(benches);
