//! Ablations for the design choices DESIGN.md calls out:
//!
//! * message **combiners** (provenance capture must disable them — what
//!   does that cost the analytic?);
//! * engine **thread count** (the BSP engine's parallel speedup);
//! * store **spill budget** (in-memory vs spill-to-disk capture).

use ariadne::CaptureSpec;
use ariadne_analytics::{PageRank, Wcc};
use ariadne_bench::{ExperimentConfig, Workloads};
use ariadne_provenance::StoreConfig;
use ariadne_vc::{Engine, EngineConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_combiner(c: &mut Criterion) {
    let w = Workloads::prepare(ExperimentConfig::mini());
    let g = &w.crawls[0].graph;
    let pr = PageRank {
        supersteps: 8,
        ..Default::default()
    };
    let mut group = c.benchmark_group("ablation_combiner");
    group.sample_size(10);
    group.bench_function("pagerank_with_combiner", |b| {
        let engine = Engine::new(EngineConfig::default());
        b.iter(|| black_box(engine.run(&pr, g).metrics.total_messages()))
    });
    group.bench_function("pagerank_without_combiner", |b| {
        let engine = Engine::new(EngineConfig {
            use_combiner: false,
            ..EngineConfig::default()
        });
        b.iter(|| black_box(engine.run(&pr, g).metrics.total_messages()))
    });
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    let w = Workloads::prepare(ExperimentConfig::mini());
    let g = &w.crawls[3].graph; // the largest model
    let pr = PageRank {
        supersteps: 8,
        ..Default::default()
    };
    let mut group = c.benchmark_group("ablation_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("pagerank_{threads}_threads"), |b| {
            let engine = Engine::new(EngineConfig::parallel(threads));
            b.iter(|| black_box(engine.run(&pr, g).supersteps()))
        });
    }
    group.finish();
}

fn bench_spill(c: &mut Criterion) {
    let w = Workloads::prepare(ExperimentConfig::mini());
    let g = &w.crawls[0].graph;
    let mut group = c.benchmark_group("ablation_spill");
    group.sample_size(10);
    group.bench_function("capture_in_memory", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .capture(&Wcc, g, &CaptureSpec::full())
                    .unwrap()
                    .store
                    .tuple_count(),
            )
        })
    });
    group.bench_function("capture_spilling_64k", |b| {
        let dir = std::env::temp_dir().join(format!("ariadne-ablate-{}", std::process::id()));
        let mut ariadne = w.ariadne.clone();
        ariadne.store = StoreConfig::spilling(64 << 10, dir.clone());
        b.iter(|| {
            black_box(
                ariadne
                    .capture(&Wcc, g, &CaptureSpec::full())
                    .unwrap()
                    .store
                    .disk_bytes(),
            )
        });
        std::fs::remove_dir_all(&dir).ok();
    });
    group.finish();
}

criterion_group!(benches, bench_combiner, bench_threads, bench_spill);
criterion_main!(benches);
