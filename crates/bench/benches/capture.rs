//! Tables 3/4 and Figure 7 bench: baseline vs full capture (Query 2) vs
//! custom capture (Query 3).

use ariadne::queries;
use ariadne::CaptureSpec;
use ariadne_bench::{ExperimentConfig, Workloads};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_capture(c: &mut Criterion) {
    let w = Workloads::prepare(ExperimentConfig::mini());
    let crawl = &w.crawls[0];
    let pr = w.pagerank();

    let mut group = c.benchmark_group("fig7_capture");
    group.sample_size(10);
    group.bench_function("pagerank_baseline", |b| {
        b.iter(|| black_box(w.ariadne.baseline(&pr, &crawl.graph).supersteps()))
    });
    group.bench_function("pagerank_full_capture", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .capture(&pr, &crawl.graph, &CaptureSpec::full())
                    .unwrap()
                    .store
                    .tuple_count(),
            )
        })
    });
    let hub = crawl.graph.max_out_degree_vertex().unwrap();
    let custom = queries::capture_forward_lineage(hub).unwrap();
    group.bench_function("pagerank_custom_capture", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .capture(&pr, &crawl.graph, &custom)
                    .unwrap()
                    .store
                    .tuple_count(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_capture);
criterion_main!(benches);
