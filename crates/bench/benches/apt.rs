//! Figure 11 bench: the apt query (Query 1) in the three modes.

use ariadne::queries;
use ariadne::CaptureSpec;
use ariadne_analytics::pagerank::DeltaPageRank;
use ariadne_bench::{ExperimentConfig, Workloads};
use ariadne_pql::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_apt(c: &mut Criterion) {
    let w = Workloads::prepare(ExperimentConfig::mini());
    let crawl = &w.crawls[0];
    let pr = DeltaPageRank::exact(w.config.pagerank_supersteps);
    let apt = queries::apt("udf_diff", Value::Float(0.01)).unwrap();
    let store = w
        .ariadne
        .capture(&pr, &crawl.graph, &CaptureSpec::full())
        .unwrap()
        .store;

    let mut group = c.benchmark_group("fig11_apt");
    group.sample_size(10);
    group.bench_function("pagerank_baseline", |b| {
        b.iter(|| black_box(w.ariadne.baseline(&pr, &crawl.graph).supersteps()))
    });
    group.bench_function("apt_online", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .online(&pr, &crawl.graph, &apt)
                    .unwrap()
                    .query_results
                    .len("no_execute"),
            )
        })
    });
    group.bench_function("apt_layered", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .layered(&crawl.graph, &store, &apt)
                    .unwrap()
                    .query_results
                    .len("no_execute"),
            )
        })
    });
    group.bench_function("apt_naive", |b| {
        b.iter(|| {
            black_box(
                w.ariadne
                    .naive(&crawl.graph, &store, &apt)
                    .unwrap()
                    .database
                    .len("no_execute"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_apt);
criterion_main!(benches);
