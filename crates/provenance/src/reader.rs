//! Pluggable segment read backends: how spilled record bytes get from
//! a spool file into the decoder.
//!
//! [`ReadBackend::Buffered`] (the default) opens the file, seeks to the
//! extent, and reads it into an owned buffer — portable, Miri-friendly,
//! and what CI runs. [`ReadBackend::Mmap`] maps the file read-only and
//! hands the decoder a slice **borrowed from the page cache**: no copy
//! into userspace buffers, and bytes of an extent that the column mask
//! skips are never faulted in at all. The mapping is private and
//! read-only; it is created per read and unmapped when the returned
//! [`SegmentSlice`] drops, so compaction deleting a superseded file
//! cannot invalidate a live read (the inode stays alive until the map
//! drops). Only **atomic** files (sealed segments and compacted
//! generation files) are ever mapped — unsealed `seg-*.bin` tails can
//! be salvage-truncated concurrently, which would shrink a live
//! mapping, so they always go through the buffered path.
//!
//! The mmap path is a small hand-declared `extern "C"` binding (this
//! workspace builds offline, without the `libc` crate); on non-Unix
//! targets the enum variant exists but silently degrades to the
//! buffered implementation.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::ops::Deref;
use std::path::Path;

/// Cached global-registry handles for read-backend accounting. Which
/// backend serves an extent depends on configuration and file state
/// (only atomic files ever map), and how many extents are pulled depends
/// on replay chunking — so all three are flagged non-deterministic. The
/// *decoded* record/tuple counters over in `store.rs` stay deterministic
/// regardless of backend; `tests/backend_invariance.rs` pins that.
mod obs_handles {
    use ariadne_obs::metrics::Counter;
    use std::sync::OnceLock;

    macro_rules! read_counter {
        ($fn_name:ident, $name:literal, $help:literal) => {
            pub fn $fn_name() -> &'static Counter {
                static H: OnceLock<Counter> = OnceLock::new();
                H.get_or_init(|| ariadne_obs::registry().counter($name, $help, false))
            }
        };
    }

    read_counter!(
        extent_reads,
        "store_extent_reads_total",
        "segment extent reads served by any backend"
    );
    read_counter!(
        mmap_bytes,
        "store_mmap_bytes_total",
        "extent bytes served borrowed from read-only file mappings"
    );
    read_counter!(
        buffered_bytes,
        "store_buffered_bytes_total",
        "extent bytes served by seek+read into owned buffers"
    );
}

/// Which implementation [`crate::ProvStore`] layer reads use to pull
/// extent bytes from spool files.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ReadBackend {
    /// Seek + read into an owned buffer (the default; portable and
    /// Miri-safe).
    #[default]
    Buffered,
    /// Map the file read-only and decode borrowed from the page cache.
    /// Applied to atomic (sealed/compacted) files only; unsealed tails
    /// and non-Unix targets fall back to [`ReadBackend::Buffered`].
    Mmap,
}

/// Bytes of one segment extent, either owned or borrowed from a
/// read-only file mapping. Derefs to `[u8]`.
pub struct SegmentSlice {
    inner: SliceInner,
}

impl std::fmt::Debug for SegmentSlice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.inner {
            SliceInner::Owned(_) => "owned",
            #[cfg(unix)]
            SliceInner::Mapped { .. } => "mapped",
        };
        write!(f, "SegmentSlice({kind}, {} bytes)", self.len())
    }
}

enum SliceInner {
    Owned(Vec<u8>),
    #[cfg(unix)]
    Mapped {
        map: mapped::Mmap,
        offset: usize,
        len: usize,
    },
}

impl Deref for SegmentSlice {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            SliceInner::Owned(v) => v,
            #[cfg(unix)]
            SliceInner::Mapped { map, offset, len } => &map.as_slice()[*offset..*offset + *len],
        }
    }
}

impl SegmentSlice {
    /// Wrap an already-owned buffer (in-memory segment bytes).
    pub fn owned(bytes: Vec<u8>) -> Self {
        SegmentSlice {
            inner: SliceInner::Owned(bytes),
        }
    }
}

/// Read `len` bytes at `offset` of `path` through `backend`. `atomic`
/// marks files written via temp-file + rename (sealed segments,
/// generation files): only those are eligible for mapping — an
/// unsealed tail can be truncated under a live map.
pub fn read_extent(
    backend: ReadBackend,
    path: &Path,
    offset: u64,
    len: usize,
    atomic: bool,
) -> std::io::Result<SegmentSlice> {
    obs_handles::extent_reads().inc();
    #[cfg(unix)]
    if backend == ReadBackend::Mmap && atomic && len > 0 {
        let map = mapped::Mmap::of_file(path)?;
        let end = offset as usize + len;
        if end > map.as_slice().len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "extent {offset}+{len} overruns the {}-byte file",
                    map.as_slice().len()
                ),
            ));
        }
        obs_handles::mmap_bytes().add(len as u64);
        ariadne_obs::trace::event(
            ariadne_obs::trace::Level::Trace,
            "store::read",
            "extent_mmap",
            &[("offset", offset.into()), ("len", len.into())],
        );
        return Ok(SegmentSlice {
            inner: SliceInner::Mapped {
                map,
                offset: offset as usize,
                len,
            },
        });
    }
    let _ = (backend, atomic);
    let mut file = File::open(path)?;
    if offset > 0 {
        file.seek(SeekFrom::Start(offset))?;
    }
    let mut buf = vec![0u8; len];
    file.read_exact(&mut buf)?;
    obs_handles::buffered_bytes().add(len as u64);
    ariadne_obs::trace::event(
        ariadne_obs::trace::Level::Trace,
        "store::read",
        "extent_buffered",
        &[("offset", offset.into()), ("len", len.into())],
    );
    Ok(SegmentSlice::owned(buf))
}

#[cfg(unix)]
mod mapped {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// A whole-file read-only private mapping, unmapped on drop.
    pub struct Mmap {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // The mapping is read-only and private; sharing immutable bytes
    // across threads is safe.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        pub fn of_file(path: &Path) -> std::io::Result<Mmap> {
            let file = File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if len == 0 {
                return Ok(Mmap {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mmap { ptr, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len > 0 {
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "ariadne-reader-{tag}-{}",
            std::process::id()
        ));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn buffered_reads_extents() {
        let path = temp_file("buf", b"0123456789");
        let slice = read_extent(ReadBackend::Buffered, &path, 3, 4, true).unwrap();
        assert_eq!(&*slice, b"3456");
        let whole = read_extent(ReadBackend::Buffered, &path, 0, 10, false).unwrap();
        assert_eq!(&*whole, b"0123456789");
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn mmap_reads_extents_and_matches_buffered() {
        let data: Vec<u8> = (0..4096u32).flat_map(|x| x.to_le_bytes()).collect();
        let path = temp_file("map", &data);
        let mapped = read_extent(ReadBackend::Mmap, &path, 128, 1000, true).unwrap();
        let buffered = read_extent(ReadBackend::Buffered, &path, 128, 1000, true).unwrap();
        assert_eq!(&*mapped, &*buffered);
        // Non-atomic files never map (they may be truncated live).
        let tail = read_extent(ReadBackend::Mmap, &path, 0, 8, false).unwrap();
        assert!(matches!(tail.inner, SliceInner::Owned(_)));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn mmap_overrun_is_typed() {
        let path = temp_file("overrun", b"short");
        let err = read_extent(ReadBackend::Mmap, &path, 2, 100, true).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn mmap_zero_length_file() {
        let path = temp_file("empty", b"");
        let slice = read_extent(ReadBackend::Mmap, &path, 0, 0, true).unwrap();
        assert!(slice.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
