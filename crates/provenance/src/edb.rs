//! Generating the provenance EDB tuples of Table 1.
//!
//! This is the *compact representation* of §3: rather than materializing
//! an unfolded provenance node per (vertex, superstep), each input-graph
//! vertex is annotated with relations (`value`, `send_message`,
//! `receive_message`, `superstep`, `evolution`, `edge_value`) holding one
//! tuple per superstep event.
//!
//! Generation is *customized by the query*: only predicates in the
//! `needed` set are produced, which is how declarative capture cuts space
//! and time (Tables 3–4 vs Figure 7).

use ariadne_graph::{Csr, VertexId};
use ariadne_pql::{Tuple, Value};
use std::collections::BTreeSet;

/// Everything that happened to one vertex during one superstep, already
/// encoded as PQL values.
#[derive(Clone, Debug)]
pub struct VertexStepRecord {
    /// The vertex.
    pub vertex: VertexId,
    /// The superstep.
    pub superstep: u32,
    /// The vertex value *after* computing.
    pub value: Value,
    /// Received messages as (source, payload).
    pub received: Vec<(VertexId, Value)>,
    /// Sent messages as (destination, payload).
    pub sent: Vec<(VertexId, Value)>,
    /// Outgoing edge weights, used only when `edge_value` is captured.
    pub out_edges: Vec<(VertexId, f64)>,
}

/// Per-vertex EDB generator. Holds the vertex's activation history so it
/// can emit `evolution` tuples.
#[derive(Clone, Debug, Default)]
pub struct EdbTracker {
    last_active: Option<u32>,
}

/// Which Table-1 predicates to generate.
pub type NeededEdbs = BTreeSet<String>;

impl EdbTracker {
    /// Fresh tracker (vertex never active yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// The last superstep this vertex computed in, if any.
    pub fn last_active(&self) -> Option<u32> {
        self.last_active
    }

    /// Rebuild a tracker from a recorded activation history — used when
    /// restoring per-vertex state from a checkpoint.
    pub fn from_last_active(last_active: Option<u32>) -> Self {
        EdbTracker { last_active }
    }

    /// Generate the needed EDB tuples for one vertex-superstep and
    /// advance the activation history.
    pub fn tuples(
        &mut self,
        rec: &VertexStepRecord,
        needed: &NeededEdbs,
    ) -> Vec<(&'static str, Tuple)> {
        let x = Value::Id(rec.vertex.0);
        let i = Value::Int(rec.superstep as i64);
        let mut out = Vec::new();

        if needed.contains("superstep") {
            out.push(("superstep", vec![x.clone(), i.clone()]));
        }
        if needed.contains("value") {
            out.push(("value", vec![x.clone(), rec.value.clone(), i.clone()]));
        }
        if needed.contains("evolution") {
            if let Some(prev) = self.last_active {
                out.push((
                    "evolution",
                    vec![x.clone(), Value::Int(prev as i64), i.clone()],
                ));
            }
        }
        if needed.contains("receive_message") {
            for (src, m) in &rec.received {
                out.push((
                    "receive_message",
                    vec![x.clone(), Value::Id(src.0), m.clone(), i.clone()],
                ));
            }
        }
        if needed.contains("send_message") {
            for (dst, m) in &rec.sent {
                out.push((
                    "send_message",
                    vec![x.clone(), Value::Id(dst.0), m.clone(), i.clone()],
                ));
            }
        }
        if needed.contains("edge_value") {
            for (dst, w) in &rec.out_edges {
                out.push((
                    "edge_value",
                    vec![x.clone(), Value::Id(dst.0), Value::Float(*w), i.clone()],
                ));
            }
        }

        self.last_active = Some(rec.superstep);
        out
    }
}

/// Static graph-structure EDB tuples (`edge`, `in_edge`) for one vertex,
/// produced once (at superstep 0) when the query references them.
pub fn static_graph_edbs(
    graph: &Csr,
    vertex: VertexId,
    needed: &NeededEdbs,
) -> Vec<(&'static str, Tuple)> {
    let x = Value::Id(vertex.0);
    let mut out = Vec::new();
    if needed.contains("edge") {
        for e in graph.out_edges(vertex) {
            out.push(("edge", vec![x.clone(), Value::Id(e.neighbor.0)]));
        }
    }
    if needed.contains("in_edge") {
        for e in graph.in_edges(vertex) {
            out.push(("in_edge", vec![x.clone(), Value::Id(e.neighbor.0)]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_graph::generators::regular::star;

    fn needed(preds: &[&str]) -> NeededEdbs {
        preds.iter().map(|s| s.to_string()).collect()
    }

    fn record(v: u64, step: u32) -> VertexStepRecord {
        VertexStepRecord {
            vertex: VertexId(v),
            superstep: step,
            value: Value::Float(0.5),
            received: vec![(VertexId(9), Value::Float(0.1))],
            sent: vec![(VertexId(8), Value::Float(0.2))],
            out_edges: vec![(VertexId(8), 2.0)],
        }
    }

    #[test]
    fn generates_only_needed_predicates() {
        let mut t = EdbTracker::new();
        let out = t.tuples(&record(1, 0), &needed(&["value", "superstep"]));
        let preds: Vec<&str> = out.iter().map(|(p, _)| *p).collect();
        assert_eq!(preds, vec!["superstep", "value"]);
    }

    #[test]
    fn evolution_needs_history() {
        let mut t = EdbTracker::new();
        let n = needed(&["evolution"]);
        assert!(t.tuples(&record(1, 0), &n).is_empty());
        let out = t.tuples(&record(1, 2), &n);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].1,
            vec![Value::Id(1), Value::Int(0), Value::Int(2)]
        );
        assert_eq!(t.last_active(), Some(2));
    }

    #[test]
    fn message_tuples_carry_peers() {
        let mut t = EdbTracker::new();
        let out = t.tuples(&record(1, 3), &needed(&["receive_message", "send_message"]));
        assert_eq!(
            out[0],
            (
                "receive_message",
                vec![Value::Id(1), Value::Id(9), Value::Float(0.1), Value::Int(3)]
            )
        );
        assert_eq!(
            out[1],
            (
                "send_message",
                vec![Value::Id(1), Value::Id(8), Value::Float(0.2), Value::Int(3)]
            )
        );
    }

    #[test]
    fn edge_value_tuples() {
        let mut t = EdbTracker::new();
        let out = t.tuples(&record(1, 0), &needed(&["edge_value"]));
        assert_eq!(
            out[0].1,
            vec![Value::Id(1), Value::Id(8), Value::Float(2.0), Value::Int(0)]
        );
    }

    #[test]
    fn static_edbs() {
        let g = star(4);
        let out = static_graph_edbs(&g, VertexId(0), &needed(&["edge"]));
        assert_eq!(out.len(), 3);
        let ins = static_graph_edbs(&g, VertexId(2), &needed(&["in_edge"]));
        assert_eq!(ins, vec![("in_edge", vec![Value::Id(2), Value::Id(0)])]);
        assert!(static_graph_edbs(&g, VertexId(0), &needed(&[])).is_empty());
    }
}
