//! Epoch layering: provenance *deltas* appended to a live store after a
//! graph mutation, instead of a full re-capture.
//!
//! A [`crate::ProvStore`] captured for graph epoch 0 holds one physical
//! layer per superstep, `0..=max`. When the graph mutates and the
//! analytic is re-captured, most layers are unchanged — re-writing them
//! all would make every mutation cost a full capture in storage. Instead
//! [`crate::ProvStore::append_epoch`] diffs the fresh capture against
//! the store's current *logical* content layer by layer and appends only
//! the differences as new **physical** layers:
//!
//! ```text
//! physical layer = epoch.base + superstep
//! ```
//!
//! where `base` is one past the store's previous physical maximum. Three
//! reserved predicate spellings encode the diff (the PQL parser rejects
//! `~` in identifiers, so no captured predicate can collide):
//!
//! * `pred`        — full replacement: this layer's logical content for
//!   `pred` is exactly these tuples;
//! * `~add~pred`   — append: the previous epoch's content, extended by
//!   these tuples (the common case for monotone analytics whose layers
//!   only grow);
//! * `~del~pred`   — tombstone: `pred` vanishes from this layer;
//! * `~epoch~`     — one marker record per epoch,
//!   `[epoch_index, base, supersteps]`, written at the epoch's base
//!   layer so a spool resume can rebuild the epoch table.
//!
//! Logical reads ([`crate::ProvStore::layer_read_with`],
//! [`crate::ProvStore::to_database`], [`crate::ProvStore::max_superstep`])
//! materialize superstep `s` by folding the epoch chain in order; a
//! store with no epochs reads its physical layers directly, byte for
//! byte the pre-epoch behaviour. Column masks apply *after*
//! materialization (the chain must see raw tuples to diff them).
//!
//! The diff runs in **canonical (sorted) tuple order**: multi-threaded
//! captures ingest per-chunk buffers in arrival order, so the physical
//! order inside a layer is not deterministic run to run, and a raw
//! comparison would misclassify pure reorderings as replacements.
//! Equivalence between an epoch-folded read and a cold capture is
//! therefore a statement about sorted layer content — the same form
//! the rest of the system compares stores in. See `docs/MUTATIONS.md`
//! for the numbering walkthrough.

/// One epoch's slice of the physical layer space.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EpochInfo {
    /// First physical layer of this epoch: superstep `s` lives at
    /// `base + s`.
    pub base: u32,
    /// Number of logical supersteps this epoch's run produced. Reads of
    /// `s >= supersteps` see an empty layer.
    pub supersteps: u32,
}

/// What one [`crate::ProvStore::append_epoch`] call wrote — the storage
/// side of the incremental-vs-cold bench comparison.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// The mutation epoch the store is now at.
    pub epoch: u64,
    /// (layer, predicate) pairs identical to the previous epoch —
    /// carried forward without writing a byte.
    pub carried: usize,
    /// Pairs whose new content extended the old: only the suffix was
    /// appended (`~add~pred`).
    pub appended: usize,
    /// Pairs rewritten in full (diverged or new).
    pub replaced: usize,
    /// Pairs tombstoned (`~del~pred`).
    pub tombstoned: usize,
    /// Encoded bytes this epoch added to the store.
    pub bytes_appended: usize,
    /// Encoded bytes a full re-capture of the new run would have
    /// written (the cold baseline for the delta win).
    pub cold_bytes: usize,
}

/// The reserved predicate carrying epoch marker records.
pub const EPOCH_MARKER: &str = "~epoch~";

/// The append-shadow spelling for `pred`.
pub fn shadow_add(pred: &str) -> String {
    format!("~add~{pred}")
}

/// The tombstone spelling for `pred`.
pub fn shadow_del(pred: &str) -> String {
    format!("~del~{pred}")
}

/// Whether `pred` is one of the reserved epoch-encoding spellings.
pub fn is_reserved(pred: &str) -> bool {
    pred == EPOCH_MARKER || pred.starts_with("~add~") || pred.starts_with("~del~")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_spellings() {
        assert!(is_reserved(EPOCH_MARKER));
        assert!(is_reserved(&shadow_add("send_message")));
        assert!(is_reserved(&shadow_del("value")));
        assert!(!is_reserved("send_message"));
        assert_eq!(shadow_add("p"), "~add~p");
        assert_eq!(shadow_del("p"), "~del~p");
    }
}
