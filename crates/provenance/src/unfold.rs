//! The unfolded provenance graph and its layer decomposition.
//!
//! §3 defines the provenance graph with one node per (vertex, superstep)
//! execution, *evolution* edges between consecutive activations of the
//! same vertex, and *message* edges following the send/receive exchanges
//! (a message sent at superstep `i` connects to the receiver's node at
//! `i + 1`). Definition 5.1 decomposes it into layers by iteratively
//! peeling leaves; for provenance DAGs this coincides with topological
//! levels, and — for the standard analytics — with the superstep index,
//! which is exactly why layered evaluation can materialize one superstep
//! at a time.
//!
//! The compact representation (per-vertex relations) is Ariadne's working
//! format; this module exists for the naive mode's whole-graph view and
//! for tests that verify compact ≡ unfolded.

use ariadne_pql::Database;
use std::collections::HashMap;

/// A node of the unfolded graph: (vertex id, superstep).
pub type ProvNode = (u64, u32);

/// The unfolded provenance graph.
#[derive(Clone, Debug, Default)]
pub struct UnfoldedGraph {
    nodes: Vec<ProvNode>,
    index: HashMap<ProvNode, usize>,
    out: Vec<Vec<usize>>,
    incoming: Vec<Vec<usize>>,
}

impl UnfoldedGraph {
    /// Build from a database holding full provenance (`superstep`,
    /// `evolution`, `send_message` and/or `receive_message` relations).
    pub fn from_database(db: &Database) -> Self {
        let mut g = UnfoldedGraph::default();

        // Nodes from the superstep relation.
        if let Some(rel) = db.relation("superstep") {
            for t in rel.scan() {
                if let (Some(x), Some(i)) = (t[0].as_id(), t[1].as_i64()) {
                    g.add_node((x, i as u32));
                }
            }
        }
        // Evolution edges: (x, i) -> (x, j).
        if let Some(rel) = db.relation("evolution") {
            for t in rel.scan() {
                if let (Some(x), Some(i), Some(j)) = (t[0].as_id(), t[1].as_i64(), t[2].as_i64()) {
                    g.add_edge((x, i as u32), (x, j as u32));
                }
            }
        }
        // Message edges from the receiver's perspective:
        // receive_message(x, y, m, i) means y's node at i-1 sent to x's
        // node at i.
        if let Some(rel) = db.relation("receive_message") {
            for t in rel.scan() {
                if let (Some(x), Some(y), Some(i)) = (t[0].as_id(), t[1].as_id(), t[3].as_i64()) {
                    if i > 0 && y != u64::MAX {
                        g.add_edge((y, i as u32 - 1), (x, i as u32));
                    }
                }
            }
        }
        // And from the sender's perspective:
        // send_message(x, y, m, i) means x's node at i sent to y at i+1.
        if let Some(rel) = db.relation("send_message") {
            for t in rel.scan() {
                if let (Some(x), Some(y), Some(i)) = (t[0].as_id(), t[1].as_id(), t[3].as_i64()) {
                    g.add_edge((x, i as u32), (y, i as u32 + 1));
                }
            }
        }
        g
    }

    /// Add a node (idempotent); returns its index.
    pub fn add_node(&mut self, n: ProvNode) -> usize {
        if let Some(&i) = self.index.get(&n) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(n);
        self.index.insert(n, i);
        self.out.push(Vec::new());
        self.incoming.push(Vec::new());
        i
    }

    /// Add an edge, creating endpoints as needed (message edges may point
    /// at nodes the capture didn't record as active — e.g. a receiver
    /// that halted; we keep them, matching Figure 3 where x at i+1
    /// appears even though it does not update).
    pub fn add_edge(&mut self, from: ProvNode, to: ProvNode) {
        let f = self.add_node(from);
        let t = self.add_node(to);
        if !self.out[f].contains(&t) {
            self.out[f].push(t);
            self.incoming[t].push(f);
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// The nodes.
    pub fn nodes(&self) -> &[ProvNode] {
        &self.nodes
    }

    /// Successors of a node.
    pub fn successors(&self, n: ProvNode) -> Vec<ProvNode> {
        match self.index.get(&n) {
            Some(&i) => self.out[i].iter().map(|&j| self.nodes[j]).collect(),
            None => Vec::new(),
        }
    }

    /// Layer decomposition per Definition 5.1: L0 is the set of leaves
    /// (no incoming edges); L_{i} the leaves after removing earlier
    /// layers. Returns `None` if the graph has a cycle (which a valid
    /// provenance graph cannot).
    pub fn layers(&self) -> Option<Layers> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = self.incoming.iter().map(Vec::len).collect();
        let mut level = vec![usize::MAX; n];
        let mut frontier: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        let mut levels: Vec<Vec<usize>> = Vec::new();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &i in &frontier {
                level[i] = levels.len();
                seen += 1;
                for &j in &self.out[i] {
                    indeg[j] -= 1;
                    if indeg[j] == 0 {
                        next.push(j);
                    }
                }
            }
            levels.push(std::mem::take(&mut frontier));
            frontier = next;
        }
        if seen != n {
            return None; // cycle
        }
        Some(Layers {
            levels,
            level,
            nodes: self.nodes.clone(),
        })
    }
}

/// A layer decomposition of an [`UnfoldedGraph`].
#[derive(Clone, Debug)]
pub struct Layers {
    levels: Vec<Vec<usize>>,
    level: Vec<usize>,
    nodes: Vec<ProvNode>,
}

impl Layers {
    /// Number of layers (n + 1 for an n-superstep analytic, §5.1).
    pub fn num_layers(&self) -> usize {
        self.levels.len()
    }

    /// The nodes of layer `i`.
    pub fn layer(&self, i: usize) -> Vec<ProvNode> {
        self.levels
            .get(i)
            .map(|idxs| idxs.iter().map(|&j| self.nodes[j]).collect())
            .unwrap_or_default()
    }

    /// The layer a node belongs to.
    pub fn layer_of(&self, n: ProvNode) -> Option<usize> {
        self.nodes
            .iter()
            .position(|&m| m == n)
            .map(|i| self.level[i])
    }

    /// Check the layers form a partition of the node set.
    pub fn is_partition(&self) -> bool {
        let total: usize = self.levels.iter().map(Vec::len).sum();
        total == self.nodes.len() && self.level.iter().all(|&l| l != usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_pql::Value;

    /// The running example of Figure 3: y sends to x at i-1; x updates at
    /// i and sends to z; z receives at i+1 without updating.
    fn figure3() -> UnfoldedGraph {
        let mut db = Database::new();
        let step = |x: u64, i: i64| vec![Value::Id(x), Value::Int(i)];
        db.insert("superstep", step(1, 0)); // y at i-1
        db.insert("superstep", step(0, 1)); // x at i
        db.insert(
            "receive_message",
            vec![Value::Id(0), Value::Id(1), Value::Float(1.0), Value::Int(1)],
        );
        db.insert(
            "send_message",
            vec![Value::Id(0), Value::Id(2), Value::Float(2.0), Value::Int(1)],
        );
        UnfoldedGraph::from_database(&db)
    }

    #[test]
    fn builds_figure3_shape() {
        let g = figure3();
        // Nodes: (1,0), (0,1), (2,2) — receiver z materialized by the edge.
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.successors((1, 0)), vec![(0, 1)]);
        assert_eq!(g.successors((0, 1)), vec![(2, 2)]);
    }

    #[test]
    fn layers_match_supersteps() {
        let g = figure3();
        let layers = g.layers().unwrap();
        assert_eq!(layers.num_layers(), 3);
        assert!(layers.is_partition());
        assert_eq!(layers.layer(0), vec![(1, 0)]);
        assert_eq!(layers.layer_of((0, 1)), Some(1));
        assert_eq!(layers.layer_of((2, 2)), Some(2));
    }

    #[test]
    fn evolution_edges_connect_instances() {
        let mut g = UnfoldedGraph::default();
        g.add_edge((5, 0), (5, 2));
        g.add_edge((5, 2), (5, 3));
        assert_eq!(g.num_nodes(), 3);
        let layers = g.layers().unwrap();
        assert_eq!(layers.num_layers(), 3);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = UnfoldedGraph::default();
        g.add_edge((1, 0), (2, 1));
        g.add_edge((1, 0), (2, 1));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn cycle_detected() {
        let mut g = UnfoldedGraph::default();
        g.add_edge((1, 0), (2, 1));
        g.add_edge((2, 1), (1, 0)); // impossible in real provenance
        assert!(g.layers().is_none());
    }

    #[test]
    fn combined_sources_skipped() {
        let mut db = Database::new();
        db.insert(
            "receive_message",
            vec![
                Value::Id(0),
                Value::Id(u64::MAX), // combiner sentinel
                Value::Float(1.0),
                Value::Int(1),
            ],
        );
        let g = UnfoldedGraph::from_database(&db);
        assert_eq!(g.num_edges(), 0);
    }
}
