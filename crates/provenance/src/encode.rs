//! Encoding analytic data as PQL values.
//!
//! Ariadne's provenance representation "is independent of the native
//! language specifying the graph analytic" (§1): whatever the vertex
//! value and message types are, they enter the provenance graph as
//! [`Value`]s via this trait.

use ariadne_pql::Value;

/// Conversion of analytic-side data into PQL values.
pub trait ProvEncode {
    /// Encode into a [`Value`].
    fn encode(&self) -> Value;
}

impl ProvEncode for f64 {
    fn encode(&self) -> Value {
        Value::Float(*self)
    }
}

impl ProvEncode for f32 {
    fn encode(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl ProvEncode for u64 {
    fn encode(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl ProvEncode for i64 {
    fn encode(&self) -> Value {
        Value::Int(*self)
    }
}

impl ProvEncode for u32 {
    fn encode(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl ProvEncode for i32 {
    fn encode(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl ProvEncode for bool {
    fn encode(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ProvEncode for () {
    fn encode(&self) -> Value {
        Value::Unit
    }
}

impl ProvEncode for String {
    fn encode(&self) -> Value {
        Value::str(self)
    }
}

impl ProvEncode for Vec<f64> {
    fn encode(&self) -> Value {
        Value::floats(self)
    }
}

impl ProvEncode for Value {
    fn encode(&self) -> Value {
        self.clone()
    }
}

impl<T: ProvEncode> ProvEncode for &T {
    fn encode(&self) -> Value {
        (*self).encode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_encodings() {
        assert_eq!(1.5f64.encode(), Value::Float(1.5));
        assert_eq!(3u64.encode(), Value::Int(3));
        assert_eq!(true.encode(), Value::Bool(true));
        assert_eq!(().encode(), Value::Unit);
        assert_eq!("hi".to_string().encode(), Value::str("hi"));
    }

    #[test]
    fn vector_encoding() {
        assert_eq!(vec![1.0, 2.0].encode(), Value::floats(&[1.0, 2.0]));
    }

    #[test]
    fn reference_passthrough() {
        let v = 2.0f64;
        assert_eq!(v.encode(), Value::Float(2.0));
    }
}
