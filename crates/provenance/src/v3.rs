//! On-disk structures of the **v3** segment format: indexed file
//! footers, the spool-level `index.ars` manifest, generation-stamped
//! compaction file names, and the LZ-compressed record payload.
//!
//! # Layout
//!
//! A compacted generation file (`gen-{G}-{seq}.ars3`) is a run of
//! ordinary checksummed record frames — one per (superstep, predicate)
//! *extent* — followed by a CRC-protected footer:
//!
//! ```text
//! +------------------+------------------+-----+---------------------------------+
//! | extent: key A    | extent: key B    | ... | footer payload | crc | len |"ARS3"|
//! +------------------+------------------+-----+---------------------------------+
//! ```
//!
//! The footer records, per extent, the (superstep, predicate) key, the
//! byte range of its frames, and its tuple/record counts, so a resume
//! registers every extent **without reading a single frame** and layer
//! reads seek straight to the matching extent instead of scanning the
//! file. The trailer is parsed backwards from end-of-file: 4 magic
//! bytes, a `u32` payload length, a `u32` CRC over the payload. Any bit
//! flip — in the payload, the CRC, the length, or the magic — fails
//! validation.
//!
//! The spool-level manifest (`index.ars`) names the live generation
//! files (with their footer entries mirrored for O(log n) lookup), the
//! legacy files the compaction superseded (deleted only after the
//! manifest rename lands — resume completes the deletion if a crash
//! interrupted it), and keys whose generation file was quarantined by a
//! scrub repair. The manifest is advisory in one direction only: a
//! generation file not listed in a valid manifest is an orphan of an
//! interrupted compaction and is removed at resume; the footers inside
//! listed files remain the authority for extents and are what a scrub
//! repair rebuilds a damaged manifest from.
//!
//! # Compressed records
//!
//! v3 introduces a third record frame, `"ARSZ"`/`"ZSRA"`, stacking an
//! LZ block (see the vendored `minilz` crate) *under* the existing
//! per-column encodings: the payload is a 1-byte inner version tag (1 =
//! row-major, 2 = columnar), a `u32` raw length, and the compressed
//! bytes of the inner payload. The frame CRC covers the compressed
//! form, so corruption is detected before any decompression; the raw
//! length is bounded by [`V3_MAX_RAW`] so a corrupt length can never
//! balloon allocation. Writers use the compressed frame only when it is
//! strictly smaller than the plain one.

use ariadne_vc::checkpoint::crc32;

/// Magic closing a v3 indexed footer (the last 4 bytes of a generation
/// file).
pub const FOOTER_MAGIC: [u8; 4] = *b"ARS3";
/// Magic opening the spool manifest `index.ars`.
pub const MANIFEST_MAGIC: [u8; 4] = *b"ARSM";
/// Manifest format version byte.
pub const MANIFEST_VERSION: u8 = 1;
/// File name of the spool-level manifest.
pub const MANIFEST_NAME: &str = "index.ars";
/// Upper bound on the decompressed size of one v3 record payload: a
/// corrupt raw-length field is rejected before any allocation.
pub const V3_MAX_RAW: usize = 1 << 26;
/// Trailer size appended after the footer payload: crc + len + magic.
const FOOTER_TRAILER: usize = 4 + 4 + 4;

/// One (superstep, predicate) extent recorded in a generation file's
/// footer: where its record frames live and what they hold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FooterEntry {
    /// The provenance layer (= superstep) of the extent.
    pub superstep: u32,
    /// The predicate whose tuples the extent holds.
    pub pred: String,
    /// Byte offset of the extent's first frame within the file.
    pub offset: u64,
    /// Byte length of the extent (whole frames only).
    pub len: u64,
    /// Tuples encoded across the extent's frames.
    pub tuples: u64,
    /// Record frames in the extent.
    pub records: u32,
}

/// One live generation file listed in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenFileInfo {
    /// File name within the spool directory (`gen-{G}-{seq}.ars3`).
    pub name: String,
    /// Expected file size in bytes (footer included) — a cheap
    /// truncation tripwire checked at resume before trusting extents.
    pub size: u64,
    /// The file's footer entries, mirrored for metadata-only lookup.
    pub entries: Vec<FooterEntry>,
}

/// A (superstep, predicate) key whose compacted bytes were quarantined,
/// with the quarantine file name holding them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LostKey {
    /// The superstep of the lost layer extent.
    pub superstep: u32,
    /// The predicate of the lost extent.
    pub pred: String,
    /// File name under `quarantine/` holding the condemned bytes.
    pub quarantine: String,
}

/// The decoded spool manifest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic compaction generation; the next compaction writes
    /// `generation + 1`.
    pub generation: u64,
    /// Live generation files, in write order.
    pub live: Vec<GenFileInfo>,
    /// Legacy spool file names this generation superseded; deleted
    /// after the manifest rename (resume completes interrupted
    /// deletions).
    pub superseded: Vec<String>,
    /// Keys whose generation extents were quarantined by a scrub
    /// repair; strict reads of their layers must fail typed.
    pub lost: Vec<LostKey>,
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.data.len() - self.pos < n {
            return Err(format!(
                "truncated structure: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.data.len() - self.pos
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 name".to_string())
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

fn put_entry(buf: &mut Vec<u8>, e: &FooterEntry) {
    buf.extend_from_slice(&e.superstep.to_le_bytes());
    put_str(buf, &e.pred);
    buf.extend_from_slice(&e.offset.to_le_bytes());
    buf.extend_from_slice(&e.len.to_le_bytes());
    buf.extend_from_slice(&e.tuples.to_le_bytes());
    buf.extend_from_slice(&e.records.to_le_bytes());
}

fn read_entry(c: &mut Cursor<'_>) -> Result<FooterEntry, String> {
    Ok(FooterEntry {
        superstep: c.u32()?,
        pred: c.str()?,
        offset: c.u64()?,
        len: c.u64()?,
        tuples: c.u64()?,
        records: c.u32()?,
    })
}

/// Serialize `entries` into the footer block appended after a
/// generation file's record frames (payload, CRC, length, magic).
pub fn encode_footer(entries: &[FooterEntry]) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        put_entry(&mut payload, e);
    }
    let mut out = payload.clone();
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&FOOTER_MAGIC);
    out
}

/// Parse the footer block from the tail of a generation file's bytes.
/// Returns the entries and the offset where record frames end (= where
/// the footer payload begins). Every byte of the trailer is load-
/// bearing: a flipped magic, length, CRC, or payload byte all fail.
pub fn parse_footer(data: &[u8]) -> Result<(Vec<FooterEntry>, usize), String> {
    if data.len() < FOOTER_TRAILER {
        return Err(format!("file too short for a v3 footer ({} bytes)", data.len()));
    }
    if data[data.len() - 4..] != FOOTER_MAGIC {
        return Err("bad footer magic".into());
    }
    let len_at = data.len() - 8;
    let payload_len = u32::from_le_bytes(data[len_at..len_at + 4].try_into().unwrap()) as usize;
    if payload_len + FOOTER_TRAILER > data.len() {
        return Err(format!(
            "footer payload length {payload_len} overruns the {}-byte file",
            data.len()
        ));
    }
    let payload_start = data.len() - FOOTER_TRAILER - payload_len;
    let payload = &data[payload_start..payload_start + payload_len];
    let stored_crc = u32::from_le_bytes(data[len_at - 4..len_at].try_into().unwrap());
    let actual = crc32(payload);
    if stored_crc != actual {
        return Err(format!(
            "footer CRC mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
        ));
    }
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    if count > payload.len() {
        return Err(format!("footer claims {count} entries in {payload_len} bytes"));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(read_entry(&mut c)?);
    }
    if !c.done() {
        return Err("trailing bytes after footer entries".into());
    }
    // Entries must describe frame ranges inside the record region.
    let region_end = payload_start as u64;
    for e in &entries {
        let end = e.offset.checked_add(e.len);
        if end.is_none() || end.unwrap() > region_end {
            return Err(format!(
                "footer extent {}..{:?} overruns the {region_end}-byte record region",
                e.offset, end
            ));
        }
    }
    Ok((entries, payload_start))
}

/// Serialize a [`Manifest`] into the full `index.ars` file bytes
/// (magic, version, CRC, payload).
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&m.generation.to_le_bytes());
    payload.extend_from_slice(&(m.live.len() as u32).to_le_bytes());
    for f in &m.live {
        put_str(&mut payload, &f.name);
        payload.extend_from_slice(&f.size.to_le_bytes());
        payload.extend_from_slice(&(f.entries.len() as u32).to_le_bytes());
        for e in &f.entries {
            put_entry(&mut payload, e);
        }
    }
    payload.extend_from_slice(&(m.superseded.len() as u32).to_le_bytes());
    for s in &m.superseded {
        put_str(&mut payload, s);
    }
    payload.extend_from_slice(&(m.lost.len() as u32).to_le_bytes());
    for l in &m.lost {
        payload.extend_from_slice(&l.superstep.to_le_bytes());
        put_str(&mut payload, &l.pred);
        put_str(&mut payload, &l.quarantine);
    }
    let mut out = Vec::with_capacity(payload.len() + 9);
    out.extend_from_slice(&MANIFEST_MAGIC);
    out.push(MANIFEST_VERSION);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parse `index.ars` bytes back into a [`Manifest`]. Any bit flip in
/// the magic, version, CRC, or payload fails.
pub fn parse_manifest(data: &[u8]) -> Result<Manifest, String> {
    if data.len() < 9 {
        return Err(format!("manifest too short ({} bytes)", data.len()));
    }
    if data[..4] != MANIFEST_MAGIC {
        return Err("bad manifest magic".into());
    }
    if data[4] != MANIFEST_VERSION {
        return Err(format!("unknown manifest version {}", data[4]));
    }
    let stored_crc = u32::from_le_bytes(data[5..9].try_into().unwrap());
    let payload = &data[9..];
    let actual = crc32(payload);
    if stored_crc != actual {
        return Err(format!(
            "manifest CRC mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
        ));
    }
    let mut c = Cursor::new(payload);
    let generation = c.u64()?;
    let live_count = c.u32()? as usize;
    if live_count > payload.len() {
        return Err(format!("manifest claims {live_count} live files"));
    }
    let mut live = Vec::with_capacity(live_count);
    for _ in 0..live_count {
        let name = c.str()?;
        let size = c.u64()?;
        let entry_count = c.u32()? as usize;
        if entry_count > payload.len() {
            return Err(format!("manifest claims {entry_count} entries"));
        }
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            entries.push(read_entry(&mut c)?);
        }
        live.push(GenFileInfo { name, size, entries });
    }
    let superseded_count = c.u32()? as usize;
    if superseded_count > payload.len() {
        return Err(format!("manifest claims {superseded_count} superseded files"));
    }
    let mut superseded = Vec::with_capacity(superseded_count);
    for _ in 0..superseded_count {
        superseded.push(c.str()?);
    }
    let lost_count = c.u32()? as usize;
    if lost_count > payload.len() {
        return Err(format!("manifest claims {lost_count} lost keys"));
    }
    let mut lost = Vec::with_capacity(lost_count);
    for _ in 0..lost_count {
        lost.push(LostKey {
            superstep: c.u32()?,
            pred: c.str()?,
            quarantine: c.str()?,
        });
    }
    if !c.done() {
        return Err("trailing bytes after manifest payload".into());
    }
    Ok(Manifest {
        generation,
        live,
        superseded,
        lost,
    })
}

/// The spool file name of compaction generation `generation`, sequence
/// `seq`.
pub fn gen_file_name(generation: u64, seq: u32) -> String {
    format!("gen-{generation}-{seq}.ars3")
}

/// Parse a generation file name back into (generation, seq); `None` for
/// anything else (including `.tmp` leftovers).
pub fn parse_gen_name(name: &str) -> Option<(u64, u32)> {
    let stem = name.strip_prefix("gen-")?.strip_suffix(".ars3")?;
    let (generation, seq) = stem.split_once('-')?;
    Some((generation.parse().ok()?, seq.parse().ok()?))
}

/// Build a v3 compressed record payload wrapping `raw` (an inner v1 or
/// v2 record payload, tagged by `inner_version`). Returns `None` when
/// compression does not strictly win — the caller then frames the raw
/// payload in its native v1/v2 frame instead.
pub fn make_compressed_payload(inner_version: u8, raw: &[u8]) -> Option<Vec<u8>> {
    debug_assert!(inner_version == 1 || inner_version == 2);
    let packed = minilz::compress(raw);
    if packed.len() + 5 >= raw.len() {
        return None;
    }
    let mut out = Vec::with_capacity(packed.len() + 5);
    out.push(inner_version);
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    out.extend_from_slice(&packed);
    Some(out)
}

/// Decode a v3 compressed record payload back into its inner version
/// tag and raw payload bytes. Bounded by [`V3_MAX_RAW`].
pub fn decode_compressed_payload(payload: &[u8]) -> Result<(u8, Vec<u8>), String> {
    if payload.len() < 5 {
        return Err(format!("compressed payload too short ({} bytes)", payload.len()));
    }
    let inner = payload[0];
    if inner != 1 && inner != 2 {
        return Err(format!("unknown inner record version {inner}"));
    }
    let raw_len = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
    if raw_len > V3_MAX_RAW {
        return Err(format!("raw length {raw_len} exceeds the {V3_MAX_RAW} bound"));
    }
    let raw = minilz::decompress(&payload[5..], raw_len)
        .map_err(|e| format!("LZ decompression failed: {e}"))?;
    if raw.len() != raw_len {
        return Err(format!(
            "decompressed to {} bytes, header claimed {raw_len}",
            raw.len()
        ));
    }
    Ok((inner, raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<FooterEntry> {
        vec![
            FooterEntry {
                superstep: 0,
                pred: "value".into(),
                offset: 0,
                len: 100,
                tuples: 12,
                records: 1,
            },
            FooterEntry {
                superstep: 3,
                pred: "msg".into(),
                offset: 100,
                len: 40,
                tuples: 4,
                records: 2,
            },
        ]
    }

    #[test]
    fn footer_roundtrip_and_bit_flip_detection() {
        let entries = sample_entries();
        let mut file = vec![0xAB; 140]; // stand-in record region
        file.extend_from_slice(&encode_footer(&entries));
        let (parsed, region_end) = parse_footer(&file).unwrap();
        assert_eq!(parsed, entries);
        assert_eq!(region_end, 140);

        let footer_start = 140;
        for i in footer_start..file.len() {
            for bit in 0..8 {
                let mut bad = file.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    parse_footer(&bad).is_err(),
                    "flip of bit {bit} at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn footer_rejects_overrunning_extents() {
        let entries = vec![FooterEntry {
            superstep: 0,
            pred: "p".into(),
            offset: 50,
            len: 100,
            tuples: 1,
            records: 1,
        }];
        let mut file = vec![0u8; 60];
        file.extend_from_slice(&encode_footer(&entries));
        assert!(parse_footer(&file).unwrap_err().contains("overruns"));
    }

    #[test]
    fn manifest_roundtrip_and_bit_flip_detection() {
        let m = Manifest {
            generation: 7,
            live: vec![GenFileInfo {
                name: gen_file_name(7, 0),
                size: 1234,
                entries: sample_entries(),
            }],
            superseded: vec!["seg-0-value.bin".into(), "seg-3-msg.seal".into()],
            lost: vec![LostKey {
                superstep: 9,
                pred: "value".into(),
                quarantine: "gen-5-0.ars3".into(),
            }],
        };
        let bytes = encode_manifest(&m);
        assert_eq!(parse_manifest(&bytes).unwrap(), m);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    parse_manifest(&bad).is_err(),
                    "flip of bit {bit} at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn gen_name_roundtrip() {
        assert_eq!(parse_gen_name(&gen_file_name(12, 3)), Some((12, 3)));
        assert_eq!(parse_gen_name("gen-1-0.ars3.tmp"), None);
        assert_eq!(parse_gen_name("seg-1-value.bin"), None);
        assert_eq!(parse_gen_name("index.ars"), None);
    }

    #[test]
    fn compressed_payload_roundtrip() {
        let raw = b"layer-layer-layer-layer-layer-layer-layer-layer-".repeat(8);
        let payload = make_compressed_payload(2, &raw).expect("repetitive input compresses");
        assert!(payload.len() < raw.len());
        let (inner, back) = decode_compressed_payload(&payload).unwrap();
        assert_eq!(inner, 2);
        assert_eq!(back, raw);
    }

    #[test]
    fn incompressible_payload_declines() {
        let mut state = 0x8765_4321u64;
        let raw: Vec<u8> = (0..256)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        assert!(make_compressed_payload(2, &raw).is_none());
    }

    #[test]
    fn compressed_payload_bounds_raw_length() {
        let mut payload = vec![2u8];
        payload.extend_from_slice(&(u32::MAX).to_le_bytes());
        payload.extend_from_slice(&[0x00, 0xFF]);
        assert!(decode_compressed_payload(&payload)
            .unwrap_err()
            .contains("bound"));
    }
}
