//! Compact binary serialization of PQL tuples for spilled segments.
//!
//! Format, little-endian throughout:
//!
//! ```text
//! tuple   := u32 len, value*
//! value   := tag u8, payload
//!   0x00 Id      u64
//!   0x01 Int     i64
//!   0x02 Float   f64 bits
//!   0x03 Bool    u8
//!   0x04 Str     u32 len, utf8 bytes
//!   0x05 List    u32 len, value*
//!   0x06 Unit
//! ```

use ariadne_pql::{Tuple, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::Arc;

/// Serialization/deserialization errors.
#[derive(Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended mid-value.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// String payload was not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::BadTag(t) => write!(f, "unknown value tag {t:#x}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append one value to `buf`.
pub fn write_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Id(x) => {
            buf.put_u8(0x00);
            buf.put_u64_le(*x);
        }
        Value::Int(x) => {
            buf.put_u8(0x01);
            buf.put_i64_le(*x);
        }
        Value::Float(x) => {
            buf.put_u8(0x02);
            buf.put_u64_le(x.to_bits());
        }
        Value::Bool(x) => {
            buf.put_u8(0x03);
            buf.put_u8(u8::from(*x));
        }
        Value::Str(s) => {
            buf.put_u8(0x04);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::List(items) => {
            buf.put_u8(0x05);
            buf.put_u32_le(items.len() as u32);
            for item in items.iter() {
                write_value(buf, item);
            }
        }
        Value::Unit => buf.put_u8(0x06),
    }
}

/// Read one value from `buf`.
pub fn read_value(buf: &mut Bytes) -> Result<Value, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::Truncated);
    }
    let tag = buf.get_u8();
    Ok(match tag {
        0x00 => Value::Id(get_u64(buf)?),
        0x01 => Value::Int(get_u64(buf)? as i64),
        0x02 => Value::Float(f64::from_bits(get_u64(buf)?)),
        0x03 => {
            if !buf.has_remaining() {
                return Err(CodecError::Truncated);
            }
            Value::Bool(buf.get_u8() != 0)
        }
        0x04 => {
            let len = get_u32(buf)? as usize;
            if buf.remaining() < len {
                return Err(CodecError::Truncated);
            }
            let bytes = buf.copy_to_bytes(len);
            let s = std::str::from_utf8(&bytes).map_err(|_| CodecError::BadUtf8)?;
            Value::str(s)
        }
        0x05 => {
            let len = get_u32(buf)? as usize;
            let mut items = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                items.push(read_value(buf)?);
            }
            Value::List(Arc::new(items))
        }
        0x06 => Value::Unit,
        other => return Err(CodecError::BadTag(other)),
    })
}

/// Advance past one value without materializing it (column-masked reads
/// of row-major v1 records).
pub fn skip_value(buf: &mut Bytes) -> Result<(), CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::Truncated);
    }
    let tag = buf.get_u8();
    match tag {
        0x00..=0x02 => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            buf.advance(8);
        }
        0x03 => {
            if !buf.has_remaining() {
                return Err(CodecError::Truncated);
            }
            buf.advance(1);
        }
        0x04 => {
            let len = get_u32(buf)? as usize;
            if buf.remaining() < len {
                return Err(CodecError::Truncated);
            }
            buf.advance(len);
        }
        0x05 => {
            let len = get_u32(buf)? as usize;
            for _ in 0..len {
                skip_value(buf)?;
            }
        }
        0x06 => {}
        other => return Err(CodecError::BadTag(other)),
    }
    Ok(())
}

/// Serialize a batch of tuples.
pub fn encode_tuples(tuples: &[Tuple]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(tuples.len() as u32);
    for t in tuples {
        buf.put_u32_le(t.len() as u32);
        for v in t {
            write_value(&mut buf, v);
        }
    }
    buf.freeze()
}

/// Deserialize a batch of tuples.
pub fn decode_tuples(data: Bytes) -> Result<Vec<Tuple>, CodecError> {
    decode_tuples_masked(data, None)
}

/// Deserialize a batch of tuples, optionally applying a keep-mask in
/// column order: positions whose mask entry is `false` are skipped via
/// [`skip_value`] (never materialized) and decode as [`Value::Unit`],
/// preserving arity and row order. Positions past the end of the mask
/// are kept.
pub fn decode_tuples_masked(
    mut data: Bytes,
    mask: Option<&[bool]>,
) -> Result<Vec<Tuple>, CodecError> {
    let count = get_u32(&mut data)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let arity = get_u32(&mut data)? as usize;
        let mut tuple = Vec::with_capacity(arity.min(64));
        for col in 0..arity {
            let keep = mask.is_none_or(|m| m.get(col).copied().unwrap_or(true));
            if keep {
                tuple.push(read_value(&mut data)?);
            } else {
                skip_value(&mut data)?;
                tuple.push(Value::Unit);
            }
        }
        out.push(tuple);
    }
    Ok(out)
}

fn get_u64(buf: &mut Bytes) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn get_u32(buf: &mut Bytes) -> Result<u32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u32_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(tuples: Vec<Tuple>) {
        let encoded = encode_tuples(&tuples);
        let decoded = decode_tuples(encoded).unwrap();
        assert_eq!(tuples, decoded);
    }

    #[test]
    fn roundtrips_all_value_kinds() {
        roundtrip(vec![
            vec![
                Value::Id(7),
                Value::Int(-3),
                Value::Float(1.5),
                Value::Bool(true),
                Value::str("hello"),
                Value::floats(&[1.0, 2.0]),
                Value::Unit,
            ],
            vec![Value::Float(f64::INFINITY)],
            vec![Value::Float(f64::NAN)], // NaN survives via bit pattern
        ]);
    }

    #[test]
    fn roundtrips_empty() {
        roundtrip(vec![]);
        roundtrip(vec![vec![]]);
    }

    #[test]
    fn nested_lists() {
        roundtrip(vec![vec![Value::List(Arc::new(vec![
            Value::floats(&[1.0]),
            Value::str("x"),
        ]))]]);
    }

    #[test]
    fn truncation_detected() {
        let enc = encode_tuples(&[vec![Value::Int(1)]]);
        for cut in 0..enc.len() - 1 {
            let sliced = enc.slice(0..cut);
            assert!(decode_tuples(sliced).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bad_tag_detected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u32_le(1);
        buf.put_u8(0xFF);
        assert_eq!(
            decode_tuples(buf.freeze()),
            Err(CodecError::BadTag(0xFF))
        );
    }
}
