//! The provenance data layer (§3 of the paper).
//!
//! * [`encode`] — converting analytic vertex values and messages into PQL
//!   [`ariadne_pql::Value`]s.
//! * [`edb`] — generating the provenance EDB tuples of Table 1 from one
//!   vertex-superstep of execution (the *compact representation*: tuples
//!   annotating input-graph vertices rather than an unfolded node per
//!   vertex-superstep).
//! * [`store`] — the captured-provenance store: per-superstep segments,
//!   byte accounting for Tables 3–4, and spill-to-disk with an async
//!   writer thread (the paper's asynchronous HDFS offload).
//! * [`unfold`] — materializing the *unfolded* provenance graph (a node
//!   per vertex-superstep, evolution and message edges) and its layer
//!   decomposition (Definition 5.1), used by the naive mode and by tests
//!   that check compact ≡ unfolded.
//! * [`codec`] — a compact binary serialization of tuples for spilled
//!   segments (the v1 row-major record payload).
//! * [`columnar`] — the v2 columnar record payload: per-column
//!   [`columnar::Encoding`]s (delta+varint, dictionary, raw floats)
//!   chosen by a stats pass at pack time, with skippable column blocks
//!   for column-selective replay reads.
//! * [`v3`] — the v3 on-disk structures: LZ-compressed record frames,
//!   indexed generation-file footers, and the spool manifest published
//!   by [`store::ProvStore::compact`].
//! * [`reader`] — pluggable segment read backends (buffered default,
//!   zero-copy mmap opt-in).

#![warn(missing_docs)]

pub mod codec;
pub mod columnar;
pub mod edb;
pub mod epoch;
pub mod encode;
pub mod reader;
pub mod store;
pub mod unfold;
pub mod v3;

pub use columnar::{ColumnStat, Encoding};
pub use edb::{static_graph_edbs, EdbTracker, VertexStepRecord};
pub use epoch::{EpochInfo, EpochStats};
pub use encode::ProvEncode;
pub use reader::{ReadBackend, SegmentSlice};
pub use store::{
    compact_spool, scrub_spool, CompactReport, Degradation, Durability, LayerFilter, LayerRead,
    OnSpillError, ProvStore, ReadPolicy, ScrubAction, ScrubReport, SegmentDamage, SegmentFormat,
    SegmentInfo, StoreConfig, StoreError, StoreSender, StoreWriter,
};
pub use unfold::{Layers, UnfoldedGraph};
