//! The provenance data layer (§3 of the paper).
//!
//! * [`encode`] — converting analytic vertex values and messages into PQL
//!   [`ariadne_pql::Value`]s.
//! * [`edb`] — generating the provenance EDB tuples of Table 1 from one
//!   vertex-superstep of execution (the *compact representation*: tuples
//!   annotating input-graph vertices rather than an unfolded node per
//!   vertex-superstep).
//! * [`store`] — the captured-provenance store: per-superstep segments,
//!   byte accounting for Tables 3–4, and spill-to-disk with an async
//!   writer thread (the paper's asynchronous HDFS offload).
//! * [`unfold`] — materializing the *unfolded* provenance graph (a node
//!   per vertex-superstep, evolution and message edges) and its layer
//!   decomposition (Definition 5.1), used by the naive mode and by tests
//!   that check compact ≡ unfolded.
//! * [`codec`] — a compact binary serialization of tuples for spilled
//!   segments.

pub mod codec;
pub mod edb;
pub mod encode;
pub mod store;
pub mod unfold;

pub use edb::{static_graph_edbs, EdbTracker, VertexStepRecord};
pub use encode::ProvEncode;
pub use store::{
    LayerRead, ProvStore, SegmentInfo, StoreConfig, StoreError, StoreSender, StoreWriter,
};
pub use unfold::{Layers, UnfoldedGraph};
