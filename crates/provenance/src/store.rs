//! The captured-provenance store.
//!
//! Captured tuples are grouped into **segments** keyed by (superstep,
//! predicate). Segments are held *serialized* (the [`crate::codec`]
//! binary format, length-delimited batches): ingestion pays the
//! serialization cost a real provenance store pays on its write path,
//! accounting reports the true stored size (Tables 3–4), and spilling a
//! segment to disk is a plain byte copy. When the in-memory encoded size
//! exceeds the budget, the largest segments spill to files in a spool
//! directory — the stand-in for the paper's asynchronous HDFS offload
//! ("When the provenance graph exceeds the size of available RAM, Ariadne
//! offloads it asynchronously", §6.1).
//!
//! [`StoreWriter`] wraps a store in a dedicated ingestion thread fed by a
//! channel, so capture never blocks the analytic's supersteps on
//! serialization or disk IO.
//!
//! Replay for layered evaluation decodes one superstep (= one provenance
//! layer) at a time, ascending for forward queries or descending for
//! backward ones (§5.1).

use crate::codec::{decode_tuples, encode_tuples};
use ariadne_pql::{Database, Tuple};
use crossbeam::channel::{unbounded, Sender};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::thread::JoinHandle;

/// Store configuration.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// In-memory budget in encoded bytes before segments spill.
    pub memory_budget: usize,
    /// Where spilled segments go; `None` disables spilling (the store
    /// then grows without bound, like the paper's failed ALS capture).
    pub spool_dir: Option<PathBuf>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            memory_budget: 256 << 20,
            spool_dir: None,
        }
    }
}

impl StoreConfig {
    /// An unbounded in-memory store (tests, small runs).
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// A store that spills past `budget` bytes into `dir`.
    pub fn spilling(budget: usize, dir: PathBuf) -> Self {
        StoreConfig {
            memory_budget: budget,
            spool_dir: Some(dir),
        }
    }
}

/// One (superstep, predicate) segment: encoded batches in memory plus an
/// optional spilled prefix on disk.
#[derive(Debug, Default)]
struct Segment {
    /// Length-delimited encoded batches.
    mem: Vec<u8>,
    mem_tuples: usize,
    disk: Option<DiskPart>,
}

#[derive(Debug)]
struct DiskPart {
    path: PathBuf,
    bytes: usize,
    tuples: usize,
}

/// The captured-provenance store.
#[derive(Debug, Default)]
pub struct ProvStore {
    config: StoreConfig,
    segments: BTreeMap<(u32, String), Segment>,
    mem_bytes: usize,
    disk_bytes: usize,
    tuples: usize,
    spills: usize,
}

impl ProvStore {
    /// Create a store.
    pub fn new(config: StoreConfig) -> Self {
        if let Some(dir) = &config.spool_dir {
            std::fs::create_dir_all(dir).expect("cannot create spool directory");
        }
        ProvStore {
            config,
            ..Default::default()
        }
    }

    /// Ingest a batch of tuples for (superstep, pred), serializing them.
    pub fn ingest(&mut self, superstep: u32, pred: &str, tuples: Vec<Tuple>) {
        if tuples.is_empty() {
            return;
        }
        let batch = encode_tuples(&tuples);
        let seg = self
            .segments
            .entry((superstep, pred.to_string()))
            .or_default();
        self.tuples += tuples.len();
        seg.mem_tuples += tuples.len();
        seg.mem
            .extend_from_slice(&(batch.len() as u64).to_le_bytes());
        seg.mem.extend_from_slice(&batch);
        self.mem_bytes += batch.len() + 8;
        self.maybe_spill();
    }

    fn maybe_spill(&mut self) {
        let Some(dir) = self.config.spool_dir.clone() else {
            return;
        };
        while self.mem_bytes > self.config.memory_budget {
            // Spill the largest in-memory segment.
            let key = match self
                .segments
                .iter()
                .filter(|(_, s)| !s.mem.is_empty())
                .max_by_key(|(_, s)| s.mem.len())
            {
                Some((k, _)) => k.clone(),
                None => return,
            };
            let seg = self.segments.get_mut(&key).expect("segment exists");
            let path = dir.join(format!("seg-{}-{}.bin", key.0, key.1));
            let mut file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .expect("cannot open spool file");
            file.write_all(&seg.mem).expect("cannot write spool file");
            let disk = seg.disk.get_or_insert(DiskPart {
                path,
                bytes: 0,
                tuples: 0,
            });
            disk.bytes += seg.mem.len();
            disk.tuples += seg.mem_tuples;
            self.disk_bytes += seg.mem.len();
            self.mem_bytes -= seg.mem.len();
            seg.mem = Vec::new();
            seg.mem_tuples = 0;
            self.spills += 1;
        }
    }

    /// All tuples of one provenance layer (= superstep), per predicate,
    /// decoding from memory and any spilled parts.
    pub fn layer(&self, superstep: u32) -> Vec<(String, Vec<Tuple>)> {
        let mut out = Vec::new();
        let range = (superstep, String::new())..(superstep + 1, String::new());
        for ((_, pred), seg) in self.segments.range(range) {
            let mut tuples = Vec::with_capacity(seg.mem_tuples);
            if let Some(disk) = &seg.disk {
                let mut data = Vec::with_capacity(disk.bytes);
                File::open(&disk.path)
                    .and_then(|mut f| f.read_to_end(&mut data))
                    .expect("cannot read spool file");
                decode_batches(&data, &mut tuples);
            }
            decode_batches(&seg.mem, &mut tuples);
            out.push((pred.clone(), tuples));
        }
        out
    }

    /// The largest captured superstep, if any.
    pub fn max_superstep(&self) -> Option<u32> {
        self.segments.keys().map(|(s, _)| *s).max()
    }

    /// Load everything into one database (centralized evaluation).
    pub fn to_database(&self) -> Database {
        let mut db = Database::new();
        if let Some(max) = self.max_superstep() {
            for s in 0..=max {
                for (pred, tuples) in self.layer(s) {
                    for t in tuples {
                        db.insert(&pred, t);
                    }
                }
            }
        }
        db
    }

    /// Total stored (encoded) bytes, memory + disk — the quantity in
    /// Tables 3 and 4.
    pub fn byte_size(&self) -> usize {
        self.mem_bytes + self.disk_bytes
    }

    /// Bytes currently spilled to disk.
    pub fn disk_bytes(&self) -> usize {
        self.disk_bytes
    }

    /// Number of spill operations performed.
    pub fn spills(&self) -> usize {
        self.spills
    }

    /// Total tuples captured.
    pub fn tuple_count(&self) -> usize {
        self.tuples
    }
}

/// Decode a concatenation of length-delimited batches.
fn decode_batches(data: &[u8], out: &mut Vec<Tuple>) {
    let mut off = 0usize;
    while off + 8 <= data.len() {
        let len = u64::from_le_bytes(data[off..off + 8].try_into().unwrap()) as usize;
        off += 8;
        let batch = bytes::Bytes::copy_from_slice(&data[off..off + len]);
        off += len;
        out.extend(decode_tuples(batch).expect("corrupt stored segment"));
    }
}

enum WriterMsg {
    Ingest {
        superstep: u32,
        pred: String,
        tuples: Vec<Tuple>,
    },
    Finish,
}

/// Asynchronous ingestion front-end: tuples are sent over a channel to a
/// writer thread owning the store, so the analytic's supersteps never
/// block on serialization or spill IO.
pub struct StoreWriter {
    sender: Sender<WriterMsg>,
    handle: JoinHandle<ProvStore>,
}

/// Cloneable ingestion handle usable from vertex programs.
#[derive(Clone)]
pub struct StoreSender {
    sender: Sender<WriterMsg>,
}

impl StoreSender {
    /// Queue a batch for ingestion.
    pub fn ingest(&self, superstep: u32, pred: &str, tuples: Vec<Tuple>) {
        if tuples.is_empty() {
            return;
        }
        self.sender
            .send(WriterMsg::Ingest {
                superstep,
                pred: pred.to_string(),
                tuples,
            })
            .expect("store writer thread died");
    }
}

impl StoreWriter {
    /// Spawn the writer thread.
    pub fn spawn(config: StoreConfig) -> Self {
        let (sender, receiver) = unbounded();
        let handle = std::thread::spawn(move || {
            let mut store = ProvStore::new(config);
            while let Ok(msg) = receiver.recv() {
                match msg {
                    WriterMsg::Ingest {
                        superstep,
                        pred,
                        tuples,
                    } => store.ingest(superstep, &pred, tuples),
                    WriterMsg::Finish => break,
                }
            }
            store
        });
        StoreWriter { sender, handle }
    }

    /// A cloneable ingestion handle.
    pub fn sender(&self) -> StoreSender {
        StoreSender {
            sender: self.sender.clone(),
        }
    }

    /// Drain the queue and return the finished store.
    pub fn finish(self) -> ProvStore {
        self.sender
            .send(WriterMsg::Finish)
            .expect("store writer thread died");
        self.handle.join().expect("store writer thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_pql::Value;

    fn tuple(v: u64, i: i64) -> Tuple {
        vec![Value::Id(v), Value::Int(i)]
    }

    #[test]
    fn ingest_and_layer_roundtrip() {
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store.ingest(0, "superstep", vec![tuple(1, 0), tuple(2, 0)]);
        store.ingest(1, "superstep", vec![tuple(1, 1)]);
        assert_eq!(store.tuple_count(), 3);
        assert_eq!(store.max_superstep(), Some(1));
        let l0 = store.layer(0);
        assert_eq!(l0.len(), 1);
        assert_eq!(l0[0].1.len(), 2);
        assert_eq!(store.layer(1)[0].1, vec![tuple(1, 1)]);
        assert!(store.layer(9).is_empty());
    }

    #[test]
    fn multiple_batches_per_segment() {
        let mut store = ProvStore::new(StoreConfig::in_memory());
        for k in 0..5 {
            store.ingest(0, "value", vec![tuple(k, 0)]);
        }
        let layer = store.layer(0);
        assert_eq!(layer[0].1.len(), 5);
        assert_eq!(layer[0].1[4], tuple(4, 0));
    }

    #[test]
    fn spilling_keeps_data_readable() {
        let dir = std::env::temp_dir().join(format!("ariadne-spill-{}", std::process::id()));
        let mut store = ProvStore::new(StoreConfig::spilling(64, dir.clone()));
        for s in 0..4u32 {
            store.ingest(s, "value", (0..20).map(|v| tuple(v, s as i64)).collect());
        }
        assert!(store.spills() > 0, "nothing spilled");
        assert!(store.disk_bytes() > 0);
        // All layers still fully readable.
        for s in 0..4u32 {
            let layer = store.layer(s);
            assert_eq!(layer[0].1.len(), 20, "layer {s}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spilled_segment_accepts_more_data() {
        let dir = std::env::temp_dir().join(format!("ariadne-spill2-{}", std::process::id()));
        let mut store = ProvStore::new(StoreConfig::spilling(32, dir.clone()));
        store.ingest(0, "value", (0..20).map(|v| tuple(v, 0)).collect());
        assert!(store.spills() > 0);
        // Same segment gets more tuples after spilling.
        store.ingest(0, "value", vec![tuple(99, 0)]);
        let layer = store.layer(0);
        assert_eq!(layer[0].1.len(), 21);
        assert!(layer[0].1.contains(&tuple(99, 0)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn to_database_loads_everything() {
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store.ingest(0, "superstep", vec![tuple(1, 0)]);
        store.ingest(
            2,
            "value",
            vec![vec![Value::Id(1), Value::Float(0.5), Value::Int(2)]],
        );
        let db = store.to_database();
        assert_eq!(db.len("superstep"), 1);
        assert_eq!(db.len("value"), 1);
    }

    #[test]
    fn writer_thread_roundtrip() {
        let writer = StoreWriter::spawn(StoreConfig::in_memory());
        let sender = writer.sender();
        let s2 = sender.clone();
        std::thread::spawn(move || {
            s2.ingest(0, "superstep", vec![tuple(7, 0)]);
        })
        .join()
        .unwrap();
        sender.ingest(1, "superstep", vec![tuple(7, 1)]);
        let store = writer.finish();
        assert_eq!(store.tuple_count(), 2);
    }

    #[test]
    fn byte_accounting_reports_encoded_size() {
        let mut store = ProvStore::new(StoreConfig::in_memory());
        let before = store.byte_size();
        store.ingest(
            0,
            "value",
            vec![vec![Value::Id(1), Value::str("payload"), Value::Int(0)]],
        );
        let after = store.byte_size();
        assert!(after > before);
        // Encoded size is compact: id (9) + str (5 + 7) + int (9) +
        // framing, well under 100 bytes.
        assert!(after - before < 100, "{}", after - before);
        store.ingest(0, "value", vec![]); // empty batch is a no-op
        assert_eq!(store.tuple_count(), 1);
    }
}
