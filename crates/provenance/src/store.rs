//! The captured-provenance store.
//!
//! Captured tuples are grouped into **segments** keyed by (superstep,
//! predicate). Segments are held *serialized* (the [`crate::codec`]
//! binary format wrapped in checksummed records): ingestion pays the
//! serialization cost a real provenance store pays on its write path,
//! accounting reports the true stored size (Tables 3–4), and spilling a
//! segment to disk is a plain byte copy. When the in-memory encoded size
//! exceeds the budget, the largest segments spill to files in a spool
//! directory — the stand-in for the paper's asynchronous HDFS offload
//! ("When the provenance graph exceeds the size of available RAM, Ariadne
//! offloads it asynchronously", §6.1).
//!
//! # Segment formats
//!
//! Three payload formats share the checksummed record framing,
//! dispatched by the record's **version byte** (the fourth magic byte):
//!
//! * **v1** (`"ARSG"` / `"GSRA"`): the row-major tagged encoding of
//!   [`crate::codec`] — one record per ingest batch.
//! * **v2** (`"ARS2"` / `"2SRA"`): the columnar encoding of
//!   [`crate::columnar`] — ingest batches accumulate in a per-segment
//!   *pending* buffer and are **packed** into one columnar record once
//!   [`PACK_THRESHOLD`] tuples arrive (or at spill/finish time), with a
//!   per-column [`Encoding`](crate::columnar::Encoding) chosen by a
//!   stats pass at pack time.
//! * **v3** (`"ARSZ"` / `"ZSRA"`): an LZ-compressed block (see
//!   [`crate::v3`]) stacked *under* the v2 per-column encodings — the
//!   payload is an inner version tag, the raw length, and the
//!   compressed inner payload. Writers emit the compressed frame only
//!   when it is strictly smaller than the plain one, so a v3 store
//!   degrades to v2 frames on incompressible data.
//!
//! [`StoreConfig::format`] selects the write format ([`SegmentFormat::V2`]
//! by default); **readers always accept every format**, record by
//! record, so a spool written by an older incarnation reopens under a
//! newer store and its segments decode unchanged — and a resumed
//! capture appends newer records after the sealed older ones in the
//! same logical segment.
//!
//! # Compaction and the v3 spool layout
//!
//! [`ProvStore::compact`] (and the offline [`compact_spool`] behind
//! `ariadne-cli compact`) merges every segment's spilled files and
//! in-memory records into **generation files** (`gen-{G}-{seq}.ars3`):
//! all of a (superstep, predicate) key's tuples re-encoded into few
//! large v3 records, laid out as one contiguous *extent* per key, with
//! a CRC-protected indexed footer (see [`crate::v3`]) mapping keys to
//! extents. A spool-level manifest (`index.ars`) names the live
//! generation files and the legacy files they superseded. The write
//! protocol is crash-recoverable at every step: generation file and
//! manifest both land via temp-file + fsync + atomic rename, and
//! superseded files are deleted only after the manifest rename — a
//! resume finds either the old generation (manifest not yet swapped;
//! orphaned `gen-*` files are removed) or the new one (manifest swapped;
//! interrupted deletions are completed). Layer reads of compacted keys
//! seek directly to the extent instead of scanning whole files, through
//! a pluggable [`ReadBackend`] (buffered by default, zero-copy mmap
//! opt-in).
//!
//! # Durability and recovery
//!
//! Every batch is framed as a **checksummed record** — a magic header,
//! the payload length, a CRC32 of the payload, and a footer magic:
//!
//! ```text
//! +--------+---------+----------------+---------+--------+
//! | "ARSG" | len u64 | CRC32(payload) | payload | "GSRA" |   v1 (row-major)
//! | "ARS2" | len u64 | CRC32(payload) | payload | "2SRA" |   v2 (columnar)
//! +--------+---------+----------------+---------+--------+
//! ```
//!
//! Corrupted records surface as typed [`StoreError::Corrupt`] values
//! naming the file — never a panic. The spool directory is created
//! lazily on the first spill, and spill IO failures carry the offending
//! path.
//!
//! The on-disk spool distinguishes two segment states. `seg-*.bin`
//! files are **unsealed append tails**: a crash can tear their final
//! record, so [`ProvStore::resume_from_spool`] *salvages* a torn tail —
//! the original bytes are backed up to a `.torn` sidecar, the file is
//! truncated back to the last record boundary, and the retained records
//! are counted as `store_salvaged_records`. `seg-*.seal` files are
//! **sealed segments** written only via temp-file + atomic rename under
//! [`Durability::Seal`]; they are either complete or absent, so any
//! damage inside one is real corruption and validation stays strict.
//! [`StoreConfig::durability`] selects how hard spills push bytes to
//! stable storage (no fsync, fsync-per-spill, or atomic sealed
//! rewrites); see [`Durability`] for the exact contract per level.
//!
//! [`ProvStore::scrub`] (and the standalone [`scrub_spool`] used by the
//! `ariadne scrub` CLI subcommand) re-verifies every record of every
//! segment and reports damage as a structured [`ScrubReport`]; with
//! `repair` enabled, torn tails are truncated and irrecoverable files
//! move into a `quarantine/` subdirectory. Layer reads take a
//! [`ReadPolicy`]: [`ReadPolicy::Strict`] fails on any damage (the
//! default), [`ReadPolicy::Degraded`] skips damaged records/segments
//! and reports exactly what was lost via [`Degradation`] — partial
//! results are always labelled, never silently wrong.
//!
//! After a crash, [`ProvStore::resume_from_spool`] re-attaches the
//! segment files a previous incarnation left behind (validating every
//! record) and marks them **sealed**: re-ingesting a sealed layer during
//! replay is an idempotent no-op, so a resumed capture run does not
//! duplicate already-persisted provenance.
//!
//! [`StoreWriter`] wraps a store in a dedicated ingestion thread fed by a
//! channel, so capture never blocks the analytic's supersteps on
//! serialization or disk IO; [`StoreWriter::finish`] drains the queue
//! with a timeout instead of joining unconditionally.
//!
//! Replay for layered evaluation decodes one superstep (= one provenance
//! layer) at a time, ascending for forward queries or descending for
//! backward ones (§5.1). [`ProvStore::layer_filtered`] restricts a layer
//! read to the predicates a compiled query actually references, skipping
//! the decode — and the disk read entirely — for irrelevant segments;
//! [`ProvStore::segment_index`] exposes the per-(superstep, predicate)
//! tuple/byte accounting that planning decisions (pruning, budgeting)
//! are made from.

use crate::codec::{decode_tuples_masked, encode_tuples, CodecError};
use crate::epoch::{self, EpochInfo, EpochStats};
use crate::columnar::{decode_columnar, encode_columnar, v1_batch_size, ColumnStat, MAX_DECODE_CELLS};
use crate::reader::{read_extent, ReadBackend, SegmentSlice};
use crate::v3::{self, FooterEntry, GenFileInfo, LostKey, Manifest};
use ariadne_obs::trace::{self, Level};
use ariadne_pql::{Database, Tuple, Value};
use ariadne_vc::checkpoint::crc32;
use ariadne_vc::FaultPlan;
use crossbeam::channel::{unbounded, Sender};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Magic bytes opening every v1 (row-major) record. The fourth byte is
/// the format version byte the reader dispatches on.
pub const SEGMENT_MAGIC: [u8; 4] = *b"ARSG";
/// Magic bytes closing every v1 record (truncation tripwire).
pub const SEGMENT_FOOTER: [u8; 4] = *b"GSRA";
/// Magic bytes opening every v2 (columnar) record.
pub const SEGMENT_MAGIC_V2: [u8; 4] = *b"ARS2";
/// Magic bytes closing every v2 record.
pub const SEGMENT_FOOTER_V2: [u8; 4] = *b"2SRA";
/// Magic bytes opening every v3 (LZ-compressed) record.
pub const SEGMENT_MAGIC_V3: [u8; 4] = *b"ARSZ";
/// Magic bytes closing every v3 record.
pub const SEGMENT_FOOTER_V3: [u8; 4] = *b"ZSRA";
/// Per-record framing overhead in bytes (header + len + crc + footer).
const RECORD_OVERHEAD: usize = 4 + 8 + 4 + 4;
/// Pending tuples per segment that trigger a columnar pack under
/// [`SegmentFormat::V2`]. Packing also happens before any spill and at
/// [`ProvStore::pack_all`] time, so the threshold only bounds how long
/// tuples sit row-major in memory.
pub const PACK_THRESHOLD: usize = 512;

/// Default drain deadline for [`StoreWriter::finish`].
pub const DEFAULT_FINISH_TIMEOUT: Duration = Duration::from_secs(30);

/// Cached global-registry handles for store metrics. Ingested tuple and
/// batch counts are functions of the captured provenance alone and are
/// flagged deterministic; spill counts, spilled bytes, and record
/// verifications depend on when the async writer's batches arrive
/// relative to the memory budget, so they are flagged non-deterministic.
mod obs_handles {
    use ariadne_obs::metrics::{Counter, Histogram};
    use std::sync::OnceLock;

    macro_rules! store_counter {
        ($fn_name:ident, $name:literal, $help:literal, $det:expr) => {
            pub fn $fn_name() -> &'static Counter {
                static H: OnceLock<Counter> = OnceLock::new();
                H.get_or_init(|| ariadne_obs::registry().counter($name, $help, $det))
            }
        };
    }

    store_counter!(
        ingest_batches,
        "store_ingest_batches_total",
        "tuple batches ingested into the provenance store",
        true
    );
    store_counter!(
        ingest_tuples,
        "store_ingest_tuples_total",
        "provenance tuples ingested",
        true
    );
    store_counter!(
        ingest_bytes,
        "store_ingest_bytes_total",
        "encoded record bytes appended to in-memory segments",
        true
    );
    store_counter!(
        spills,
        "store_spills_total",
        "segment spills to the spool directory (budget/arrival dependent)",
        false
    );
    store_counter!(
        spilled_bytes,
        "store_spilled_bytes_total",
        "bytes written to spool segment files (budget/arrival dependent)",
        false
    );
    store_counter!(
        records_verified,
        "store_records_verified_total",
        "checksummed records whose CRC was validated on read",
        false
    );
    store_counter!(
        checksum_failures,
        "store_checksum_failures_total",
        "records rejected for CRC/framing mismatch",
        false
    );
    store_counter!(
        resumes,
        "store_resumes_total",
        "stores re-opened over an existing spool directory",
        true
    );
    store_counter!(
        sealed_segments,
        "store_sealed_segments_total",
        "segments recovered and sealed during spool resume",
        true
    );
    store_counter!(
        faults_injected,
        "store_faults_injected_total",
        "scripted spill failures fired",
        true
    );
    store_counter!(
        segments_read,
        "store_segments_read_total",
        "segments decoded by layer reads",
        true
    );
    store_counter!(
        segments_skipped,
        "store_segments_skipped_total",
        "segments skipped by predicate-filtered layer reads",
        true
    );
    store_counter!(
        writers_abandoned,
        "store_writers_abandoned_total",
        "writer threads fenced off after a finish timeout",
        true
    );
    store_counter!(
        encoded_bytes,
        "store_encoded_bytes",
        "record bytes (framing included) produced by columnar segment packing",
        true
    );
    store_counter!(
        encode_ns,
        "store_encode_ns",
        "wall nanoseconds spent in columnar stats passes and encoding",
        false
    );
    store_counter!(
        packs,
        "store_packs_total",
        "pending batches packed into columnar records",
        true
    );
    store_counter!(
        col_bytes_skipped,
        "store_col_bytes_skipped_total",
        "encoded column-block bytes skipped (never materialized) by masked reads",
        true
    );
    store_counter!(
        fsync_ns,
        "store_fsync_ns",
        "wall nanoseconds spent fsyncing spool files and directories",
        false
    );
    store_counter!(
        salvaged_records,
        "store_salvaged_records",
        "records retained by truncating a torn unsealed tail at resume/scrub",
        true
    );
    store_counter!(
        quarantined_segments,
        "store_quarantined_segments",
        "irrecoverable segment files moved into quarantine/ by scrub --repair",
        true
    );
    store_counter!(
        io_retries,
        "store_io_retries",
        "transient spill IO failures absorbed by the bounded retry loop",
        false
    );
    store_counter!(
        compactions,
        "store_compactions_total",
        "compaction passes that rewrote the spool into a new generation",
        true
    );
    store_counter!(
        compact_bytes_in,
        "store_compact_bytes_in",
        "segment bytes read (decoded) by compaction passes",
        true
    );
    store_counter!(
        compact_bytes_out,
        "store_compact_bytes_out",
        "generation-file record bytes written by compaction passes",
        true
    );
    store_counter!(
        lz_records,
        "store_lz_records_total",
        "records written in the v3 compressed frame (LZ strictly won)",
        true
    );
    store_counter!(
        lz_saved_bytes,
        "store_lz_saved_bytes",
        "payload bytes saved by v3 LZ compression over the plain frame",
        true
    );
    // Compaction protocol step timers (PR 7 landed the protocol with no
    // obs): one wall-clock counter per kill-point-delimited step, so a
    // slow compaction shows *which* step ate the time. Timings are
    // schedule-dependent, hence non-deterministic.
    store_counter!(
        compact_encode_ns,
        "store_compact_encode_ns",
        "wall nanoseconds decoding + re-encoding segments into the generation buffer",
        false
    );
    store_counter!(
        compact_gen_write_ns,
        "store_compact_gen_write_ns",
        "wall nanoseconds writing + fsyncing the generation temp file",
        false
    );
    store_counter!(
        compact_gen_publish_ns,
        "store_compact_gen_publish_ns",
        "wall nanoseconds renaming the generation file into place",
        false
    );
    store_counter!(
        compact_manifest_write_ns,
        "store_compact_manifest_write_ns",
        "wall nanoseconds writing + fsyncing the manifest temp file",
        false
    );
    store_counter!(
        compact_manifest_publish_ns,
        "store_compact_manifest_publish_ns",
        "wall nanoseconds renaming the manifest into place (the commit point)",
        false
    );
    store_counter!(
        compact_gc_ns,
        "store_compact_gc_ns",
        "wall nanoseconds deleting superseded files after the manifest swap",
        false
    );
    // v3 metadata reads: how often footers and manifests are parsed.
    // Both depend on open/replay patterns, not logical work.
    store_counter!(
        footer_reads,
        "store_footer_reads_total",
        "v3 generation-file footers parsed",
        false
    );
    store_counter!(
        manifest_reads,
        "store_manifest_reads_total",
        "spool manifests read and parsed",
        false
    );
    // Scrub progress: a scrub walks every file exactly once in sorted
    // order, so these are functions of the spool content alone.
    store_counter!(
        scrub_files,
        "store_scrub_files_total",
        "spool files verified by scrub passes",
        true
    );
    store_counter!(
        scrub_records,
        "store_scrub_records_total",
        "records whose CRC and payload decode were re-verified by scrub",
        true
    );
    store_counter!(
        scrub_tuples,
        "store_scrub_tuples_total",
        "tuples decoded during scrub verification",
        true
    );
    store_counter!(
        scrub_damage,
        "store_scrub_damage_total",
        "damaged files (torn or corrupt) found by scrub passes",
        true
    );

    macro_rules! encoding_hist {
        ($fn_name:ident, $name:literal) => {
            fn $fn_name() -> &'static Histogram {
                static H: OnceLock<Histogram> = OnceLock::new();
                H.get_or_init(|| {
                    ariadne_obs::registry().histogram(
                        $name,
                        "encoded column-block bytes per packed column for this encoding",
                        true,
                    )
                })
            }
        };
    }

    encoding_hist!(enc_plain, "store_encoding_bytes_plain");
    encoding_hist!(enc_const, "store_encoding_bytes_const");
    encoding_hist!(enc_delta_id, "store_encoding_bytes_delta_id");
    encoding_hist!(enc_delta_int, "store_encoding_bytes_delta_int");
    encoding_hist!(enc_dict, "store_encoding_bytes_dict");
    encoding_hist!(enc_float_raw, "store_encoding_bytes_float_raw");

    /// The per-encoding column-size histogram for `enc`.
    pub fn encoding_hist(enc: crate::columnar::Encoding) -> &'static Histogram {
        use crate::columnar::Encoding::*;
        match enc {
            Plain => enc_plain(),
            Const => enc_const(),
            DeltaId => enc_delta_id(),
            DeltaInt => enc_delta_int(),
            Dict => enc_dict(),
            FloatRaw => enc_float_raw(),
        }
    }
}

/// Typed failures from the provenance store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure; `path` names the file or directory involved.
    Io {
        /// The spool file or directory the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A stored segment failed record validation (magic, length, CRC,
    /// footer) or tuple decoding.
    Corrupt {
        /// The offending spool file (or `<memory>` for in-memory data).
        path: PathBuf,
        /// What exactly failed.
        detail: String,
    },
    /// A [`FaultPlan`] failed this spill write on purpose.
    InjectedSpillFailure {
        /// The zero-based ordinal of the failed spill attempt.
        attempt: u64,
    },
    /// The writer thread is gone (panicked or already finished).
    WriterDead,
    /// The writer thread did not drain its queue within the deadline.
    FinishTimeout {
        /// The deadline that elapsed.
        timeout: Duration,
        /// Ingest batches still queued when the deadline elapsed.
        pending: u64,
    },
    /// A strict read was refused because the store holds less than the
    /// full capture: it was poisoned by a spill failure under
    /// [`OnSpillError::DropCapture`], or damage was detected earlier.
    /// Use [`ReadPolicy::Degraded`] to read what survives, with the
    /// loss reported as [`Degradation`].
    Degraded {
        /// Why the store is incomplete.
        detail: String,
        /// The failure that caused the degradation, when known.
        source: Option<Arc<StoreError>>,
    },
    /// A strict read touched a layer whose segment file was moved into
    /// `quarantine/` by a scrub repair.
    Quarantined {
        /// The quarantined segment file.
        path: PathBuf,
        /// The corruption that condemned the file, when quarantined in
        /// this process (`None` when discovered at resume).
        source: Option<Box<StoreError>>,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store io error at {}: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt segment {}: {detail}", path.display())
            }
            StoreError::InjectedSpillFailure { attempt } => {
                write!(f, "injected failure of spill write #{attempt}")
            }
            StoreError::WriterDead => write!(f, "store writer thread is gone"),
            StoreError::FinishTimeout { timeout, pending } => {
                write!(
                    f,
                    "store writer did not drain within {timeout:?} ({pending} batches pending)"
                )
            }
            StoreError::Degraded { detail, .. } => {
                write!(f, "store degraded: {detail}")
            }
            StoreError::Quarantined { path, .. } => {
                write!(f, "segment quarantined: {}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Degraded { source, .. } => source
                .as_ref()
                .map(|e| e.as_ref() as &(dyn std::error::Error + 'static)),
            StoreError::Quarantined { source, .. } => source
                .as_ref()
                .map(|e| e.as_ref() as &(dyn std::error::Error + 'static)),
            _ => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Corrupt {
            path: PathBuf::from("<memory>"),
            detail: e.to_string(),
        }
    }
}

/// The physical format new records are written in. Readers accept both
/// formats regardless of this setting (per-record version dispatch), so
/// the choice only affects the write path.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum SegmentFormat {
    /// Row-major tagged records ([`crate::codec`]); one record per
    /// ingest batch — the pre-v2 behavior, kept as the measured
    /// baseline and for byte-identical spool reproduction.
    V1,
    /// Columnar records ([`crate::columnar`]); ingest batches buffer in
    /// a pending row set and pack into per-column-encoded records.
    #[default]
    V2,
    /// Columnar records with an LZ block stacked underneath
    /// ([`crate::v3`]): packs like [`SegmentFormat::V2`], then emits the
    /// compressed `ARSZ` frame whenever it is strictly smaller than the
    /// plain one (falling back to the plain frame otherwise).
    V3,
}

/// How hard spill writes push bytes toward stable storage — the store's
/// explicit durability contract.
///
/// Every level keeps the *integrity* guarantee (a reopened spool never
/// yields wrong data: records are CRC-framed and validated on read);
/// the levels differ in how much captured provenance is guaranteed to
/// *survive* a crash or power loss.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// No fsync anywhere (the pre-durability behavior and the default).
    /// Spills append whole records to unsealed `seg-*.bin` tails; after
    /// an OS crash the tail may be torn, which resume salvages back to
    /// the last record boundary. Survives process crash, not power loss.
    #[default]
    None,
    /// Like [`Durability::None`], plus `fsync` on the segment file after
    /// every spill append and on the spool directory when it (or a new
    /// segment file) is created. Spilled records survive power loss;
    /// the final append may still tear and be salvaged.
    Spill,
    /// Every spill atomically rewrites the whole segment as a sealed
    /// `seg-*.seal` file (temp file + fsync + rename + directory fsync).
    /// The spool never holds a torn segment — each file is complete or
    /// absent — at the price of write amplification proportional to the
    /// segment size on every spill.
    Seal,
}

/// What [`ProvStore::ingest`] does when a spill write fails after
/// retries (disk full, permission lost, injected fault).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum OnSpillError {
    /// Propagate the error to the ingest caller (the default): capture
    /// aborts with a typed [`StoreError`].
    #[default]
    Abort,
    /// Poison the store and drop this and all subsequent ingests, so the
    /// analytics run completes with partial provenance. Strict reads of
    /// a poisoned store fail with [`StoreError::Degraded`] (chaining the
    /// original spill error); [`ReadPolicy::Degraded`] reads succeed and
    /// report the loss.
    DropCapture,
}

/// How layer reads treat damaged or missing data.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Any corrupt record, quarantined segment, or store poisoning is a
    /// typed error (the default).
    #[default]
    Strict,
    /// Skip damaged records (resyncing to the next valid record) and
    /// quarantined segments, and report exactly what was lost as
    /// [`Degradation`] — partial results, always labelled.
    Degraded,
}

/// Detail cap for [`Degradation::details`] so a badly damaged store
/// cannot balloon reports.
const DEGRADATION_DETAIL_CAP: usize = 8;

/// What a [`ReadPolicy::Degraded`] read skipped. Attached to
/// [`LayerRead`]; aggregated upward into layered-run and run reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Damaged record regions skipped inside otherwise-readable files
    /// (each contiguous damaged byte range counts once).
    pub records_skipped: usize,
    /// Whole segments skipped (quarantined, or unreadable end to end).
    pub segments_skipped: usize,
    /// Encoded bytes skipped over.
    pub bytes_skipped: usize,
    /// Human-readable damage descriptions, capped at
    /// `DEGRADATION_DETAIL_CAP` entries (the counts above stay exact).
    pub details: Vec<String>,
}

impl Degradation {
    /// True when nothing was skipped and no damage was noted — the read
    /// was complete.
    pub fn is_clean(&self) -> bool {
        self.records_skipped == 0
            && self.segments_skipped == 0
            && self.bytes_skipped == 0
            && self.details.is_empty()
    }

    /// Fold another degradation into this one (report aggregation).
    pub fn absorb(&mut self, other: &Degradation) {
        self.records_skipped += other.records_skipped;
        self.segments_skipped += other.segments_skipped;
        self.bytes_skipped += other.bytes_skipped;
        for d in &other.details {
            self.note(d.clone());
        }
    }

    /// Append a damage description, respecting the detail cap.
    fn note(&mut self, detail: String) {
        if self.details.len() < DEGRADATION_DETAIL_CAP {
            self.details.push(detail);
        }
    }
}

/// What a repairing scrub did about one damaged file.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ScrubAction {
    /// Detected only (scrub ran without `repair`), or the damage lives
    /// in memory where no repair applies.
    None,
    /// Torn tail: the original bytes were backed up to a `.torn`
    /// sidecar and the file was truncated to its last record boundary.
    Salvaged,
    /// Irrecoverable corruption: the file was moved into the spool's
    /// `quarantine/` subdirectory.
    Quarantined,
}

impl std::fmt::Display for ScrubAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScrubAction::None => "none",
            ScrubAction::Salvaged => "salvaged",
            ScrubAction::Quarantined => "quarantined",
        })
    }
}

/// One damaged file found by a scrub.
#[derive(Clone, Debug)]
pub struct SegmentDamage {
    /// The damaged file (a synthetic `<mem:...>` path for in-memory
    /// buffer damage).
    pub path: PathBuf,
    /// The segment's superstep.
    pub superstep: u32,
    /// The segment's predicate.
    pub pred: String,
    /// Whether the file was an atomically written `.seal` segment.
    pub sealed: bool,
    /// True for a torn (crash-truncated) tail — salvageable; false for
    /// real corruption inside complete frames.
    pub torn: bool,
    /// Human-readable failure description.
    pub detail: String,
    /// What a repairing scrub did about it.
    pub action: ScrubAction,
    /// Valid records preceding the damage (kept by a salvage).
    pub records_kept: usize,
    /// Bytes the damage spans (cut by a salvage, or the whole file for
    /// a quarantine).
    pub bytes_lost: usize,
}

/// The result of a [`ProvStore::scrub`] or [`scrub_spool`] pass over
/// every segment file.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Segment files examined.
    pub files_checked: usize,
    /// Records whose checksum and payload decode verified clean.
    pub records_verified: usize,
    /// Tuples decoded while verifying.
    pub tuples_verified: usize,
    /// Whether the scrub ran in repair mode.
    pub repaired: bool,
    /// Every damaged file found, in (superstep, predicate) order.
    pub damage: Vec<SegmentDamage>,
}

impl ScrubReport {
    /// True when no damage was found anywhere.
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty()
    }

    /// Render the report as a JSON object (stable key order, no
    /// dependencies).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"files_checked\":{},\"records_verified\":{},\"tuples_verified\":{},\"clean\":{},\"repaired\":{},\"damage\":[",
            self.files_checked, self.records_verified, self.tuples_verified,
            self.is_clean(), self.repaired,
        ));
        for (i, d) in self.damage.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"path\":\"{}\",\"superstep\":{},\"pred\":\"{}\",\"sealed\":{},\"torn\":{},\"action\":\"{}\",\"records_kept\":{},\"bytes_lost\":{},\"detail\":\"{}\"}}",
                esc(&d.path.display().to_string()),
                d.superstep,
                esc(&d.pred),
                d.sealed,
                d.torn,
                d.action,
                d.records_kept,
                d.bytes_lost,
                esc(&d.detail),
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Store configuration.
#[derive(Clone, Debug, Default)]
pub struct StoreConfig {
    /// In-memory budget in encoded bytes before segments spill.
    pub memory_budget: usize,
    /// Where spilled segments go; `None` disables spilling (the store
    /// then grows without bound, like the paper's failed ALS capture).
    /// The directory is created on the first spill, not eagerly.
    pub spool_dir: Option<PathBuf>,
    /// Scripted fault injection for spill writes (crash-recovery tests).
    pub fault: Option<Arc<FaultPlan>>,
    /// Write format for new records (defaults to [`SegmentFormat::V2`]).
    pub format: SegmentFormat,
    /// Fsync level for spill writes (defaults to [`Durability::None`]).
    pub durability: Durability,
    /// Spill-failure policy (defaults to [`OnSpillError::Abort`]).
    pub on_spill_error: OnSpillError,
    /// How layer reads pull extent bytes from spool files (defaults to
    /// [`ReadBackend::Buffered`]; [`ReadBackend::Mmap`] decodes borrowed
    /// from the page cache on atomic files).
    pub read_backend: ReadBackend,
}

impl StoreConfig {
    /// An unbounded in-memory store (tests, small runs).
    pub fn in_memory() -> Self {
        StoreConfig {
            memory_budget: 256 << 20,
            ..StoreConfig::default()
        }
    }

    /// A store that spills past `budget` bytes into `dir`.
    pub fn spilling(budget: usize, dir: PathBuf) -> Self {
        StoreConfig {
            memory_budget: budget,
            spool_dir: Some(dir),
            ..StoreConfig::default()
        }
    }

    /// Attach a fault plan consulted on every spill write.
    pub fn with_fault(mut self, fault: Arc<FaultPlan>) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Select the write format (builder style).
    pub fn with_format(mut self, format: SegmentFormat) -> Self {
        self.format = format;
        self
    }

    /// Select the spill durability level (builder style).
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Select the spill-failure policy (builder style).
    pub fn with_on_spill_error(mut self, policy: OnSpillError) -> Self {
        self.on_spill_error = policy;
        self
    }

    /// Select the segment read backend (builder style).
    pub fn with_read_backend(mut self, backend: ReadBackend) -> Self {
        self.read_backend = backend;
        self
    }
}

/// One (superstep, predicate) segment: encoded records in memory plus an
/// optional spilled prefix on disk, plus (under [`SegmentFormat::V2`]) a
/// pending row buffer awaiting its columnar pack.
#[derive(Debug, Default)]
struct Segment {
    /// Concatenated checksummed records (v1 and/or v2, in append order).
    mem: Vec<u8>,
    /// Tuples encoded inside `mem` (excludes `pending`).
    mem_tuples: usize,
    /// Spool files holding the spilled prefix of this segment.
    disk: DiskPart,
    /// Sealed segments were fully persisted by a previous incarnation
    /// (see [`ProvStore::resume_from_spool`]); re-ingests are dropped.
    sealed: bool,
    /// Rows awaiting their columnar pack (always empty under
    /// [`SegmentFormat::V1`]).
    pending: Vec<Tuple>,
    /// The bytes `pending` would occupy as one framed v1 record — the
    /// budget/accounting estimate until the pack replaces it with the
    /// actual encoded size.
    pending_bytes: usize,
    /// Per-column encode accounting accumulated across packed records
    /// (empty for segments holding only v1 records).
    cols: Vec<ColumnStat>,
}

/// The spilled portion of a segment: one or more spool files, read in
/// order. A segment can span a sealed `.seal` file *and* an unsealed
/// `.bin` tail when incarnations with different durability levels wrote
/// to the same spool (sealed part always first).
#[derive(Debug, Default)]
struct DiskPart {
    files: Vec<DiskFile>,
}

/// One spool file (or an extent within a shared generation file)
/// backing part of a segment.
#[derive(Clone, Debug)]
struct DiskFile {
    path: PathBuf,
    /// Byte offset of this segment's extent within `path` (always 0 for
    /// plain `seg-*` files; compacted extents share a generation file).
    offset: u64,
    bytes: usize,
    tuples: usize,
    /// Written via temp-file + atomic rename (`.seal` or `gen-*.ars3`):
    /// any damage in it is real corruption, never a salvageable torn
    /// tail.
    atomic: bool,
    /// An extent of a compacted generation file: registered from the
    /// indexed footer, read by seeking to the extent, never absorbed
    /// into sealed rewrites, and scrubbed at whole-file granularity.
    compacted: bool,
}

impl DiskPart {
    fn bytes(&self) -> usize {
        self.files.iter().map(|f| f.bytes).sum()
    }

    fn tuples(&self) -> usize {
        self.files.iter().map(|f| f.tuples).sum()
    }
}

/// Non-tuple outcomes of decoding a stretch of records.
#[derive(Debug, Default)]
struct DecodeCounts {
    /// Column blocks skipped via the mask (v2) or [`Value::Unit`]-filled
    /// column positions per record (v1 masked reads count 0 here — v1
    /// has no skippable blocks, only skipped values).
    cols_skipped: usize,
    /// Encoded bytes of skipped v2 column blocks.
    col_bytes_skipped: usize,
}

impl DecodeCounts {
    fn absorb(&mut self, other: &DecodeCounts) {
        self.cols_skipped += other.cols_skipped;
        self.col_bytes_skipped += other.col_bytes_skipped;
    }
}

impl Segment {
    /// Total encoded bytes, memory plus spilled parts plus the pending
    /// buffer at its v1-record estimate (so byte accounting is stable
    /// whether or not a pack has happened yet).
    fn total_bytes(&self) -> usize {
        self.mem.len() + self.pending_bytes + self.disk.bytes()
    }

    /// Total tuple count, memory plus spilled parts plus pending rows.
    fn total_tuples(&self) -> usize {
        self.mem_tuples + self.pending.len() + self.disk.tuples()
    }

    /// Decode the whole segment (spilled prefix first, then the
    /// in-memory tail, then pending rows) into `out`, returning the
    /// encoded bytes read plus skip accounting and any degradation
    /// incurred under [`ReadPolicy::Degraded`]. `mask` is the keep-mask
    /// applied to every record *and* to cloned pending rows, so masked
    /// reads are identical whether rows were packed yet or not.
    fn decode_into(
        &self,
        backend: ReadBackend,
        mask: Option<&[bool]>,
        out: &mut Vec<Tuple>,
        stats: Option<&mut Vec<ColumnStat>>,
        policy: ReadPolicy,
    ) -> Result<(usize, DecodeCounts, Degradation), StoreError> {
        let mode = match policy {
            ReadPolicy::Strict => WalkMode::Strict,
            ReadPolicy::Degraded => WalkMode::Degraded,
        };
        let mut bytes_read = 0usize;
        let mut counts = DecodeCounts::default();
        let mut damage = Degradation::default();
        let mut stats = stats;
        for file in &self.disk.files {
            // Compacted extents seek straight to their footer-indexed
            // byte range; plain files read whole. Either way only the
            // extent's bytes are pulled (and under the mmap backend,
            // only the pages the decoder touches are faulted in).
            let data: SegmentSlice = match read_extent(
                backend,
                &file.path,
                file.offset,
                file.bytes,
                file.atomic,
            ) {
                Ok(d) => d,
                Err(e) if policy == ReadPolicy::Degraded => {
                    damage.segments_skipped += 1;
                    damage.bytes_skipped += file.bytes;
                    damage.note(format!("{}: unreadable: {e}", file.path.display()));
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    // The file is shorter than its registered extent:
                    // someone truncated it under us — corruption, not a
                    // transient IO failure.
                    return Err(StoreError::Corrupt {
                        path: file.path.clone(),
                        detail: format!(
                            "file shorter than registered extent {}+{}: {e}",
                            file.offset, file.bytes
                        ),
                    });
                }
                Err(e) => {
                    return Err(StoreError::Io {
                        path: file.path.clone(),
                        source: e,
                    })
                }
            };
            bytes_read += data.len();
            let walked = walk_records(&data, &file.path, out, mask, stats.as_deref_mut(), mode)?;
            counts.absorb(&walked.counts);
            damage.absorb(&walked.damage);
        }
        bytes_read += self.mem.len();
        let walked = walk_records(&self.mem, Path::new("<memory>"), out, mask, stats, mode)?;
        counts.absorb(&walked.counts);
        damage.absorb(&walked.damage);
        if !self.pending.is_empty() {
            bytes_read += self.pending_bytes;
            match mask {
                None => out.extend(self.pending.iter().cloned()),
                Some(m) => out.extend(self.pending.iter().map(|t| {
                    t.iter()
                        .enumerate()
                        .map(|(col, v)| {
                            if m.get(col).copied().unwrap_or(true) {
                                v.clone()
                            } else {
                                Value::Unit
                            }
                        })
                        .collect()
                })),
            }
        }
        Ok((bytes_read, counts, damage))
    }
}

/// The captured-provenance store.
#[derive(Debug, Default)]
pub struct ProvStore {
    config: StoreConfig,
    segments: BTreeMap<(u32, String), Segment>,
    mem_bytes: usize,
    disk_bytes: usize,
    tuples: usize,
    spills: usize,
    /// Cached largest captured superstep, maintained on ingest/resume so
    /// replay drivers and [`ProvStore::to_database`] never rescan the
    /// whole segment index for it.
    max_step: Option<u32>,
    /// Records retained by truncating torn unsealed tails at resume.
    salvaged: usize,
    /// Segment files found in (or moved to) `quarantine/`, keyed like
    /// segments. Strict reads of their layers fail typed; degraded
    /// reads count them as skipped segments.
    quarantined: BTreeMap<(u32, String), PathBuf>,
    /// Set when a spill failure under [`OnSpillError::DropCapture`]
    /// stopped capture: subsequent ingests are dropped and strict reads
    /// fail with [`StoreError::Degraded`] chaining this error.
    poison: Option<Arc<StoreError>>,
    /// Ingest batches dropped after poisoning.
    dropped_batches: usize,
    /// Tuples dropped after poisoning.
    dropped_tuples: usize,
    /// The current compaction generation (0 = never compacted). Each
    /// [`ProvStore::compact`] bumps it; generation files and the spool
    /// manifest carry it so resume can tell live files from orphans.
    generation: u64,
    /// Compaction passes performed by this incarnation.
    compactions: usize,
    /// The epoch table: empty for a store that has never absorbed a
    /// graph mutation (every read is physical, the pre-epoch fast
    /// path). Non-empty after the first [`ProvStore::append_epoch`]:
    /// entry 0 describes the original capture, each later entry one
    /// appended delta epoch. Rebuilt from `~epoch~` marker segments on
    /// spool resume.
    epochs: Vec<EpochInfo>,
}

/// One row of the per-(superstep, predicate) segment index: the counts a
/// replay planner needs to decide what to decode without touching any
/// payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentInfo {
    /// The provenance layer (= superstep) the segment belongs to.
    pub superstep: u32,
    /// The predicate whose tuples the segment holds.
    pub pred: String,
    /// Decoded tuple count (memory + spilled parts).
    pub tuples: usize,
    /// Encoded record bytes (memory + spilled parts).
    pub bytes: usize,
    /// Whether any part of the segment lives in a spool file.
    pub spilled: bool,
    /// Whether the segment was recovered and sealed by a spool resume.
    pub sealed: bool,
    /// Per-column encoded/decoded byte accounting accumulated over the
    /// segment's packed (v2) records, in column order. Empty for
    /// segments holding only v1 records; `decoded_bytes` is the
    /// v1-equivalent size, so `encoded_bytes / decoded_bytes` is the
    /// column's compression ratio.
    pub columns: Vec<ColumnStat>,
}

/// The outcome of one filtered layer read.
#[derive(Debug, Default)]
pub struct LayerRead {
    /// Decoded (predicate, tuples) pairs, in predicate order.
    pub tuples: Vec<(String, Vec<Tuple>)>,
    /// Segments decoded for this layer.
    pub segments_read: usize,
    /// Segments whose predicate the filter rejected — neither decoded
    /// nor (for spilled parts) read from disk at all.
    pub segments_skipped: usize,
    /// Encoded bytes decoded (memory + disk).
    pub bytes_read: usize,
    /// Encoded bytes the filter avoided touching.
    pub bytes_skipped: usize,
    /// Column runs skipped via a column mask: one per masked column per
    /// v2 record (the whole encoded block is jumped over) and one per
    /// masked column per non-empty v1 record (values skipped
    /// individually). Contained in `bytes_read` segments but never
    /// materialized as values.
    pub cols_skipped: usize,
    /// Encoded bytes of the skipped v2 column blocks (v1 skips are not
    /// byte-accounted).
    pub col_bytes_skipped: usize,
    /// What a [`ReadPolicy::Degraded`] read skipped as damaged; always
    /// clean under [`ReadPolicy::Strict`] (damage errors out instead).
    pub degradation: Degradation,
}

/// What a layer read should materialize: a predicate allow-set plus
/// optional per-predicate column keep-masks.
///
/// Segments whose predicate the filter rejects are skipped whole —
/// no decode and (for spilled parts) no disk read. Within a decoded
/// segment, a column keep-mask drops individual columns: masked-out
/// positions decode as [`Value::Unit`] (arity and row order preserved)
/// and, for v2 records, the encoded column block is skipped without
/// materializing a single value — a query that never touches message
/// payloads never pays for them.
#[derive(Clone, Debug, Default)]
pub struct LayerFilter {
    /// `None` = all predicates.
    preds: Option<std::collections::BTreeSet<String>>,
    /// Keep-masks per predicate; absent = keep every column.
    masks: BTreeMap<String, Vec<bool>>,
}

impl LayerFilter {
    /// Keep everything (the unfiltered read).
    pub fn all() -> Self {
        LayerFilter::default()
    }

    /// Keep only the given predicates (all their columns).
    pub fn for_preds(preds: std::collections::BTreeSet<String>) -> Self {
        LayerFilter {
            preds: Some(preds),
            masks: BTreeMap::new(),
        }
    }

    /// Attach a column keep-mask for `pred` (builder style). Positions
    /// past the end of the mask are kept; position 0 (the location
    /// specifier) should stay `true` for any caller that routes on it.
    pub fn with_mask(mut self, pred: &str, mask: Vec<bool>) -> Self {
        self.masks.insert(pred.to_string(), mask);
        self
    }

    /// Whether `pred`'s segments should be decoded at all.
    pub fn wants(&self, pred: &str) -> bool {
        self.preds.as_ref().is_none_or(|p| p.contains(pred))
    }

    /// The column keep-mask for `pred`, if any.
    pub fn mask(&self, pred: &str) -> Option<&[bool]> {
        self.masks.get(pred).map(Vec::as_slice)
    }
}

/// One end of a `(superstep, predicate)` segment-key range.
type SegmentKeyBound = std::ops::Bound<(u32, String)>;

/// The key range covering every segment of `superstep`. Uses an explicit
/// upper bound so `superstep == u32::MAX` does not overflow (the old
/// `(superstep + 1, "")` end bound panicked there).
fn layer_bounds(superstep: u32) -> (SegmentKeyBound, SegmentKeyBound) {
    use std::ops::Bound;
    let lo = Bound::Included((superstep, String::new()));
    let hi = match superstep.checked_add(1) {
        Some(next) => Bound::Excluded((next, String::new())),
        None => Bound::Unbounded,
    };
    (lo, hi)
}

/// Append one checksummed v1 record framing `payload` to `buf`.
fn append_record(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&SEGMENT_MAGIC);
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&SEGMENT_FOOTER);
}

/// Append one checksummed v2 (columnar) record framing `payload` to `buf`.
fn append_record_v2(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&SEGMENT_MAGIC_V2);
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&SEGMENT_FOOTER_V2);
}

/// Append one checksummed v3 (compressed) record framing `payload` to
/// `buf` (the payload is already the inner-version-tagged compressed
/// form from [`v3::make_compressed_payload`]).
fn append_record_v3(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&SEGMENT_MAGIC_V3);
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&SEGMENT_FOOTER_V3);
}

/// Append `raw` (an inner payload of `inner_version` 1 = row-major or
/// 2 = columnar) as either a compressed v3 frame — when compression
/// strictly wins — or the plain frame of its native version. Returns
/// `true` when the compressed frame was used.
fn append_record_best(buf: &mut Vec<u8>, inner_version: u8, raw: &[u8]) -> bool {
    if let Some(packed) = v3::make_compressed_payload(inner_version, raw) {
        obs_handles::lz_records().inc();
        obs_handles::lz_saved_bytes().add((raw.len() - packed.len()) as u64);
        append_record_v3(buf, &packed);
        return true;
    }
    match inner_version {
        1 => append_record(buf, raw),
        _ => append_record_v2(buf, raw),
    }
    false
}

/// How [`walk_records`] reacts to a record that fails validation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum WalkMode {
    /// First failure is a typed error (sealed segments, default reads).
    Strict,
    /// A failure whose damage extends to end-of-data (truncated header
    /// or payload overrunning the buffer — the signature of a torn
    /// write) stops the walk and reports a torn tail; any other failure
    /// is still a typed error. Used on unsealed tails at resume/scrub.
    Salvage,
    /// Any failure is counted and skipped, resyncing to the next fully
    /// valid record. Used by [`ReadPolicy::Degraded`] reads.
    Degraded,
}

/// One validated record frame inside a byte stream.
struct Frame<'a> {
    /// Frame version per the magic's version byte: 1 = row-major,
    /// 2 = columnar, 3 = LZ-compressed (inner version tagged in the
    /// payload).
    version: u8,
    payload: &'a [u8],
    /// Offset just past this record's footer.
    next: usize,
}

/// Why a frame failed validation.
struct FrameError {
    /// The failure region extends to end-of-data — what a torn (crash-
    /// truncated) write leaves behind. A complete-but-invalid frame
    /// (CRC mismatch, bad magic/footer) is *not* torn: truncation
    /// cannot produce it, so it is real corruption.
    torn: bool,
    detail: String,
}

/// Validate the record frame starting at `off`: magic, length, CRC,
/// footer. Does not decode the payload.
fn try_frame(data: &[u8], off: usize) -> Result<Frame<'_>, FrameError> {
    if data.len() - off < RECORD_OVERHEAD {
        return Err(FrameError {
            torn: true,
            detail: format!(
                "truncated record header at offset {off} ({} trailing bytes)",
                data.len() - off
            ),
        });
    }
    let magic = &data[off..off + 4];
    let version = if magic == SEGMENT_MAGIC {
        1u8
    } else if magic == SEGMENT_MAGIC_V2 {
        2
    } else if magic == SEGMENT_MAGIC_V3 {
        3
    } else {
        return Err(FrameError {
            torn: false,
            detail: format!("bad record magic at offset {off}"),
        });
    };
    let len = u64::from_le_bytes(data[off + 4..off + 12].try_into().unwrap()) as usize;
    let stored_crc = u32::from_le_bytes(data[off + 12..off + 16].try_into().unwrap());
    let body_start = off + 16;
    let footer_start = match body_start.checked_add(len) {
        Some(e) if e + 4 <= data.len() => e,
        _ => {
            return Err(FrameError {
                torn: true,
                detail: format!(
                    "record at offset {off} claims {len} payload bytes past end of data"
                ),
            })
        }
    };
    let payload = &data[body_start..footer_start];
    let actual_crc = crc32(payload);
    if actual_crc != stored_crc {
        obs_handles::checksum_failures().inc();
        trace::event(
            Level::Error,
            "store",
            "checksum_failure",
            &[
                ("offset", off.into()),
                ("stored_crc", u64::from(stored_crc).into()),
                ("computed_crc", u64::from(actual_crc).into()),
            ],
        );
        return Err(FrameError {
            torn: false,
            detail: format!(
                "CRC mismatch at offset {off}: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            ),
        });
    }
    let footer = match version {
        1 => SEGMENT_FOOTER,
        2 => SEGMENT_FOOTER_V2,
        _ => SEGMENT_FOOTER_V3,
    };
    if data[footer_start..footer_start + 4] != footer {
        obs_handles::checksum_failures().inc();
        return Err(FrameError {
            torn: false,
            detail: format!("bad record footer at offset {footer_start}"),
        });
    }
    Ok(Frame {
        version,
        payload,
        next: footer_start + 4,
    })
}

/// The outcome of walking a stretch of records.
#[derive(Debug, Default)]
struct WalkOutcome {
    counts: DecodeCounts,
    /// Records fully validated and decoded.
    records: usize,
    /// Tuples appended to `out`.
    tuples: usize,
    /// Offset just past the last valid record — the truncation point a
    /// salvage should cut back to.
    valid_end: usize,
    /// Set under [`WalkMode::Salvage`] when trailing bytes formed a
    /// torn (crash-truncated) partial record; holds the failure detail.
    torn_tail: Option<String>,
    /// Damage skipped under [`WalkMode::Degraded`].
    damage: Degradation,
}

/// Decode a concatenation of checksummed records, appending decoded
/// tuples to `out`. The record's version byte (fourth magic byte)
/// dispatches between the v1 row-major and v2 columnar payload
/// decoders; a mixed stream (v1 records sealed by a previous
/// incarnation followed by freshly packed v2 ones) is valid. `origin`
/// names the data source in errors. `mask`, when given, is the
/// keep-mask applied to every record; `stats`, when given, accumulates
/// per-column encode accounting from v2 records (spool resume
/// rebuilding a segment's column index). `mode` selects how validation
/// failures are handled — see [`WalkMode`].
fn walk_records(
    data: &[u8],
    origin: &Path,
    out: &mut Vec<Tuple>,
    mask: Option<&[bool]>,
    mut stats: Option<&mut Vec<ColumnStat>>,
    mode: WalkMode,
) -> Result<WalkOutcome, StoreError> {
    let corrupt = |detail: String| StoreError::Corrupt {
        path: origin.to_path_buf(),
        detail,
    };
    let mut o = WalkOutcome::default();
    let mut off = 0usize;
    while off < data.len() {
        let failure = match try_frame(data, off) {
            Ok(frame) => {
                // The frame is CRC-valid; a payload decode failure here
                // is real corruption (or a decoder bug), never a torn
                // tail — treat it like a complete-but-invalid frame.
                match decode_frame(&frame, mask, stats.as_deref_mut(), out, &mut o.counts) {
                    Ok(tuples) => {
                        obs_handles::records_verified().inc();
                        o.records += 1;
                        o.tuples += tuples;
                        off = frame.next;
                        o.valid_end = off;
                        continue;
                    }
                    Err(detail) => FrameError { torn: false, detail },
                }
            }
            Err(e) => e,
        };
        match mode {
            WalkMode::Strict => return Err(corrupt(failure.detail)),
            WalkMode::Salvage => {
                if failure.torn {
                    o.torn_tail = Some(failure.detail);
                    return Ok(o);
                }
                return Err(corrupt(failure.detail));
            }
            WalkMode::Degraded => {
                // Resync: scan forward for the next offset holding a
                // fully valid frame; everything in between is damage.
                let start = off;
                let mut next = None;
                let mut probe = off + 1;
                while probe + RECORD_OVERHEAD <= data.len() {
                    let magic = &data[probe..probe + 4];
                    if (magic == SEGMENT_MAGIC
                        || magic == SEGMENT_MAGIC_V2
                        || magic == SEGMENT_MAGIC_V3)
                        && try_frame(data, probe).is_ok()
                    {
                        next = Some(probe);
                        break;
                    }
                    probe += 1;
                }
                let end = next.unwrap_or(data.len());
                o.damage.records_skipped += 1;
                o.damage.bytes_skipped += end - start;
                o.damage
                    .note(format!("{}: {}", origin.display(), failure.detail));
                match next {
                    Some(n) => off = n,
                    None => break,
                }
            }
        }
    }
    Ok(o)
}

/// Decode one validated frame's payload into `out`, returning the tuple
/// count appended, or the failure detail.
fn decode_frame(
    frame: &Frame<'_>,
    mask: Option<&[bool]>,
    stats: Option<&mut Vec<ColumnStat>>,
    out: &mut Vec<Tuple>,
    counts: &mut DecodeCounts,
) -> Result<usize, String> {
    // A v3 frame decompresses to an inner v1/v2 payload, then decodes
    // like the plain frame of that version. The frame CRC covered the
    // compressed form, so a decompression failure here is corruption
    // that slipped a CRC collision (or a decoder bug) — reported, not
    // panicked.
    let (version, decompressed);
    let payload: &[u8] = if frame.version == 3 {
        let (inner, raw) = v3::decode_compressed_payload(frame.payload)?;
        version = inner;
        decompressed = raw;
        &decompressed
    } else {
        version = frame.version;
        frame.payload
    };
    let before = out.len();
    if version == 2 {
        let read = decode_columnar(payload, mask, out).map_err(|e| {
            // A failed decode may have appended partial rows; drop them
            // so Degraded-mode skips leave no half-decoded tuples.
            out.truncate(before);
            format!("columnar decode failed: {e}")
        })?;
        counts.cols_skipped += read.cols_skipped;
        counts.col_bytes_skipped += read.col_bytes_skipped;
        if let Some(stats) = stats {
            if stats.len() < read.columns.len() {
                stats.resize(read.columns.len(), ColumnStat::default());
            }
            for (agg, col) in stats.iter_mut().zip(&read.columns) {
                agg.absorb(col);
            }
        }
    } else {
        let batch = bytes::Bytes::copy_from_slice(payload);
        out.extend(
            decode_tuples_masked(batch, mask).map_err(|e| format!("tuple decode failed: {e}"))?,
        );
        // v1 records skip masked values one at a time; count the
        // masked columns per non-empty record (the v2 analogue of a
        // skipped column block) even though the byte savings are not
        // tracked at this granularity.
        if out.len() > before {
            if let Some(m) = mask {
                counts.cols_skipped += m.iter().filter(|k| !**k).count();
            }
        }
    }
    Ok(out.len() - before)
}

/// The unsealed (append-tail) spool file for a (superstep, predicate)
/// segment.
fn segment_path(dir: &Path, superstep: u32, pred: &str) -> PathBuf {
    dir.join(format!("seg-{superstep}-{pred}.bin"))
}

/// The sealed (atomic-rename) spool file for a (superstep, predicate)
/// segment, written under [`Durability::Seal`].
fn sealed_segment_path(dir: &Path, superstep: u32, pred: &str) -> PathBuf {
    dir.join(format!("seg-{superstep}-{pred}.seal"))
}

/// The sidecar holding a torn tail's original bytes before salvage
/// truncated it (kept for forensics; ignored by resume).
fn torn_sidecar_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".torn");
    PathBuf::from(name)
}

/// The subdirectory scrub repairs move irrecoverable segments into.
fn quarantine_dir(dir: &Path) -> PathBuf {
    dir.join("quarantine")
}

/// The spool-level manifest file naming live generation files.
fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(v3::MANIFEST_NAME)
}

/// Write `bytes` to `path` atomically: temp file, fsync, rename, then
/// directory fsync — the same seal protocol spills use, shared by
/// compaction's generation files and the manifest.
fn write_atomic(dir: &Path, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = {
        let mut name = path.as_os_str().to_os_string();
        name.push(".tmp");
        PathBuf::from(name)
    };
    let io = |e| StoreError::Io {
        path: path.to_path_buf(),
        source: e,
    };
    let mut file = File::create(&tmp).map_err(io)?;
    file.write_all(bytes).map_err(io)?;
    timed_sync(&file).map_err(io)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io)?;
    let _ = timed_sync_dir(dir);
    Ok(())
}

/// Read a generation file's indexed footer, returning its entries, the
/// offset where record frames end, and the total file length. Any
/// damage in the trailer or footer payload is a typed corruption.
fn read_gen_footer(path: &Path) -> Result<(Vec<FooterEntry>, usize, usize), StoreError> {
    let mut data = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut data))
        .map_err(|e| StoreError::Io {
            path: path.to_path_buf(),
            source: e,
        })?;
    obs_handles::footer_reads().inc();
    let (entries, region_end) = v3::parse_footer(&data).map_err(|e| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail: format!("generation footer: {e}"),
    })?;
    Ok((entries, region_end, data.len()))
}

/// Fully re-verify one generation file: parse the footer (trailer
/// magic, length, CRC, entry bounds), then walk every record frame of
/// the record region strictly. Generation files are written atomically,
/// so any damage — including an apparent truncation — is corruption;
/// there is no torn-tail salvage for them.
fn verify_gen_file(path: &Path) -> Result<Result<(usize, usize), String>, StoreError> {
    let mut data = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut data))
        .map_err(|e| StoreError::Io {
            path: path.to_path_buf(),
            source: e,
        })?;
    obs_handles::footer_reads().inc();
    let (entries, region_end) = match v3::parse_footer(&data) {
        Ok(v) => v,
        Err(e) => return Ok(Err(format!("generation footer: {e}"))),
    };
    let mut scratch = Vec::new();
    match walk_records(&data[..region_end], path, &mut scratch, None, None, WalkMode::Strict) {
        Ok(w) => {
            // The footer's extent accounting must agree with the frames.
            let footer_tuples: u64 = entries.iter().map(|e| e.tuples).sum();
            if footer_tuples != w.tuples as u64 {
                return Ok(Err(format!(
                    "footer claims {footer_tuples} tuples, frames hold {}",
                    w.tuples
                )));
            }
            Ok(Ok((w.records, w.tuples)))
        }
        Err(e) => Ok(Err(e.to_string())),
    }
}

/// Parse a spool file name back into its (superstep, predicate) key and
/// whether the file is a sealed (`.seal`) segment. `.torn` sidecars and
/// `.tmp` leftovers parse as `None` and are ignored.
fn parse_segment_name(name: &str) -> Option<(u32, String, bool)> {
    let stem = name.strip_prefix("seg-")?;
    let (stem, sealed) = match stem.strip_suffix(".seal") {
        Some(s) => (s, true),
        None => (stem.strip_suffix(".bin")?, false),
    };
    let (step, pred) = stem.split_once('-')?;
    Some((step.parse().ok()?, pred.to_string(), sealed))
}

/// Salvage a torn unsealed tail: back the original bytes up to a
/// `.torn` sidecar, then truncate the file to `valid_end` (the last
/// record boundary). The sidecar write happens first so the pre-salvage
/// bytes are never lost.
fn salvage_truncate(path: &Path, original: &[u8], valid_end: usize) -> Result<(), StoreError> {
    let sidecar = torn_sidecar_path(path);
    std::fs::write(&sidecar, original).map_err(|e| StoreError::Io {
        path: sidecar.clone(),
        source: e,
    })?;
    OpenOptions::new()
        .write(true)
        .truncate(false) // keep the valid prefix; set_len cuts the tail
        .open(path)
        .and_then(|f| f.set_len(valid_end as u64))
        .map_err(|e| StoreError::Io {
            path: path.to_path_buf(),
            source: e,
        })
}

/// What a scrub found wrong with one segment file (or nothing).
enum FileVerdict {
    Clean {
        records: usize,
        tuples: usize,
    },
    /// A torn (crash-truncated) trailing record in an unsealed tail —
    /// salvageable by truncating back to `valid_end`.
    Torn {
        records: usize,
        tuples: usize,
        valid_end: usize,
        detail: String,
    },
    /// Damage inside complete frames, or any damage in a sealed file —
    /// irrecoverable; the repair is quarantine.
    Corrupt {
        detail: String,
    },
}

/// Read and fully re-verify one segment file: every CRC, every payload
/// decode. Torn tails only count as salvageable in unsealed files; a
/// sealed file was renamed into place complete, so any damage in it —
/// including an apparent truncation — is corruption.
fn verify_file(path: &Path, sealed: bool) -> Result<(Vec<u8>, FileVerdict), StoreError> {
    let mut data = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut data))
        .map_err(|e| StoreError::Io {
            path: path.to_path_buf(),
            source: e,
        })?;
    let mut scratch = Vec::new();
    let verdict = match walk_records(&data, path, &mut scratch, None, None, WalkMode::Salvage) {
        Ok(w) => match w.torn_tail {
            None => FileVerdict::Clean {
                records: w.records,
                tuples: w.tuples,
            },
            Some(detail) if sealed => FileVerdict::Corrupt {
                detail: format!("torn tail in sealed segment: {detail}"),
            },
            Some(detail) => FileVerdict::Torn {
                records: w.records,
                tuples: w.tuples,
                valid_end: w.valid_end,
                detail,
            },
        },
        Err(e) => FileVerdict::Corrupt {
            detail: e.to_string(),
        },
    };
    Ok((data, verdict))
}

/// Move a corrupt segment file into the spool's `quarantine/`
/// subdirectory, returning its new path.
fn quarantine_file(dir: &Path, path: &Path) -> Result<PathBuf, StoreError> {
    let qdir = quarantine_dir(dir);
    std::fs::create_dir_all(&qdir).map_err(|e| StoreError::Io {
        path: qdir.clone(),
        source: e,
    })?;
    let dest = qdir.join(path.file_name().unwrap_or_default());
    std::fs::rename(path, &dest).map_err(|e| StoreError::Io {
        path: path.to_path_buf(),
        source: e,
    })?;
    obs_handles::quarantined_segments().inc();
    trace::event(
        Level::Warn,
        "store",
        "segment_quarantined",
        &[
            ("from", path.display().to_string().as_str().into()),
            ("to", dest.display().to_string().as_str().into()),
        ],
    );
    Ok(dest)
}

/// Scrub a spool directory offline (no open store required): walk every
/// `seg-*.bin` / `seg-*.seal` file, re-verify every checksum and payload
/// decode, and report the damage found. With `repair`, torn unsealed
/// tails are salvaged (truncated after a `.torn` sidecar backup) and
/// irrecoverably corrupt files are moved into `quarantine/`, after which
/// a [`ProvStore::resume_from_spool`] opens strict-clean (degraded reads
/// then report exactly the quarantined loss).
///
/// Backs the `ariadne scrub` CLI subcommand.
pub fn scrub_spool(dir: &Path, repair: bool) -> Result<ScrubReport, StoreError> {
    let mut report = ScrubReport {
        repaired: repair,
        ..ScrubReport::default()
    };
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => {
            return Err(StoreError::Io {
                path: dir.to_path_buf(),
                source: e,
            })
        }
    };
    let mut found: Vec<((u32, String), PathBuf, bool)> = Vec::new();
    let mut gen_files: Vec<PathBuf> = Vec::new();
    let mut manifest_present = false;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::Io {
            path: dir.to_path_buf(),
            source: e,
        })?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == v3::MANIFEST_NAME {
            manifest_present = true;
            continue;
        }
        if v3::parse_gen_name(&name).is_some() {
            gen_files.push(entry.path());
            continue;
        }
        let Some((step, pred, sealed)) = parse_segment_name(&name) else {
            continue;
        };
        found.push(((step, pred), entry.path(), sealed));
    }
    gen_files.sort();
    found.sort_by(|a, b| (&a.0, !a.2).cmp(&(&b.0, !b.2)));
    for ((step, pred), path, sealed) in found {
        report.files_checked += 1;
        let (data, verdict) = verify_file(&path, sealed)?;
        match verdict {
            FileVerdict::Clean { records, tuples } => {
                report.records_verified += records;
                report.tuples_verified += tuples;
            }
            FileVerdict::Torn {
                records,
                tuples,
                valid_end,
                detail,
            } => {
                report.records_verified += records;
                report.tuples_verified += tuples;
                let mut action = ScrubAction::None;
                if repair {
                    salvage_truncate(&path, &data, valid_end)?;
                    obs_handles::salvaged_records().add(records as u64);
                    action = ScrubAction::Salvaged;
                }
                report.damage.push(SegmentDamage {
                    path,
                    superstep: step,
                    pred,
                    sealed,
                    torn: true,
                    detail,
                    action,
                    records_kept: records,
                    bytes_lost: data.len() - valid_end,
                });
            }
            FileVerdict::Corrupt { detail } => {
                let mut action = ScrubAction::None;
                let mut reported = path.clone();
                if repair {
                    reported = quarantine_file(dir, &path)?;
                    action = ScrubAction::Quarantined;
                }
                report.damage.push(SegmentDamage {
                    path: reported,
                    superstep: step,
                    pred,
                    sealed,
                    torn: false,
                    detail,
                    action,
                    records_kept: 0,
                    bytes_lost: data.len(),
                });
            }
        }
    }
    // v3: verify the spool manifest (whole-payload CRC) and every
    // generation file (footer trailer + footer CRC + every record
    // frame). A corrupt generation file is quarantined on repair; its
    // keys are recovered from the manifest's footer mirror (the file's
    // own footer being unreadable) and recorded on the rebuilt
    // manifest's lost list so resume still knows what is missing.
    let mpath = manifest_path(dir);
    let mut manifest: Option<Manifest> = None;
    let mut manifest_ok = true;
    if manifest_present {
        report.files_checked += 1;
        let bytes = std::fs::read(&mpath).map_err(|e| StoreError::Io {
            path: mpath.clone(),
            source: e,
        })?;
        obs_handles::manifest_reads().inc();
        match v3::parse_manifest(&bytes) {
            Ok(m) => manifest = Some(m),
            Err(e) => {
                manifest_ok = false;
                report.damage.push(SegmentDamage {
                    path: mpath.clone(),
                    superstep: 0,
                    pred: "<manifest>".into(),
                    sealed: true,
                    torn: false,
                    detail: format!("spool manifest: {e}"),
                    action: ScrubAction::None,
                    records_kept: 0,
                    bytes_lost: bytes.len(),
                });
            }
        }
    }
    let mut lost: Vec<LostKey> = manifest.as_ref().map(|m| m.lost.clone()).unwrap_or_default();
    let mut gen_changed = false;
    let mut live_paths = gen_files.clone();
    for gpath in &gen_files {
        report.files_checked += 1;
        match verify_gen_file(gpath)? {
            Ok((records, tuples)) => {
                report.records_verified += records;
                report.tuples_verified += tuples;
            }
            Err(detail) => {
                let size = std::fs::metadata(gpath)
                    .map(|m| m.len() as usize)
                    .unwrap_or(0);
                let gname = gpath
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let mut action = ScrubAction::None;
                let mut reported = gpath.clone();
                if repair {
                    reported = quarantine_file(dir, gpath)?;
                    gen_changed = true;
                    live_paths.retain(|p| p != gpath);
                    let qname = reported
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    if let Some(m) = &manifest {
                        if let Some(info) = m.live.iter().find(|g| g.name == gname) {
                            for e in &info.entries {
                                lost.push(LostKey {
                                    superstep: e.superstep,
                                    pred: e.pred.clone(),
                                    quarantine: qname.clone(),
                                });
                            }
                        }
                    }
                    action = ScrubAction::Quarantined;
                }
                report.damage.push(SegmentDamage {
                    path: reported,
                    superstep: 0,
                    pred: format!("<generation:{gname}>"),
                    sealed: true,
                    torn: false,
                    detail,
                    action,
                    records_kept: 0,
                    bytes_lost: size,
                });
            }
        }
    }
    if repair && manifest_present && (!manifest_ok || gen_changed) {
        let mut live = Vec::new();
        for gpath in &live_paths {
            let (entries, _, size) = read_gen_footer(gpath)?;
            live.push(GenFileInfo {
                name: gpath
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default(),
                size: size as u64,
                entries,
            });
        }
        // When the manifest itself was unreadable its generation number
        // is gone too; the live file names carry it.
        let generation = manifest.as_ref().map(|m| m.generation).unwrap_or_else(|| {
            live.iter()
                .filter_map(|g| v3::parse_gen_name(&g.name).map(|(gen, _)| gen))
                .max()
                .unwrap_or(0)
        });
        let m = Manifest {
            generation,
            live,
            superseded: Vec::new(),
            lost,
        };
        write_atomic(dir, &mpath, &v3::encode_manifest(&m))?;
        if !manifest_ok {
            if let Some(d) = report.damage.iter_mut().find(|d| d.pred == "<manifest>") {
                d.action = ScrubAction::Salvaged;
            }
        }
    }
    obs_handles::scrub_files().add(report.files_checked as u64);
    obs_handles::scrub_records().add(report.records_verified as u64);
    obs_handles::scrub_tuples().add(report.tuples_verified as u64);
    obs_handles::scrub_damage().add(report.damage.len() as u64);
    trace::event(
        Level::Info,
        "store",
        "scrub",
        &[
            ("dir", dir.display().to_string().as_str().into()),
            ("files_checked", report.files_checked.into()),
            ("records_verified", report.records_verified.into()),
            ("damage", report.damage.len().into()),
            ("repaired", if repair { 1u64.into() } else { 0u64.into() }),
        ],
    );
    Ok(report)
}

/// The outcome of one [`ProvStore::compact`] pass.
#[derive(Clone, Debug, Default)]
pub struct CompactReport {
    /// The generation the pass published (unchanged when there was
    /// nothing to compact).
    pub generation: u64,
    /// Segments rewritten into the new generation file.
    pub segments: usize,
    /// Tuples carried across (compaction never drops live tuples).
    pub tuples: usize,
    /// Encoded bytes read (decoded) from the old segments.
    pub bytes_in: usize,
    /// Record bytes written into the new generation file (footer
    /// excluded).
    pub bytes_out: usize,
    /// Superseded spool files deleted after the manifest swap.
    pub files_removed: usize,
}

impl CompactReport {
    /// Hand-rolled JSON (the workspace has no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"generation\":{},\"segments\":{},\"tuples\":{},\"bytes_in\":{},\"bytes_out\":{},\"files_removed\":{}}}",
            self.generation, self.segments, self.tuples, self.bytes_in, self.bytes_out, self.files_removed
        )
    }
}

/// Compact a spool directory offline: resume a store over it, run
/// [`ProvStore::compact`], and return the report. Backs the
/// `ariadne compact` CLI subcommand.
pub fn compact_spool(dir: &Path) -> Result<CompactReport, StoreError> {
    let mut store = ProvStore::resume_from_spool(StoreConfig {
        spool_dir: Some(dir.to_path_buf()),
        ..StoreConfig::in_memory()
    })?;
    store.compact()
}

/// Default number of retries for transient spill IO failures
/// (interrupted/timed-out/would-block), with 1/2/4 ms backoff.
const DEFAULT_SPILL_RETRIES: u32 = 3;

/// Whether an IO failure is worth retrying. Disk-full and permission
/// errors are not: retrying cannot fix them.
fn is_transient_io(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    )
}

/// Run a spill IO operation with bounded retry-with-backoff on
/// transient failures. `op` must be idempotent (each attempt redoes the
/// whole operation from scratch). A scripted
/// [`FaultPlan::transient_io_failures`] budget injects failures before
/// the real operation runs.
fn with_spill_retries<T>(
    fault: Option<&FaultPlan>,
    path: &Path,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> Result<T, StoreError> {
    let mut delay = Duration::from_millis(1);
    let mut attempt = 0u32;
    loop {
        let result = match fault {
            Some(f) if f.take_transient_io_failure() => Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected transient io failure",
            )),
            _ => op(),
        };
        match result {
            Ok(v) => return Ok(v),
            Err(e) if attempt < DEFAULT_SPILL_RETRIES && is_transient_io(&e) => {
                attempt += 1;
                obs_handles::io_retries().inc();
                trace::event(
                    Level::Warn,
                    "store",
                    "spill_io_retry",
                    &[
                        ("attempt", u64::from(attempt).into()),
                        ("error", e.to_string().into()),
                    ],
                );
                std::thread::sleep(delay);
                delay *= 2;
            }
            Err(e) => {
                return Err(StoreError::Io {
                    path: path.to_path_buf(),
                    source: e,
                })
            }
        }
    }
}

/// `fsync` a file, charging the wall time to `store_fsync_ns`.
fn timed_sync(file: &File) -> std::io::Result<()> {
    let t0 = std::time::Instant::now();
    let r = file.sync_all();
    obs_handles::fsync_ns().add(t0.elapsed().as_nanos() as u64);
    r
}

/// `fsync` a directory's entry table, charging `store_fsync_ns`.
fn timed_sync_dir(dir: &Path) -> std::io::Result<()> {
    let t0 = std::time::Instant::now();
    let r = File::open(dir).and_then(|f| f.sync_all());
    obs_handles::fsync_ns().add(t0.elapsed().as_nanos() as u64);
    r
}

impl ProvStore {
    /// Create a store. Never touches the filesystem — the spool
    /// directory is created on the first spill.
    pub fn new(config: StoreConfig) -> Self {
        ProvStore {
            config,
            ..Default::default()
        }
    }

    /// Re-open a store over the spool directory a previous incarnation
    /// spilled into, validating every record of every segment file.
    ///
    /// Unsealed `seg-*.bin` tails are **salvaged** when they end in a
    /// torn (crash-truncated) partial record: the original bytes are
    /// backed up to a `.torn` sidecar, the file is truncated back to
    /// the last record boundary, and the retained records count as
    /// salvaged. Damage *inside* a file — and any damage in an
    /// atomically written `seg-*.seal` segment — is real corruption and
    /// fails typed. Files under `quarantine/` are registered so strict
    /// reads of their layers fail with [`StoreError::Quarantined`].
    ///
    /// Recovered segments are **sealed**: subsequent [`ProvStore::ingest`]
    /// calls for their (superstep, predicate) keys are dropped, which
    /// makes replaying already-persisted layers after a crash idempotent.
    /// A missing or empty spool directory yields an empty store.
    pub fn resume_from_spool(config: StoreConfig) -> Result<Self, StoreError> {
        let mut store = ProvStore::new(config);
        let Some(dir) = store.config.spool_dir.clone() else {
            return Ok(store);
        };
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(StoreError::Io { path: dir, source: e }),
        };
        // Collect and classify: segment files (sorted so a sealed part
        // is attached before its unsealed tail), compaction generation
        // files, the spool manifest, and interrupted-write leftovers.
        let mut found: Vec<((u32, String), PathBuf, bool)> = Vec::new();
        let mut gen_files: Vec<(PathBuf, String)> = Vec::new();
        let mut has_manifest = false;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io {
                path: dir.clone(),
                source: e,
            })?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                // An interrupted seal or compaction write; both
                // protocols only publish via rename, so a temp file is
                // always garbage.
                let _ = std::fs::remove_file(entry.path());
                continue;
            }
            if name == v3::MANIFEST_NAME {
                has_manifest = true;
                continue;
            }
            if v3::parse_gen_name(&name).is_some() {
                gen_files.push((entry.path(), name));
                continue;
            }
            let Some((step, pred, sealed)) = parse_segment_name(&name) else {
                continue;
            };
            found.push(((step, pred), entry.path(), sealed));
        }
        if has_manifest {
            // A manifest governs which generation files are live and
            // which segment files a completed compaction superseded. A
            // corrupt manifest fails typed — `scrub --repair` rebuilds
            // it from the generation files' own footers.
            let mpath = manifest_path(&dir);
            let mut bytes = Vec::new();
            File::open(&mpath)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .map_err(|e| StoreError::Io {
                    path: mpath.clone(),
                    source: e,
                })?;
            obs_handles::manifest_reads().inc();
            let manifest = v3::parse_manifest(&bytes).map_err(|e| StoreError::Corrupt {
                path: mpath.clone(),
                detail: format!("spool manifest: {e}"),
            })?;
            store.generation = manifest.generation;
            // Superseded segment files still on disk were about to be
            // deleted when the compaction crashed (after the manifest
            // swap); finish the deletion and drop them from the walk.
            let superseded: std::collections::BTreeSet<&str> =
                manifest.superseded.iter().map(String::as_str).collect();
            found.retain(|(_, path, _)| {
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                if superseded.contains(name.as_str()) {
                    let _ = std::fs::remove_file(path);
                    false
                } else {
                    true
                }
            });
            // Generation files the manifest does not list are orphans of
            // a superseded generation or of a compaction that crashed
            // before its manifest swap; the listed files are
            // authoritative, so orphans are deleted.
            for (path, name) in &gen_files {
                if !manifest.live.iter().any(|g| &g.name == name) {
                    let _ = std::fs::remove_file(path);
                }
            }
            // Register each live file's extents straight from the
            // manifest's footer mirror — metadata only, no record bytes
            // touched. The file's presence and size are still checked
            // so a half-deleted spool fails typed instead of at first
            // read.
            for info in &manifest.live {
                let gpath = dir.join(&info.name);
                let size = std::fs::metadata(&gpath)
                    .map(|m| m.len())
                    .map_err(|e| StoreError::Io {
                        path: gpath.clone(),
                        source: e,
                    })?;
                if size != info.size {
                    return Err(StoreError::Corrupt {
                        path: gpath,
                        detail: format!(
                            "manifest records {} bytes, file has {size}",
                            info.size
                        ),
                    });
                }
                for e in &info.entries {
                    store.tuples += e.tuples as usize;
                    store.disk_bytes += e.len as usize;
                    store.max_step = Some(store.max_step.map_or(e.superstep, |m| m.max(e.superstep)));
                    let seg = store
                        .segments
                        .entry((e.superstep, e.pred.clone()))
                        .or_default();
                    seg.sealed = true;
                    seg.disk.files.push(DiskFile {
                        path: gpath.clone(),
                        offset: e.offset,
                        bytes: e.len as usize,
                        tuples: e.tuples as usize,
                        atomic: true,
                        compacted: true,
                    });
                }
            }
            // Keys whose data a scrub repair quarantined out of a
            // generation file: the quarantined file's name no longer
            // parses to a key, so the manifest carries them.
            for lost in &manifest.lost {
                store.max_step =
                    Some(store.max_step.map_or(lost.superstep, |m| m.max(lost.superstep)));
                store.quarantined.insert(
                    (lost.superstep, lost.pred.clone()),
                    quarantine_dir(&dir).join(&lost.quarantine),
                );
            }
        } else {
            // Generation files without a manifest are leftovers of a
            // compaction that crashed before publishing: the old segment
            // files are still authoritative, so the orphans are deleted.
            for (path, _) in &gen_files {
                let _ = std::fs::remove_file(path);
            }
        }
        found.sort_by(|a, b| (&a.0, !a.2).cmp(&(&b.0, !b.2)));
        for (key, path, sealed) in found {
            let mut data = Vec::new();
            File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut data))
                .map_err(|e| StoreError::Io {
                    path: path.clone(),
                    source: e,
                })?;
            let mut tuples = Vec::new();
            let mut cols = Vec::new();
            let mode = if sealed {
                WalkMode::Strict
            } else {
                WalkMode::Salvage
            };
            let walked = walk_records(&data, &path, &mut tuples, None, Some(&mut cols), mode)?;
            let mut kept = data.len();
            if let Some(detail) = walked.torn_tail {
                salvage_truncate(&path, &data, walked.valid_end)?;
                kept = walked.valid_end;
                store.salvaged += walked.records;
                obs_handles::salvaged_records().add(walked.records as u64);
                trace::event(
                    Level::Warn,
                    "store",
                    "torn_tail_salvaged",
                    &[
                        ("path", path.display().to_string().as_str().into()),
                        ("records_kept", walked.records.into()),
                        ("bytes_cut", (data.len() - walked.valid_end).into()),
                        ("detail", detail.as_str().into()),
                    ],
                );
            }
            store.tuples += tuples.len();
            store.disk_bytes += kept;
            store.max_step = Some(store.max_step.map_or(key.0, |m| m.max(key.0)));
            let seg = store.segments.entry(key).or_default();
            seg.sealed = true;
            seg.disk.files.push(DiskFile {
                path,
                offset: 0,
                bytes: kept,
                tuples: tuples.len(),
                atomic: sealed,
                compacted: false,
            });
            if seg.cols.len() < cols.len() {
                seg.cols.resize(cols.len(), ColumnStat::default());
            }
            for (agg, col) in seg.cols.iter_mut().zip(&cols) {
                agg.absorb(col);
            }
        }
        // Register segments a scrub repair moved into quarantine/, so
        // reads of their layers know data is missing.
        let qdir = quarantine_dir(&dir);
        if let Ok(entries) = std::fs::read_dir(&qdir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if let Some((step, pred, _)) = parse_segment_name(&name.to_string_lossy()) {
                    store.max_step = Some(store.max_step.map_or(step, |m| m.max(step)));
                    store.quarantined.insert((step, pred), entry.path());
                }
            }
        }
        store.rebuild_epochs()?;
        obs_handles::resumes().inc();
        obs_handles::sealed_segments().add(store.segments.len() as u64);
        trace::event(
            Level::Info,
            "store",
            "resumed_from_spool",
            &[
                ("segments", store.segments.len().into()),
                ("tuples", store.tuples.into()),
                ("disk_bytes", store.disk_bytes.into()),
                ("salvaged_records", store.salvaged.into()),
                ("quarantined_segments", store.quarantined.len().into()),
            ],
        );
        Ok(store)
    }

    /// Scrub every segment of the open store — in-memory buffers and
    /// every spilled file, v1 and v2 — re-verifying each record's
    /// checksum and payload decode, and report the damage found.
    ///
    /// With `repair`, torn unsealed tails are salvaged (truncated after
    /// a `.torn` sidecar backup) and irrecoverably corrupt files are
    /// moved into the spool's `quarantine/` subdirectory; the store's
    /// segment index and byte/tuple accounting are updated to match, so
    /// subsequent [`ReadPolicy::Strict`] reads of undamaged layers
    /// succeed while quarantined layers fail typed (or are reported by
    /// [`ReadPolicy::Degraded`] reads as exactly the quarantined loss).
    /// In-memory damage is detection-only: it indicates a store bug, not
    /// a disk fault, and has no sidecar to repair from.
    pub fn scrub(&mut self, repair: bool) -> Result<ScrubReport, StoreError> {
        let mut report = ScrubReport {
            repaired: repair,
            ..ScrubReport::default()
        };
        // In-memory buffers: packed records verify like disk records
        // (unpacked v2 pending rows are not yet encoded — nothing to
        // verify). Strict walk; memory has no torn-tail failure mode.
        for ((step, pred), seg) in &self.segments {
            if seg.mem.is_empty() {
                continue;
            }
            let origin = PathBuf::from(format!("<mem:seg-{step}-{pred}>"));
            let mut scratch = Vec::new();
            match walk_records(&seg.mem, &origin, &mut scratch, None, None, WalkMode::Strict) {
                Ok(w) => {
                    report.records_verified += w.records;
                    report.tuples_verified += w.tuples;
                }
                Err(e) => report.damage.push(SegmentDamage {
                    path: origin,
                    superstep: *step,
                    pred: pred.clone(),
                    sealed: false,
                    torn: false,
                    detail: e.to_string(),
                    action: ScrubAction::None,
                    records_kept: 0,
                    bytes_lost: seg.mem.len(),
                }),
            }
        }
        // Disk files, with index/accounting updates on repair.
        let spool = self.config.spool_dir.clone();
        let keys: Vec<(u32, String)> = self.segments.keys().cloned().collect();
        for key in keys {
            let files = self.segments[&key].disk.files.clone();
            for file in files {
                if file.compacted {
                    // Extents of a shared generation file are scrubbed
                    // at whole-file granularity below, once per file.
                    continue;
                }
                report.files_checked += 1;
                let (data, verdict) = verify_file(&file.path, file.atomic)?;
                match verdict {
                    FileVerdict::Clean { records, tuples } => {
                        report.records_verified += records;
                        report.tuples_verified += tuples;
                    }
                    FileVerdict::Torn {
                        records,
                        tuples,
                        valid_end,
                        detail,
                    } => {
                        report.records_verified += records;
                        report.tuples_verified += tuples;
                        let mut action = ScrubAction::None;
                        if repair {
                            salvage_truncate(&file.path, &data, valid_end)?;
                            let seg = self.segments.get_mut(&key).expect("key from snapshot");
                            if let Some(f) = seg.disk.files.iter_mut().find(|f| f.path == file.path)
                            {
                                let lost_tuples = f.tuples.saturating_sub(tuples);
                                let lost_bytes = f.bytes.saturating_sub(valid_end);
                                f.bytes = valid_end;
                                f.tuples = tuples;
                                self.disk_bytes = self.disk_bytes.saturating_sub(lost_bytes);
                                self.tuples = self.tuples.saturating_sub(lost_tuples);
                            }
                            obs_handles::salvaged_records().add(records as u64);
                            self.salvaged += records;
                            action = ScrubAction::Salvaged;
                        }
                        report.damage.push(SegmentDamage {
                            path: file.path.clone(),
                            superstep: key.0,
                            pred: key.1.clone(),
                            sealed: file.atomic,
                            torn: true,
                            detail,
                            action,
                            records_kept: records,
                            bytes_lost: data.len() - valid_end,
                        });
                    }
                    FileVerdict::Corrupt { detail } => {
                        let mut action = ScrubAction::None;
                        let mut reported = file.path.clone();
                        if repair {
                            let dir = spool.as_deref().unwrap_or_else(|| {
                                file.path.parent().unwrap_or(Path::new("."))
                            });
                            reported = quarantine_file(dir, &file.path)?;
                            let seg = self.segments.get_mut(&key).expect("key from snapshot");
                            seg.disk.files.retain(|f| f.path != file.path);
                            self.disk_bytes = self.disk_bytes.saturating_sub(file.bytes);
                            self.tuples = self.tuples.saturating_sub(file.tuples);
                            self.quarantined.insert(key.clone(), reported.clone());
                            action = ScrubAction::Quarantined;
                        }
                        report.damage.push(SegmentDamage {
                            path: reported,
                            superstep: key.0,
                            pred: key.1.clone(),
                            sealed: file.atomic,
                            torn: false,
                            detail,
                            action,
                            records_kept: 0,
                            bytes_lost: data.len(),
                        });
                    }
                }
            }
        }
        // Generation files (verified whole-file: footer trailer, footer
        // CRC, every record frame) and the spool manifest (CRC over the
        // whole payload). Every byte of both is covered by some check —
        // record CRCs, the footer CRC, the trailer magic/length fields,
        // or the manifest CRC — so any single bit flip is detected.
        if let Some(dir) = self.config.spool_dir.clone() {
            let mut gen_paths: Vec<PathBuf> = Vec::new();
            for seg in self.segments.values() {
                for f in &seg.disk.files {
                    if f.compacted && !gen_paths.contains(&f.path) {
                        gen_paths.push(f.path.clone());
                    }
                }
            }
            gen_paths.sort();
            let mpath = manifest_path(&dir);
            let mut manifest_present = false;
            let mut manifest_ok = true;
            let mut lost: Vec<LostKey> = Vec::new();
            match std::fs::read(&mpath) {
                Ok(bytes) => {
                    manifest_present = true;
                    report.files_checked += 1;
                    obs_handles::manifest_reads().inc();
                    match v3::parse_manifest(&bytes) {
                        Ok(m) => lost = m.lost,
                        Err(e) => {
                            manifest_ok = false;
                            report.damage.push(SegmentDamage {
                                path: mpath.clone(),
                                superstep: 0,
                                pred: "<manifest>".into(),
                                sealed: true,
                                torn: false,
                                detail: format!("spool manifest: {e}"),
                                action: ScrubAction::None,
                                records_kept: 0,
                                bytes_lost: bytes.len(),
                            });
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(StoreError::Io {
                        path: mpath.clone(),
                        source: e,
                    })
                }
            }
            let mut gen_changed = false;
            let mut live_paths = gen_paths.clone();
            for gpath in &gen_paths {
                report.files_checked += 1;
                match verify_gen_file(gpath)? {
                    Ok((records, tuples)) => {
                        report.records_verified += records;
                        report.tuples_verified += tuples;
                    }
                    Err(detail) => {
                        let size = std::fs::metadata(gpath)
                            .map(|m| m.len() as usize)
                            .unwrap_or(0);
                        let gname = gpath
                            .file_name()
                            .map(|n| n.to_string_lossy().into_owned())
                            .unwrap_or_default();
                        let mut action = ScrubAction::None;
                        let mut reported = gpath.clone();
                        if repair {
                            reported = quarantine_file(&dir, gpath)?;
                            gen_changed = true;
                            live_paths.retain(|p| p != gpath);
                            let qname = reported
                                .file_name()
                                .map(|n| n.to_string_lossy().into_owned())
                                .unwrap_or_default();
                            // Drop every extent the file backed; the keys
                            // go into the quarantined map (and the
                            // rebuilt manifest's lost list) so reads
                            // report exactly this loss.
                            let keys: Vec<(u32, String)> =
                                self.segments.keys().cloned().collect();
                            for key in keys {
                                let seg =
                                    self.segments.get_mut(&key).expect("key from snapshot");
                                let dropped: Vec<DiskFile> = seg
                                    .disk
                                    .files
                                    .iter()
                                    .filter(|f| f.path == *gpath)
                                    .cloned()
                                    .collect();
                                if dropped.is_empty() {
                                    continue;
                                }
                                seg.disk.files.retain(|f| f.path != *gpath);
                                for f in &dropped {
                                    self.disk_bytes = self.disk_bytes.saturating_sub(f.bytes);
                                    self.tuples = self.tuples.saturating_sub(f.tuples);
                                }
                                lost.push(LostKey {
                                    superstep: key.0,
                                    pred: key.1.clone(),
                                    quarantine: qname.clone(),
                                });
                                self.quarantined.insert(key.clone(), reported.clone());
                            }
                            action = ScrubAction::Quarantined;
                        }
                        report.damage.push(SegmentDamage {
                            path: reported,
                            superstep: 0,
                            pred: format!("<generation:{gname}>"),
                            sealed: true,
                            torn: false,
                            detail,
                            action,
                            records_kept: 0,
                            bytes_lost: size,
                        });
                    }
                }
            }
            // Rebuild the manifest when it was damaged or the live set
            // changed: the surviving generation files' own footers are
            // the source of truth (conservatively: superseded empties —
            // a crashed compaction's leftovers get cleaned by resume).
            if repair && manifest_present && (!manifest_ok || gen_changed) {
                let mut live = Vec::new();
                for gpath in &live_paths {
                    let (entries, _, size) = read_gen_footer(gpath)?;
                    live.push(GenFileInfo {
                        name: gpath
                            .file_name()
                            .map(|n| n.to_string_lossy().into_owned())
                            .unwrap_or_default(),
                        size: size as u64,
                        entries,
                    });
                }
                let m = Manifest {
                    generation: self.generation,
                    live,
                    superseded: Vec::new(),
                    lost,
                };
                write_atomic(&dir, &mpath, &v3::encode_manifest(&m))?;
                if !manifest_ok {
                    if let Some(d) = report.damage.iter_mut().find(|d| d.pred == "<manifest>") {
                        d.action = ScrubAction::Salvaged;
                    }
                }
            }
        }
        // A repair can empty out the highest layer entirely (salvage
        // truncating its only segment to zero records, or quarantine
        // removing it): recompute the cached max superstep from what
        // actually remains, counting quarantined keys (their layers
        // still exist — degraded reads report the loss).
        if repair && !report.damage.is_empty() {
            self.max_step = self
                .segments
                .iter()
                .filter(|(_, s)| s.total_tuples() > 0)
                .map(|((step, _), _)| *step)
                .chain(self.quarantined.keys().map(|(step, _)| *step))
                .max();
        }
        obs_handles::scrub_files().add(report.files_checked as u64);
        obs_handles::scrub_records().add(report.records_verified as u64);
        obs_handles::scrub_tuples().add(report.tuples_verified as u64);
        obs_handles::scrub_damage().add(report.damage.len() as u64);
        trace::event(
            Level::Info,
            "store",
            "scrub",
            &[
                ("files_checked", report.files_checked.into()),
                ("records_verified", report.records_verified.into()),
                ("damage", report.damage.len().into()),
                ("repaired", if repair { 1u64.into() } else { 0u64.into() }),
            ],
        );
        Ok(report)
    }

    /// Ingest a batch of tuples for (superstep, pred), serializing them
    /// into a checksummed record. Re-ingesting into a sealed (recovered)
    /// segment is an idempotent no-op. Spill IO failures surface as
    /// typed errors naming the path.
    pub fn ingest(
        &mut self,
        superstep: u32,
        pred: &str,
        tuples: Vec<Tuple>,
    ) -> Result<(), StoreError> {
        if tuples.is_empty() {
            return Ok(());
        }
        if self.poison.is_some() {
            // Capture was downgraded by a spill failure under
            // OnSpillError::DropCapture: drop the batch, count the loss.
            self.dropped_batches += 1;
            self.dropped_tuples += tuples.len();
            return Ok(());
        }
        if let Some(fault) = &self.config.fault {
            if let Some(stall) = fault.take_ingest_stall() {
                obs_handles::faults_injected().inc();
                trace::event(
                    Level::Warn,
                    "store::fault",
                    "injected_ingest_stall",
                    &[("millis", (stall.as_millis() as u64).into())],
                );
                std::thread::sleep(stall);
            }
        }
        self.max_step = Some(self.max_step.map_or(superstep, |m| m.max(superstep)));
        let seg = self
            .segments
            .entry((superstep, pred.to_string()))
            .or_default();
        if seg.sealed {
            // This layer was fully persisted before the crash we are
            // recovering from; the replay's re-ingest is dropped.
            return Ok(());
        }
        self.tuples += tuples.len();
        obs_handles::ingest_batches().inc();
        obs_handles::ingest_tuples().add(tuples.len() as u64);
        match self.config.format {
            SegmentFormat::V1 => {
                let batch = encode_tuples(&tuples);
                seg.mem_tuples += tuples.len();
                let before = seg.mem.len();
                append_record(&mut seg.mem, &batch);
                let appended = seg.mem.len() - before;
                self.mem_bytes += appended;
                obs_handles::ingest_bytes().add(appended as u64);
            }
            SegmentFormat::V2 | SegmentFormat::V3 => {
                // Buffer rows; the columnar pack happens at the
                // threshold, before any spill, and at pack_all/finish.
                let added = if seg.pending.is_empty() {
                    RECORD_OVERHEAD + v1_batch_size(&tuples)
                } else {
                    // Joining an existing pending record estimate: only
                    // the per-tuple bytes grow (shared count prefix).
                    v1_batch_size(&tuples) - 4
                };
                seg.pending.extend(tuples);
                seg.pending_bytes += added;
                self.mem_bytes += added;
                obs_handles::ingest_bytes().add(added as u64);
                if seg.pending.len() >= PACK_THRESHOLD {
                    let key = (superstep, pred.to_string());
                    self.pack_key(&key);
                }
            }
        }
        match self.maybe_spill() {
            Ok(()) => Ok(()),
            Err(e) if self.config.on_spill_error == OnSpillError::DropCapture => {
                // Poison the store instead of aborting the run: already-
                // captured provenance (memory + spool) stays readable in
                // degraded mode; everything from here on is dropped.
                let err = Arc::new(e);
                trace::event(
                    Level::Error,
                    "store",
                    "capture_dropped",
                    &[("error", err.to_string().into())],
                );
                self.poison = Some(err);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Pack one segment's pending rows into a columnar record, fixing up
    /// store byte accounting (estimate out, actual encoded size in).
    fn pack_key(&mut self, key: &(u32, String)) {
        let Some(seg) = self.segments.get_mut(key) else {
            return;
        };
        if seg.pending.is_empty() {
            return;
        }
        let t0 = std::time::Instant::now();
        let compress = self.config.format == SegmentFormat::V3;
        let rows = std::mem::take(&mut seg.pending);
        let est = std::mem::take(&mut seg.pending_bytes);
        let before = seg.mem.len();
        match encode_columnar(&rows) {
            Some(batch) => {
                if compress {
                    append_record_best(&mut seg.mem, 2, &batch.payload);
                } else {
                    append_record_v2(&mut seg.mem, &batch.payload);
                }
                if seg.cols.len() < batch.columns.len() {
                    seg.cols.resize(batch.columns.len(), ColumnStat::default());
                }
                for ((agg, col), enc) in
                    seg.cols.iter_mut().zip(&batch.columns).zip(&batch.encodings)
                {
                    agg.absorb(col);
                    obs_handles::encoding_hist(*enc).record(col.encoded_bytes as u64);
                }
            }
            // Ragged/empty batches have no columnar form: fall back to a
            // v1 record inside the v2 store (readers dispatch per record).
            None => {
                let raw = encode_tuples(&rows);
                if compress {
                    append_record_best(&mut seg.mem, 1, &raw);
                } else {
                    append_record(&mut seg.mem, &raw);
                }
            }
        }
        let appended = seg.mem.len() - before;
        seg.mem_tuples += rows.len();
        self.mem_bytes = self.mem_bytes - est + appended;
        obs_handles::packs().inc();
        obs_handles::encoded_bytes().add(appended as u64);
        obs_handles::encode_ns().add(t0.elapsed().as_nanos() as u64);
        trace::event(
            Level::Debug,
            "store",
            "pack",
            &[
                ("superstep", key.0.into()),
                ("pred", key.1.as_str().into()),
                ("rows", rows.len().into()),
                ("est_bytes", est.into()),
                ("encoded_bytes", appended.into()),
            ],
        );
    }

    /// Pack every segment's pending rows. Called by the writer thread
    /// before handing the store back (so `byte_size` reports fully
    /// encoded bytes); direct [`ProvStore`] users should call it before
    /// comparing byte accounting across formats.
    pub fn pack_all(&mut self) {
        let keys: Vec<_> = self
            .segments
            .iter()
            .filter(|(_, s)| !s.pending.is_empty())
            .map(|(k, _)| k.clone())
            .collect();
        for key in keys {
            self.pack_key(&key);
        }
    }

    fn maybe_spill(&mut self) -> Result<(), StoreError> {
        let Some(dir) = self.config.spool_dir.clone() else {
            return Ok(());
        };
        let mut dir_ready = false;
        while self.mem_bytes > self.config.memory_budget {
            // Spill the largest in-memory segment (pending rows count at
            // their record estimate).
            let key = match self
                .segments
                .iter()
                .filter(|(_, s)| !s.mem.is_empty() || !s.pending.is_empty())
                .max_by_key(|(_, s)| s.mem.len() + s.pending_bytes)
            {
                Some((k, _)) => k.clone(),
                None => return Ok(()),
            };
            // Pending rows must be packed first: the spool only ever
            // holds whole checksummed records. Packing can shrink
            // mem_bytes under the budget, in which case no spill is
            // needed after all.
            self.pack_key(&key);
            if self.mem_bytes <= self.config.memory_budget {
                continue;
            }
            if !dir_ready {
                // Lazy spool-dir creation: only a store that actually
                // spills needs the directory to exist. Under durable
                // levels the new directory entry is synced too.
                std::fs::create_dir_all(&dir).map_err(|e| StoreError::Io {
                    path: dir.clone(),
                    source: e,
                })?;
                if self.config.durability != Durability::None {
                    if let Some(parent) = dir.parent() {
                        let _ = timed_sync_dir(parent);
                    }
                }
                dir_ready = true;
            }
            self.spill_segment(&dir, &key)?;
        }
        Ok(())
    }

    /// Spill one segment's in-memory records to the spool, honouring the
    /// configured [`Durability`] level and any scripted faults. On
    /// failure the in-memory records are restored, so a store kept
    /// alive by [`OnSpillError::DropCapture`] still serves them.
    fn spill_segment(&mut self, dir: &Path, key: &(u32, String)) -> Result<(), StoreError> {
        // Scripted faults. `take_spill_failure` owns the attempt
        // counter; the other hooks key off the same ordinal.
        let fault = self.config.fault.clone();
        let mut attempt = 0u64;
        if let Some(fault) = &fault {
            if fault.take_spill_failure() {
                obs_handles::faults_injected().inc();
                trace::event(
                    Level::Warn,
                    "store::fault",
                    "injected_spill_failure",
                    &[("attempt", (fault.spill_attempts() - 1).into())],
                );
                return Err(StoreError::InjectedSpillFailure {
                    attempt: fault.spill_attempts() - 1,
                });
            }
            attempt = fault.spill_attempts() - 1;
        }
        let seg = self.segments.get_mut(key).expect("segment exists");
        let mem = std::mem::take(&mut seg.mem);
        let mem_tuples = std::mem::replace(&mut seg.mem_tuples, 0);
        let existing = seg.disk.files.clone();
        let spilling = mem.len();

        match self.spill_io(
            dir,
            key,
            &mem,
            mem_tuples,
            &existing,
            attempt,
            fault.as_deref(),
        ) {
            Ok(files) => {
                let seg = self.segments.get_mut(key).expect("segment exists");
                seg.disk.files = files;
                // Either durability level grows the spool by exactly the
                // in-memory bytes just written (a seal rewrite re-lands
                // bytes already counted as disk bytes).
                self.disk_bytes += spilling;
                self.mem_bytes -= spilling;
                obs_handles::spills().inc();
                obs_handles::spilled_bytes().add(spilling as u64);
                trace::event(
                    Level::Debug,
                    "store",
                    "spill",
                    &[
                        ("superstep", key.0.into()),
                        ("pred", key.1.as_str().into()),
                        ("bytes", spilling.into()),
                        ("tuples", mem_tuples.into()),
                    ],
                );
                self.spills += 1;
                Ok(())
            }
            Err(e) => {
                // Restore the unwritten records so the segment still
                // reads back from memory.
                let seg = self.segments.get_mut(key).expect("segment exists");
                seg.mem = mem;
                seg.mem_tuples = mem_tuples;
                Err(e)
            }
        }
    }

    /// The IO half of a spill write: push `mem` to the spool under the
    /// configured durability level and return the segment's new
    /// disk-file list. Does not touch segment state.
    #[allow(clippy::too_many_arguments)]
    fn spill_io(
        &self,
        dir: &Path,
        key: &(u32, String),
        mem: &[u8],
        mem_tuples: usize,
        existing: &[DiskFile],
        attempt: u64,
        fault: Option<&FaultPlan>,
    ) -> Result<Vec<DiskFile>, StoreError> {
        if let Some(fault) = fault {
            if fault.take_enospc((self.disk_bytes + mem.len()) as u64) {
                obs_handles::faults_injected().inc();
                trace::event(
                    Level::Warn,
                    "store::fault",
                    "injected_enospc",
                    &[("disk_bytes", self.disk_bytes.into())],
                );
                return Err(StoreError::Io {
                    path: segment_path(dir, key.0, &key.1),
                    source: std::io::Error::other("injected ENOSPC: no space left on device"),
                });
            }
        }
        // A scripted bit flip silently corrupts the bytes on their way
        // to disk (scrub-detection tests); a torn write persists only a
        // prefix and then fails like a crash.
        let mut payload = std::borrow::Cow::Borrowed(mem);
        let mut torn_at: Option<usize> = None;
        if let Some(fault) = fault {
            if fault.take_bit_flip(attempt) {
                obs_handles::faults_injected().inc();
                let mut owned = payload.into_owned();
                let mid = owned.len() / 2;
                if let Some(b) = owned.get_mut(mid) {
                    *b ^= 0x01;
                }
                trace::event(
                    Level::Warn,
                    "store::fault",
                    "injected_bit_flip",
                    &[("attempt", attempt.into()), ("offset", mid.into())],
                );
                payload = std::borrow::Cow::Owned(owned);
            }
            if let Some(keep) = fault.take_torn_write(attempt) {
                obs_handles::faults_injected().inc();
                trace::event(
                    Level::Warn,
                    "store::fault",
                    "injected_torn_write",
                    &[("attempt", attempt.into()), ("keep_bytes", keep.into())],
                );
                torn_at = Some(keep.min(payload.len()));
            }
        }

        match self.config.durability {
            Durability::None | Durability::Spill => {
                let path = segment_path(dir, key.0, &key.1);
                let fsync = self.config.durability == Durability::Spill;
                let new_file = !path.exists();
                // Append whole records to the unsealed tail. The write
                // is made retry-idempotent by truncating back to the
                // pre-write length before every attempt.
                let before = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                with_spill_retries(fault, &path, || {
                    let mut file = OpenOptions::new()
                        .create(true)
                        .write(true)
                        .truncate(false) // set_len below resets to the pre-write length
                        .open(&path)?;
                    file.set_len(before)?;
                    std::io::Seek::seek(&mut file, std::io::SeekFrom::Start(before))?;
                    if let Some(keep) = torn_at {
                        // Crash mid-record: persist the prefix, fail.
                        file.write_all(&payload[..keep])?;
                        let _ = file.sync_all();
                        return Err(std::io::Error::other(
                            "injected torn write (crash mid-record)",
                        ));
                    }
                    file.write_all(&payload)?;
                    if fsync {
                        timed_sync(&file)?;
                    }
                    Ok(())
                })?;
                if fsync && new_file {
                    let _ = timed_sync_dir(dir);
                }
                let mut files = existing.to_vec();
                match files.iter_mut().find(|f| f.path == path) {
                    Some(f) => {
                        f.bytes += mem.len();
                        f.tuples += mem_tuples;
                    }
                    None => files.push(DiskFile {
                        path,
                        offset: 0,
                        bytes: mem.len(),
                        tuples: mem_tuples,
                        atomic: false,
                        compacted: false,
                    }),
                }
                Ok(files)
            }
            Durability::Seal => {
                // Atomic full rewrite: old sealed bytes (plus any .bin
                // tail left by a previous, less-durable incarnation) and
                // the new records land in a temp file that is synced and
                // renamed over the .seal path. The spool never holds a
                // torn sealed segment — write amplification proportional
                // to the segment size is the price.
                let seal_path = sealed_segment_path(dir, key.0, &key.1);
                // Compacted generation extents are owned by the spool
                // manifest, not by this segment's seal: absorbing their
                // bytes would duplicate the records on the next resume
                // (the generation file stays manifest-listed). They
                // remain independent leading parts; only plain segment
                // files are absorbed into the rewrite.
                let (kept, absorbed): (Vec<DiskFile>, Vec<DiskFile>) =
                    existing.iter().cloned().partition(|f| f.compacted);
                let mut full = Vec::new();
                for f in &absorbed {
                    let data = read_extent(
                        ReadBackend::Buffered,
                        &f.path,
                        f.offset,
                        f.bytes,
                        f.atomic,
                    )
                    .map_err(|e| StoreError::Io {
                        path: f.path.clone(),
                        source: e,
                    })?;
                    full.extend_from_slice(&data);
                }
                full.extend_from_slice(&payload);
                let tmp = {
                    let mut name = seal_path.as_os_str().to_os_string();
                    name.push(".tmp");
                    PathBuf::from(name)
                };
                with_spill_retries(fault, &seal_path, || {
                    let mut file = File::create(&tmp)?;
                    if let Some(keep) = torn_at {
                        // Crash mid-seal: only the temp file is torn;
                        // the published .seal is untouched.
                        let cut = full.len() - payload.len() + keep;
                        file.write_all(&full[..cut])?;
                        let _ = file.sync_all();
                        return Err(std::io::Error::other(
                            "injected torn write (crash mid-seal)",
                        ));
                    }
                    file.write_all(&full)?;
                    timed_sync(&file)?;
                    std::fs::rename(&tmp, &seal_path)?;
                    Ok(())
                })?;
                let _ = timed_sync_dir(dir);
                // Absorbed files are now part of the sealed rewrite;
                // remove a stale .bin tail so resume does not double
                // count it.
                for f in &absorbed {
                    if !f.atomic && f.path != seal_path {
                        let _ = std::fs::remove_file(&f.path);
                    }
                }
                let absorbed_tuples: usize = absorbed.iter().map(|f| f.tuples).sum();
                let mut files = kept;
                files.push(DiskFile {
                    path: seal_path,
                    offset: 0,
                    bytes: full.len(),
                    tuples: absorbed_tuples + mem_tuples,
                    atomic: true,
                    compacted: false,
                });
                Ok(files)
            }
        }
    }

    /// All tuples of one provenance layer (= superstep), per predicate,
    /// decoding from memory and any spilled parts. Corruption or IO
    /// failure on a spilled part is a typed error naming the file.
    pub fn layer(&self, superstep: u32) -> Result<Vec<(String, Vec<Tuple>)>, StoreError> {
        Ok(self.layer_filtered(superstep, None)?.tuples)
    }

    /// Like [`ProvStore::layer`], but decoding only the predicates in
    /// `filter` (when given). Segments whose predicate the filter
    /// rejects are skipped without a decode — and, for spilled parts,
    /// without a disk read at all; the returned [`LayerRead`] accounts
    /// for both sides so the pruning win is observable. (Back-compat
    /// wrapper over [`ProvStore::layer_read`].)
    pub fn layer_filtered(
        &self,
        superstep: u32,
        filter: Option<&std::collections::BTreeSet<String>>,
    ) -> Result<LayerRead, StoreError> {
        let lf = match filter {
            None => LayerFilter::all(),
            Some(preds) => LayerFilter::for_preds(preds.clone()),
        };
        self.layer_read(superstep, &lf)
    }

    /// One provenance layer through a [`LayerFilter`]: predicate-level
    /// segment pruning plus column-selective decode. Masked-out columns
    /// decode as [`Value::Unit`] without materializing the stored
    /// values; for v2 records the whole encoded column block is skipped.
    /// Uses [`ReadPolicy::Strict`]; see [`ProvStore::layer_read_with`].
    pub fn layer_read(&self, superstep: u32, filter: &LayerFilter) -> Result<LayerRead, StoreError> {
        self.layer_read_with(superstep, filter, ReadPolicy::Strict)
    }

    /// [`ProvStore::layer_read`] with an explicit [`ReadPolicy`]. Under
    /// [`ReadPolicy::Strict`] any damage — a corrupt record, a
    /// quarantined segment of this layer, or a poisoned store — is a
    /// typed error. Under [`ReadPolicy::Degraded`] damaged records are
    /// skipped, quarantined segments are counted, and the exact loss is
    /// reported on [`LayerRead::degradation`].
    pub fn layer_read_with(
        &self,
        superstep: u32,
        filter: &LayerFilter,
        policy: ReadPolicy,
    ) -> Result<LayerRead, StoreError> {
        if self.epochs.is_empty() {
            self.physical_layer_read_with(superstep, filter, policy)
        } else {
            self.logical_layer_read(superstep, filter, policy)
        }
    }

    /// Read one **physical** layer, ignoring the epoch table. This is
    /// the storage-level view: after [`ProvStore::append_epoch`], a
    /// physical layer of a delta epoch holds diff segments
    /// (`~add~pred` / `~del~pred` / replacements), not materialized
    /// logical content — use [`ProvStore::layer_read_with`] for that.
    pub fn physical_layer_read_with(
        &self,
        superstep: u32,
        filter: &LayerFilter,
        policy: ReadPolicy,
    ) -> Result<LayerRead, StoreError> {
        let _read_span = trace::span(
            Level::Trace,
            "store",
            "layer_read",
            &[("superstep", u64::from(superstep).into())],
        );
        let mut out = LayerRead::default();
        if let Some(poison) = &self.poison {
            match policy {
                ReadPolicy::Strict => {
                    return Err(StoreError::Degraded {
                        detail: "store poisoned: capture dropped after a spill failure".into(),
                        source: Some(Arc::clone(poison)),
                    })
                }
                ReadPolicy::Degraded => out.degradation.note(format!(
                    "store poisoned: capture dropped after a spill failure ({poison}); \
                     {} batches / {} tuples lost",
                    self.dropped_batches, self.dropped_tuples
                )),
            }
        }
        for ((_, pred), qpath) in self.quarantined.range(layer_bounds(superstep)) {
            if !filter.wants(pred) {
                continue;
            }
            match policy {
                ReadPolicy::Strict => {
                    return Err(StoreError::Quarantined {
                        path: qpath.clone(),
                        source: None,
                    })
                }
                ReadPolicy::Degraded => {
                    out.degradation.segments_skipped += 1;
                    out.degradation
                        .note(format!("{}: quarantined", qpath.display()));
                }
            }
        }
        for ((_, pred), seg) in self.segments.range(layer_bounds(superstep)) {
            if !filter.wants(pred) {
                out.segments_skipped += 1;
                out.bytes_skipped += seg.total_bytes();
                continue;
            }
            let mut tuples = Vec::with_capacity(seg.total_tuples());
            let (bytes, counts, damage) = seg.decode_into(
                self.config.read_backend,
                filter.mask(pred),
                &mut tuples,
                None,
                policy,
            )?;
            out.bytes_read += bytes;
            out.cols_skipped += counts.cols_skipped;
            out.col_bytes_skipped += counts.col_bytes_skipped;
            out.degradation.absorb(&damage);
            out.segments_read += 1;
            out.tuples.push((pred.clone(), tuples));
        }
        obs_handles::segments_read().add(out.segments_read as u64);
        obs_handles::segments_skipped().add(out.segments_skipped as u64);
        obs_handles::col_bytes_skipped().add(out.col_bytes_skipped as u64);
        Ok(out)
    }

    /// The largest **logical** superstep, if any. For a store with no
    /// epochs this is the largest captured physical layer, maintained
    /// O(1) on ingest and spool resume; after
    /// [`ProvStore::append_epoch`] it is the current epoch's last
    /// superstep (older epochs' layers remain stored but are history,
    /// not current state).
    pub fn max_superstep(&self) -> Option<u32> {
        match self.epochs.last() {
            None => self.max_step,
            Some(info) => info.supersteps.checked_sub(1),
        }
    }

    /// The largest physical layer present, ignoring the epoch table.
    pub fn physical_max_superstep(&self) -> Option<u32> {
        self.max_step
    }

    /// The store's mutation epoch: 0 for a plain capture, +1 per
    /// [`ProvStore::append_epoch`]. Serve-layer caches and cursors key
    /// on this to detect stale reads across mutations.
    pub fn mutation_epoch(&self) -> u64 {
        self.epochs.len().saturating_sub(1) as u64
    }

    /// The epoch table (empty for a store that never absorbed a
    /// mutation). Entry 0 is the original capture; each later entry one
    /// appended delta epoch.
    pub fn epoch_table(&self) -> &[EpochInfo] {
        &self.epochs
    }

    /// Materialize one logical layer of an epoch-layered store by
    /// folding the epoch chain: start from the base capture's layer,
    /// then per delta epoch apply full replacements, `~add~` suffixes
    /// and `~del~` tombstones. Column masks are applied *after*
    /// materialization (the fold must compare raw tuples), so the
    /// column-skip byte accounting of the physical fast path does not
    /// apply here — `cols_skipped` stays 0 on this path.
    fn logical_layer_read(
        &self,
        superstep: u32,
        filter: &LayerFilter,
        policy: ReadPolicy,
    ) -> Result<LayerRead, StoreError> {
        // Widen the predicate allow-set to the diff spellings.
        let chain_filter = match &filter.preds {
            None => LayerFilter::all(),
            Some(set) => {
                let mut wide = set.clone();
                for p in set {
                    wide.insert(epoch::shadow_add(p));
                    wide.insert(epoch::shadow_del(p));
                }
                LayerFilter::for_preds(wide)
            }
        };
        let mut out = LayerRead::default();
        let mut acc: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();
        for info in &self.epochs {
            if superstep >= info.supersteps {
                // This epoch's run stopped earlier: the logical layer
                // does not exist here. It may reappear in a later epoch
                // (written as a full replacement, since it was diffed
                // against empty content).
                acc.clear();
                continue;
            }
            let phys = info.base + superstep;
            let read = self.physical_layer_read_with(phys, &chain_filter, policy)?;
            out.segments_read += read.segments_read;
            out.segments_skipped += read.segments_skipped;
            out.bytes_read += read.bytes_read;
            out.bytes_skipped += read.bytes_skipped;
            out.degradation.absorb(&read.degradation);
            for (pred, tuples) in read.tuples {
                if pred == epoch::EPOCH_MARKER {
                    continue;
                }
                if let Some(base) = pred.strip_prefix("~add~") {
                    acc.entry(base.to_string()).or_default().extend(tuples);
                } else if let Some(base) = pred.strip_prefix("~del~") {
                    acc.remove(base);
                } else {
                    acc.insert(pred, tuples);
                }
            }
        }
        for (pred, mut tuples) in acc {
            if let Some(mask) = filter.mask(&pred) {
                for t in &mut tuples {
                    for (i, v) in t.iter_mut().enumerate() {
                        if !mask.get(i).copied().unwrap_or(true) {
                            *v = Value::Unit;
                        }
                    }
                }
            }
            out.tuples.push((pred, tuples));
        }
        Ok(out)
    }

    /// Absorb a fresh capture of the mutated graph as a **delta
    /// epoch**: diff `next`'s logical layers against this store's
    /// current logical content and append only the differences as new
    /// physical layers at `base = physical_max + 1` (see
    /// [`crate::epoch`] for the encoding). After this call, logical
    /// reads of this store are bit-identical to reads of `next`, while
    /// storage grew only by the diff — the paper's online story
    /// extended to mutable graphs.
    ///
    /// `next` is usually an in-memory scratch capture; predicates with
    /// reserved `~`-spellings in it are ignored. The returned
    /// [`EpochStats`] reports the carried/appended/replaced split and
    /// the byte win against `next`'s full size.
    pub fn append_epoch(&mut self, next: &ProvStore) -> Result<EpochStats, StoreError> {
        let new_sup = next.max_superstep().map_or(0, |m| m + 1);
        let old_sup = self.max_superstep().map_or(0, |m| m + 1);
        let base = self.max_step.map_or(0, |m| m + 1);
        if self.epochs.is_empty() {
            // First mutation: register the original capture as epoch 0.
            self.epochs.push(EpochInfo {
                base: 0,
                supersteps: old_sup,
            });
        }
        let epoch_index = self.epochs.len() as u32;
        self.pack_all();
        let bytes_before = self.byte_size();
        let mut stats = EpochStats {
            epoch: u64::from(epoch_index),
            cold_bytes: next.byte_size(),
            ..EpochStats::default()
        };
        for s in 0..new_sup {
            let new_layer = next.layer(s)?;
            let old_layer: BTreeMap<String, Vec<Tuple>> = if s < old_sup {
                self.layer(s)?.into_iter().collect()
            } else {
                BTreeMap::new()
            };
            let mut new_preds: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
            for (pred, mut new_tuples) in new_layer {
                if epoch::is_reserved(&pred) {
                    continue;
                }
                new_preds.insert(pred.clone());
                // Diff in canonical (sorted) order: multi-threaded
                // captures ingest per-chunk buffers in arrival order,
                // so the physical tuple order inside a layer is not
                // deterministic run to run. Comparing raw order would
                // misclassify pure reorderings as full replacements;
                // layer equivalence is a statement about content, and
                // content is compared sorted everywhere else too.
                new_tuples.sort();
                let old_sorted = old_layer.get(&pred).map(|o| {
                    let mut o = o.clone();
                    o.sort();
                    o
                });
                match &old_sorted {
                    Some(old) if *old == new_tuples => stats.carried += 1,
                    Some(old)
                        if !old.is_empty()
                            && new_tuples.len() > old.len()
                            && new_tuples[..old.len()] == old[..] =>
                    {
                        self.ingest(
                            base + s,
                            &epoch::shadow_add(&pred),
                            new_tuples[old.len()..].to_vec(),
                        )?;
                        stats.appended += 1;
                    }
                    _ if new_tuples.is_empty() => {
                        if old_layer.get(&pred).is_some_and(|o| !o.is_empty()) {
                            self.ingest(
                                base + s,
                                &epoch::shadow_del(&pred),
                                vec![vec![Value::Int(0)]],
                            )?;
                            stats.tombstoned += 1;
                        }
                    }
                    _ => {
                        self.ingest(base + s, &pred, new_tuples)?;
                        stats.replaced += 1;
                    }
                }
            }
            for (pred, old) in &old_layer {
                if !old.is_empty() && !new_preds.contains(pred) {
                    self.ingest(base + s, &epoch::shadow_del(pred), vec![vec![Value::Int(0)]])?;
                    stats.tombstoned += 1;
                }
            }
        }
        self.ingest(
            base,
            epoch::EPOCH_MARKER,
            vec![vec![
                Value::Int(i64::from(epoch_index)),
                Value::Int(i64::from(base)),
                Value::Int(i64::from(new_sup)),
            ]],
        )?;
        self.epochs.push(EpochInfo {
            base,
            supersteps: new_sup,
        });
        self.pack_all();
        stats.bytes_appended = self.byte_size().saturating_sub(bytes_before);
        Ok(stats)
    }

    /// Rebuild the epoch table from `~epoch~` marker segments — called
    /// by spool resume, where the in-memory table of the previous
    /// incarnation is gone.
    fn rebuild_epochs(&mut self) -> Result<(), StoreError> {
        let mut markers: Vec<(i64, i64, i64)> = Vec::new();
        for ((_, pred), seg) in &self.segments {
            if pred != epoch::EPOCH_MARKER {
                continue;
            }
            let mut tuples = Vec::new();
            seg.decode_into(
                self.config.read_backend,
                None,
                &mut tuples,
                None,
                ReadPolicy::Strict,
            )?;
            for t in tuples {
                if let [Value::Int(idx), Value::Int(mbase), Value::Int(sup)] = t.as_slice() {
                    markers.push((*idx, *mbase, *sup));
                }
            }
        }
        if markers.is_empty() {
            return Ok(());
        }
        markers.sort_unstable();
        // Epoch 0's superstep count is the first delta epoch's base:
        // physical layers 0..base were exactly the original capture.
        let mut epochs = vec![EpochInfo {
            base: 0,
            supersteps: markers[0].1 as u32,
        }];
        for (_, mbase, sup) in markers {
            epochs.push(EpochInfo {
                base: mbase as u32,
                supersteps: sup as u32,
            });
        }
        self.epochs = epochs;
        Ok(())
    }

    /// The per-(superstep, predicate) segment index: tuple and byte
    /// counts per segment, in (superstep, predicate) order, without
    /// decoding anything.
    pub fn segment_index(&self) -> impl Iterator<Item = SegmentInfo> + '_ {
        self.segments.iter().map(|((step, pred), seg)| SegmentInfo {
            superstep: *step,
            pred: pred.clone(),
            tuples: seg.total_tuples(),
            bytes: seg.total_bytes(),
            spilled: !seg.disk.files.is_empty(),
            sealed: seg.sealed,
            columns: seg.cols.clone(),
        })
    }

    /// Load everything into one database (centralized evaluation). One
    /// pass over the segment index in (superstep, predicate) order — no
    /// per-layer range scans, and empty layers cost nothing. Strict: a
    /// poisoned store or quarantined segment is a typed error (partial
    /// evaluation over a full-database load would be silently wrong).
    pub fn to_database(&self) -> Result<Database, StoreError> {
        if let Some(poison) = &self.poison {
            return Err(StoreError::Degraded {
                detail: "store poisoned: capture dropped after a spill failure".into(),
                source: Some(Arc::clone(poison)),
            });
        }
        if let Some(path) = self.quarantined.values().next() {
            return Err(StoreError::Quarantined {
                path: path.clone(),
                source: None,
            });
        }
        if !self.epochs.is_empty() {
            // Epoch-layered store: materialize each logical layer (the
            // physical index interleaves diff segments with history).
            let mut db = Database::new();
            if let Some(max) = self.max_superstep() {
                for s in 0..=max {
                    let read = self.layer_read_with(s, &LayerFilter::all(), ReadPolicy::Strict)?;
                    for (pred, tuples) in read.tuples {
                        for t in tuples {
                            db.insert(&pred, t);
                        }
                    }
                }
            }
            return Ok(db);
        }
        let mut db = Database::new();
        for ((_, pred), seg) in &self.segments {
            let mut tuples = Vec::with_capacity(seg.total_tuples());
            seg.decode_into(
                self.config.read_backend,
                None,
                &mut tuples,
                None,
                ReadPolicy::Strict,
            )?;
            for t in tuples {
                db.insert(pred, t);
            }
        }
        Ok(db)
    }

    /// Total stored (encoded) bytes, memory + disk — the quantity in
    /// Tables 3 and 4.
    pub fn byte_size(&self) -> usize {
        self.mem_bytes + self.disk_bytes
    }

    /// Bytes currently spilled to disk.
    pub fn disk_bytes(&self) -> usize {
        self.disk_bytes
    }

    /// Number of spill operations performed.
    pub fn spills(&self) -> usize {
        self.spills
    }

    /// Total tuples captured.
    pub fn tuple_count(&self) -> usize {
        self.tuples
    }

    /// Number of sealed (recovered, idempotent-on-re-ingest) segments.
    pub fn sealed_segments(&self) -> usize {
        self.segments.values().filter(|s| s.sealed).count()
    }

    /// Records recovered from a torn unsealed tail during
    /// [`ProvStore::resume_from_spool`] (the valid prefix kept after the
    /// truncated frame was cut off).
    pub fn salvaged_records(&self) -> usize {
        self.salvaged
    }

    /// Segments currently sitting in the spool's `quarantine/`
    /// subdirectory (moved there by a repairing scrub).
    pub fn quarantined_segments(&self) -> usize {
        self.quarantined.len()
    }

    /// The spill failure that poisoned this store, if any. A poisoned
    /// store (see [`OnSpillError::DropCapture`]) dropped capture after
    /// the failure; [`ReadPolicy::Strict`] reads refuse it.
    pub fn poisoned(&self) -> Option<&StoreError> {
        self.poison.as_deref()
    }

    /// Batches dropped after the store was poisoned.
    pub fn dropped_batches(&self) -> usize {
        self.dropped_batches
    }

    /// Tuples dropped after the store was poisoned.
    pub fn dropped_tuples(&self) -> usize {
        self.dropped_tuples
    }

    /// The current compaction generation (0 = never compacted).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Compaction passes performed by this incarnation.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Switch the segment read backend on a live store (reads only —
    /// safe at any point; see [`ReadBackend`]).
    pub fn set_read_backend(&mut self, backend: ReadBackend) {
        self.config.read_backend = backend;
    }

    /// Compact the spool into a fresh generation: strictly decode every
    /// segment (memory and disk, any record format), re-encode each
    /// (superstep, predicate) key into one contiguous extent of a
    /// single `gen-{G}-0.ars3` file with an indexed footer, publish it
    /// by atomically swapping the spool manifest, and only then delete
    /// the superseded files. Small records merge into large re-encoded
    /// ones (fewer frame overheads, better column encodings, LZ when it
    /// wins), v1 records are upgraded, and quarantined bytes are left
    /// behind in `quarantine/`.
    ///
    /// Crash safety: the generation file and the manifest are both
    /// written temp-file + fsync + rename. A crash before the manifest
    /// swap leaves the old files authoritative (resume deletes the
    /// orphans); a crash after it leaves the new generation
    /// authoritative (resume finishes deleting the superseded files).
    /// At no point is the spool unrecoverable. Scripted
    /// [`FaultPlan::kill_at_compact_step`] crashes exercise every step.
    pub fn compact(&mut self) -> Result<CompactReport, StoreError> {
        let Some(dir) = self.config.spool_dir.clone() else {
            // No spool, nothing on disk to compact.
            return Ok(CompactReport {
                generation: self.generation,
                ..CompactReport::default()
            });
        };
        if let Some(poison) = &self.poison {
            return Err(StoreError::Degraded {
                detail: "store poisoned: refusing to compact after capture was dropped".into(),
                source: Some(Arc::clone(poison)),
            });
        }
        let _compact_span = trace::span(
            Level::Debug,
            "store",
            "compact_pass",
            &[("generation", (self.generation + 1).into())],
        );
        self.pack_all();
        let fault = self.config.fault.clone();
        let kill = |step: u32| -> Result<(), StoreError> {
            if let Some(f) = fault.as_deref() {
                if f.take_compact_kill(step) {
                    obs_handles::faults_injected().inc();
                    trace::event(
                        Level::Warn,
                        "store::fault",
                        "injected_compact_kill",
                        &[("step", u64::from(step).into())],
                    );
                    return Err(StoreError::Io {
                        path: manifest_path(&dir),
                        source: std::io::Error::other(format!(
                            "injected crash at compaction step {step}"
                        )),
                    });
                }
            }
            Ok(())
        };

        // Decode and re-encode. Strict policy: compaction refuses to
        // run over damage (scrub first), so it can never bake loss into
        // a new generation silently.
        let encode_started = Instant::now();
        let mut report = CompactReport::default();
        let gen = self.generation + 1;
        let gen_name = v3::gen_file_name(gen, 0);
        let gpath = dir.join(&gen_name);
        let mut buf: Vec<u8> = Vec::new();
        let mut entries: Vec<FooterEntry> = Vec::new();
        let mut processed: Vec<(u32, String)> = Vec::new();
        let mut old_paths: std::collections::BTreeSet<PathBuf> = std::collections::BTreeSet::new();
        for (key, seg) in &self.segments {
            if seg.disk.files.is_empty() && seg.mem.is_empty() {
                continue;
            }
            let mut tuples = Vec::new();
            let (bytes, _, _) = seg.decode_into(
                ReadBackend::Buffered,
                None,
                &mut tuples,
                None,
                ReadPolicy::Strict,
            )?;
            report.bytes_in += bytes;
            for f in &seg.disk.files {
                old_paths.insert(f.path.clone());
            }
            processed.push(key.clone());
            if tuples.is_empty() {
                continue;
            }
            let offset = buf.len() as u64;
            // Large merged records, bounded so a reader's
            // MAX_DECODE_CELLS guard never rejects them.
            let arity = tuples.first().map_or(1, |t| t.len()).max(1);
            let max_rows = (MAX_DECODE_CELLS / arity).max(1);
            let mut records = 0u32;
            for chunk in tuples.chunks(max_rows) {
                match encode_columnar(chunk) {
                    Some(batch) => {
                        append_record_best(&mut buf, 2, &batch.payload);
                    }
                    None => {
                        append_record_best(&mut buf, 1, &encode_tuples(chunk));
                    }
                }
                records += 1;
            }
            entries.push(FooterEntry {
                superstep: key.0,
                pred: key.1.clone(),
                offset,
                len: buf.len() as u64 - offset,
                tuples: tuples.len() as u64,
                records,
            });
            report.segments += 1;
            report.tuples += tuples.len();
        }
        if processed.is_empty() {
            return Ok(CompactReport {
                generation: self.generation,
                ..CompactReport::default()
            });
        }
        report.bytes_out = buf.len();
        report.generation = gen;
        buf.extend_from_slice(&v3::encode_footer(&entries));

        // Publish: gen file, then manifest, then deletions — with a
        // scripted kill point between every pair of steps.
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::Io {
            path: dir.clone(),
            source: e,
        })?;
        let io = |path: &PathBuf| {
            let path = path.clone();
            move |e: std::io::Error| StoreError::Io {
                path: path.clone(),
                source: e,
            }
        };
        obs_handles::compact_encode_ns().add(encode_started.elapsed().as_nanos() as u64);
        kill(0)?;
        let step_started = Instant::now();
        let gtmp = {
            let mut name = gpath.as_os_str().to_os_string();
            name.push(".tmp");
            PathBuf::from(name)
        };
        {
            let mut file = File::create(&gtmp).map_err(io(&gpath))?;
            file.write_all(&buf).map_err(io(&gpath))?;
            timed_sync(&file).map_err(io(&gpath))?;
        }
        obs_handles::compact_gen_write_ns().add(step_started.elapsed().as_nanos() as u64);
        kill(1)?;
        let step_started = Instant::now();
        std::fs::rename(&gtmp, &gpath).map_err(io(&gpath))?;
        let _ = timed_sync_dir(&dir);
        obs_handles::compact_gen_publish_ns().add(step_started.elapsed().as_nanos() as u64);
        kill(2)?;
        let step_started = Instant::now();
        let superseded: Vec<String> = old_paths
            .iter()
            .filter(|p| **p != gpath)
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        let lost: Vec<LostKey> = self
            .quarantined
            .iter()
            .map(|((step, pred), qpath)| LostKey {
                superstep: *step,
                pred: pred.clone(),
                quarantine: qpath
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default(),
            })
            .collect();
        let manifest = Manifest {
            generation: gen,
            live: vec![GenFileInfo {
                name: gen_name.clone(),
                size: buf.len() as u64,
                entries: entries.clone(),
            }],
            superseded,
            lost,
        };
        let mbytes = v3::encode_manifest(&manifest);
        let mpath = manifest_path(&dir);
        let mtmp = {
            let mut name = mpath.as_os_str().to_os_string();
            name.push(".tmp");
            PathBuf::from(name)
        };
        {
            let mut file = File::create(&mtmp).map_err(io(&mpath))?;
            file.write_all(&mbytes).map_err(io(&mpath))?;
            timed_sync(&file).map_err(io(&mpath))?;
        }
        obs_handles::compact_manifest_write_ns().add(step_started.elapsed().as_nanos() as u64);
        kill(3)?;
        let step_started = Instant::now();
        std::fs::rename(&mtmp, &mpath).map_err(io(&mpath))?;
        let _ = timed_sync_dir(&dir);
        obs_handles::compact_manifest_publish_ns().add(step_started.elapsed().as_nanos() as u64);
        kill(4)?;
        let step_started = Instant::now();
        for path in &old_paths {
            if *path != gpath && std::fs::remove_file(path).is_ok() {
                report.files_removed += 1;
            }
        }
        obs_handles::compact_gc_ns().add(step_started.elapsed().as_nanos() as u64);

        // Point the in-memory segments at their new extents and refresh
        // the store-wide byte accounting.
        for key in &processed {
            let seg = self.segments.get_mut(key).expect("processed key exists");
            seg.disk.files.clear();
            seg.mem.clear();
            seg.mem_tuples = 0;
        }
        for e in &entries {
            let seg = self
                .segments
                .get_mut(&(e.superstep, e.pred.clone()))
                .expect("compacted key exists");
            seg.mem_tuples = 0;
            seg.disk.files = vec![DiskFile {
                path: gpath.clone(),
                offset: e.offset,
                bytes: e.len as usize,
                tuples: e.tuples as usize,
                atomic: true,
                compacted: true,
            }];
        }
        self.mem_bytes = self
            .segments
            .values()
            .map(|s| s.mem.len() + s.pending_bytes)
            .sum();
        self.disk_bytes = self.segments.values().map(|s| s.disk.bytes()).sum();
        self.generation = gen;
        self.compactions += 1;
        obs_handles::compactions().inc();
        obs_handles::compact_bytes_in().add(report.bytes_in as u64);
        obs_handles::compact_bytes_out().add(report.bytes_out as u64);
        trace::event(
            Level::Info,
            "store",
            "compact",
            &[
                ("generation", gen.into()),
                ("segments", report.segments.into()),
                ("tuples", report.tuples.into()),
                ("bytes_in", report.bytes_in.into()),
                ("bytes_out", report.bytes_out.into()),
                ("files_removed", report.files_removed.into()),
            ],
        );
        Ok(report)
    }
}

enum WriterMsg {
    Ingest {
        superstep: u32,
        pred: String,
        tuples: Vec<Tuple>,
    },
    Finish,
}

/// Asynchronous ingestion front-end: tuples are sent over a channel to a
/// writer thread owning the store, so the analytic's supersteps never
/// block on serialization or spill IO.
///
/// # Abandonment invariant
///
/// [`StoreWriter::finish_timeout`] may give up on a writer thread that
/// does not drain in time. An abandoned writer is **fenced**: a shared
/// flag is raised before the timeout error is returned, and the writer
/// checks it between batches, so it stops ingesting (and stops touching
/// the spool directory) at the next batch boundary instead of racing a
/// subsequent [`ProvStore::resume_from_spool`] indefinitely. A batch
/// already in flight when the fence rises completes its spill write in
/// full, so the spool only ever holds whole checksummed records; the one
/// residual race — resuming while that final write is still in progress
/// — is detected by record validation and surfaces as a typed
/// [`StoreError::Corrupt`], never as silent corruption.
pub struct StoreWriter {
    sender: Sender<WriterMsg>,
    done: crossbeam::channel::Receiver<Result<ProvStore, StoreError>>,
    handle: JoinHandle<()>,
    /// Raised by a timed-out finish; the writer thread checks it between
    /// batches and stops ingesting once it is set.
    abandoned: Arc<std::sync::atomic::AtomicBool>,
    /// Batches queued but not yet consumed by the writer thread, so a
    /// finish timeout can report how far behind the writer was.
    pending: Arc<std::sync::atomic::AtomicU64>,
}

/// Cloneable ingestion handle usable from vertex programs.
#[derive(Clone)]
pub struct StoreSender {
    sender: Sender<WriterMsg>,
    pending: Arc<std::sync::atomic::AtomicU64>,
}

impl StoreSender {
    /// Queue a batch for ingestion. If the writer thread has died (for
    /// example after a spill failure) the batch is dropped; the failure
    /// itself is reported by [`StoreWriter::finish`], keeping this
    /// hot-path call infallible.
    pub fn ingest(&self, superstep: u32, pred: &str, tuples: Vec<Tuple>) {
        if tuples.is_empty() {
            return;
        }
        self.pending
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let _ = self.sender.send(WriterMsg::Ingest {
            superstep,
            pred: pred.to_string(),
            tuples,
        });
    }
}

impl StoreWriter {
    /// Spawn the writer thread over a fresh store.
    pub fn spawn(config: StoreConfig) -> Self {
        Self::spawn_with(move || Ok(ProvStore::new(config)))
    }

    /// Spawn the writer thread over a store recovered from its spool
    /// directory (crash recovery; see [`ProvStore::resume_from_spool`]).
    pub fn spawn_resuming(config: StoreConfig) -> Self {
        Self::spawn_with(move || ProvStore::resume_from_spool(config))
    }

    fn spawn_with<F>(make: F) -> Self
    where
        F: FnOnce() -> Result<ProvStore, StoreError> + Send + 'static,
    {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        let (sender, receiver) = unbounded();
        let (done_tx, done_rx) = unbounded();
        let abandoned = Arc::new(AtomicBool::new(false));
        let fence = Arc::clone(&abandoned);
        let pending = Arc::new(AtomicU64::new(0));
        let drained = Arc::clone(&pending);
        let handle = std::thread::spawn(move || {
            let result = (|| {
                let mut store = make()?;
                while let Ok(msg) = receiver.recv() {
                    if matches!(msg, WriterMsg::Ingest { .. }) {
                        drained.fetch_sub(1, Ordering::Relaxed);
                    }
                    // Fence: once finish_timeout has given up on us, stop
                    // ingesting (and stop touching the spool) at the next
                    // batch boundary. See "Abandonment invariant" above.
                    if fence.load(Ordering::Acquire) {
                        break;
                    }
                    match msg {
                        WriterMsg::Ingest {
                            superstep,
                            pred,
                            tuples,
                        } => store.ingest(superstep, &pred, tuples)?,
                        WriterMsg::Finish => break,
                    }
                }
                // Final pack so the handed-back store reports fully
                // encoded bytes and later spills never race a pending
                // buffer.
                store.pack_all();
                Ok(store)
            })();
            let _ = done_tx.send(result);
        });
        StoreWriter {
            sender,
            done: done_rx,
            handle,
            abandoned,
            pending,
        }
    }

    /// A cloneable ingestion handle.
    pub fn sender(&self) -> StoreSender {
        StoreSender {
            sender: self.sender.clone(),
            pending: Arc::clone(&self.pending),
        }
    }

    /// Drain the queue and return the finished store, waiting at most
    /// [`DEFAULT_FINISH_TIMEOUT`]. The first ingestion error (for
    /// example a spill IO failure) is returned here.
    pub fn finish(self) -> Result<ProvStore, StoreError> {
        self.finish_timeout(DEFAULT_FINISH_TIMEOUT)
    }

    /// Drain the queue with an explicit deadline. On timeout the writer
    /// thread is abandoned (it holds only its channel endpoints) and a
    /// typed error is returned instead of blocking forever.
    pub fn finish_timeout(self, timeout: Duration) -> Result<ProvStore, StoreError> {
        // The writer may already be gone (errored out); the Finish send
        // then fails, but the result channel still holds its report.
        let _ = self.sender.send(WriterMsg::Finish);
        match self.done.recv_timeout(timeout) {
            Ok(result) => {
                let _ = self.handle.join();
                result
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                // Fence the writer before abandoning it so it stops
                // ingesting at its next batch boundary instead of racing
                // a subsequent resume_from_spool indefinitely.
                self.abandoned
                    .store(true, std::sync::atomic::Ordering::Release);
                obs_handles::writers_abandoned().inc();
                let pending = self.pending.load(std::sync::atomic::Ordering::Relaxed);
                trace::event(
                    Level::Warn,
                    "store",
                    "writer_abandoned",
                    &[
                        ("timeout_ms", (timeout.as_millis() as u64).into()),
                        ("pending_batches", pending.into()),
                    ],
                );
                Err(StoreError::FinishTimeout { timeout, pending })
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(StoreError::WriterDead),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariadne_pql::Value;

    fn tuple(v: u64, i: i64) -> Tuple {
        vec![Value::Id(v), Value::Int(i)]
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ariadne-{tag}-{}", std::process::id()))
    }

    #[test]
    fn ingest_and_layer_roundtrip() {
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store
            .ingest(0, "superstep", vec![tuple(1, 0), tuple(2, 0)])
            .unwrap();
        store.ingest(1, "superstep", vec![tuple(1, 1)]).unwrap();
        assert_eq!(store.tuple_count(), 3);
        assert_eq!(store.max_superstep(), Some(1));
        let l0 = store.layer(0).unwrap();
        assert_eq!(l0.len(), 1);
        assert_eq!(l0[0].1.len(), 2);
        assert_eq!(store.layer(1).unwrap()[0].1, vec![tuple(1, 1)]);
        assert!(store.layer(9).unwrap().is_empty());
    }

    #[test]
    fn multiple_batches_per_segment() {
        let mut store = ProvStore::new(StoreConfig::in_memory());
        for k in 0..5 {
            store.ingest(0, "value", vec![tuple(k, 0)]).unwrap();
        }
        let layer = store.layer(0).unwrap();
        assert_eq!(layer[0].1.len(), 5);
        assert_eq!(layer[0].1[4], tuple(4, 0));
    }

    #[test]
    fn spilling_keeps_data_readable() {
        let dir = temp_dir("spill");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(StoreConfig::spilling(64, dir.clone()));
        for s in 0..4u32 {
            store
                .ingest(s, "value", (0..20).map(|v| tuple(v, s as i64)).collect())
                .unwrap();
        }
        assert!(store.spills() > 0, "nothing spilled");
        assert!(store.disk_bytes() > 0);
        // All layers still fully readable.
        for s in 0..4u32 {
            let layer = store.layer(s).unwrap();
            assert_eq!(layer[0].1.len(), 20, "layer {s}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spilled_segment_accepts_more_data() {
        let dir = temp_dir("spill2");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(StoreConfig::spilling(32, dir.clone()));
        store
            .ingest(0, "value", (0..20).map(|v| tuple(v, 0)).collect())
            .unwrap();
        assert!(store.spills() > 0);
        // Same segment gets more tuples after spilling.
        store.ingest(0, "value", vec![tuple(99, 0)]).unwrap();
        let layer = store.layer(0).unwrap();
        assert_eq!(layer[0].1.len(), 21);
        assert!(layer[0].1.contains(&tuple(99, 0)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spool_dir_created_lazily() {
        let dir = temp_dir("lazy-spool");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(StoreConfig::spilling(1 << 20, dir.clone()));
        store.ingest(0, "value", vec![tuple(1, 1)]).unwrap();
        assert!(!dir.exists(), "no spill yet, so no directory yet");
        let mut store = ProvStore::new(StoreConfig::spilling(8, dir.clone()));
        store
            .ingest(0, "value", (0..20).map(|v| tuple(v, 0)).collect())
            .unwrap();
        assert!(dir.exists(), "first spill creates the directory");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_spill_file_is_typed_error() {
        let dir = temp_dir("corrupt-spill");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(StoreConfig::spilling(8, dir.clone()));
        store
            .ingest(0, "value", (0..20).map(|v| tuple(v, 0)).collect())
            .unwrap();
        assert!(store.spills() > 0);
        // Flip a byte inside the spilled payload.
        let path = segment_path(&dir, 0, "value");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match store.layer(0) {
            Err(StoreError::Corrupt { path: p, detail }) => {
                assert_eq!(p, path);
                assert!(
                    detail.contains("CRC") || detail.contains("magic") || detail.contains("footer"),
                    "unexpected detail: {detail}"
                );
            }
            other => panic!("expected corrupt error, got {other:?}"),
        }
        // Truncation is also typed, not a panic.
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(matches!(store.layer(0), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_from_spool_seals_and_dedups() {
        let dir = temp_dir("resume-spool");
        std::fs::remove_dir_all(&dir).ok();
        // First incarnation spills two layers fully, then "crashes".
        let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
        store
            .ingest(0, "value", (0..10).map(|v| tuple(v, 0)).collect())
            .unwrap();
        store
            .ingest(1, "value", (0..10).map(|v| tuple(v, 1)).collect())
            .unwrap();
        let persisted = store.tuple_count();
        drop(store);

        // Second incarnation recovers the spool and replays layer 0 and
        // 1 (idempotent) plus a genuinely new layer 2.
        let mut store = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
        assert_eq!(store.tuple_count(), persisted);
        assert_eq!(store.sealed_segments(), 2);
        store
            .ingest(0, "value", (0..10).map(|v| tuple(v, 0)).collect())
            .unwrap();
        store
            .ingest(1, "value", (0..10).map(|v| tuple(v, 1)).collect())
            .unwrap();
        store
            .ingest(2, "value", (0..10).map(|v| tuple(v, 2)).collect())
            .unwrap();
        assert_eq!(store.tuple_count(), persisted + 10, "replay deduplicated");
        for s in 0..3u32 {
            assert_eq!(store.layer(s).unwrap()[0].1.len(), 10, "layer {s}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_from_missing_spool_is_empty_store() {
        let dir = temp_dir("resume-missing");
        std::fs::remove_dir_all(&dir).ok();
        let store = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir)).unwrap();
        assert_eq!(store.tuple_count(), 0);
    }

    #[test]
    fn injected_spill_failure_is_typed() {
        let dir = temp_dir("spill-fault");
        std::fs::remove_dir_all(&dir).ok();
        let plan = FaultPlan::new();
        plan.fail_spill_write(0);
        let mut store =
            ProvStore::new(StoreConfig::spilling(8, dir.clone()).with_fault(Arc::clone(&plan)));
        let err = store
            .ingest(0, "value", (0..20).map(|v| tuple(v, 0)).collect())
            .unwrap_err();
        assert!(matches!(err, StoreError::InjectedSpillFailure { attempt: 0 }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn to_database_loads_everything() {
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store.ingest(0, "superstep", vec![tuple(1, 0)]).unwrap();
        store
            .ingest(
                2,
                "value",
                vec![vec![Value::Id(1), Value::Float(0.5), Value::Int(2)]],
            )
            .unwrap();
        let db = store.to_database().unwrap();
        assert_eq!(db.len("superstep"), 1);
        assert_eq!(db.len("value"), 1);
    }

    #[test]
    fn writer_thread_roundtrip() {
        let writer = StoreWriter::spawn(StoreConfig::in_memory());
        let sender = writer.sender();
        let s2 = sender.clone();
        std::thread::spawn(move || {
            s2.ingest(0, "superstep", vec![tuple(7, 0)]);
        })
        .join()
        .unwrap();
        sender.ingest(1, "superstep", vec![tuple(7, 1)]);
        let store = writer.finish().unwrap();
        assert_eq!(store.tuple_count(), 2);
    }

    #[test]
    fn writer_surfaces_spill_failure_at_finish() {
        let dir = temp_dir("writer-fault");
        std::fs::remove_dir_all(&dir).ok();
        let plan = FaultPlan::new();
        plan.fail_spill_write(0);
        let writer =
            StoreWriter::spawn(StoreConfig::spilling(8, dir.clone()).with_fault(Arc::clone(&plan)));
        let sender = writer.sender();
        sender.ingest(0, "value", (0..20).map(|v| tuple(v, 0)).collect());
        // Further sends after the writer died are silently dropped, not
        // a panic on the hot path.
        sender.ingest(1, "value", vec![tuple(1, 1)]);
        match writer.finish() {
            Err(StoreError::InjectedSpillFailure { attempt: 0 }) => {}
            other => panic!("expected injected spill failure, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: the old `layer` range end `(superstep + 1, "")`
    /// overflowed (panicked in debug, wrapped to an empty range in
    /// release) at `superstep == u32::MAX`. The explicit bound keeps the
    /// final layer readable.
    #[test]
    fn layer_at_u32_max_boundary() {
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store.ingest(u32::MAX - 1, "value", vec![tuple(1, -2)]).unwrap();
        store.ingest(u32::MAX, "value", vec![tuple(2, -1)]).unwrap();
        store.ingest(u32::MAX, "superstep", vec![tuple(2, -1)]).unwrap();
        assert_eq!(store.max_superstep(), Some(u32::MAX));
        let last = store.layer(u32::MAX).unwrap();
        assert_eq!(last.len(), 2, "both final-layer segments visible");
        assert_eq!(last[1].1, vec![tuple(2, -1)]);
        // The penultimate layer's range must not leak into the last one.
        let prev = store.layer(u32::MAX - 1).unwrap();
        assert_eq!(prev.len(), 1);
        assert_eq!(prev[0].1, vec![tuple(1, -2)]);
        // Whole-store load also covers the boundary layer (no 0..=max
        // scan that would spin for 4 billion iterations).
        let db = store.to_database().unwrap();
        assert_eq!(db.len("value"), 2);
        assert_eq!(db.len("superstep"), 1);
    }

    #[test]
    fn layer_filtered_skips_segments_without_decoding() {
        let dir = temp_dir("layer-filter");
        std::fs::remove_dir_all(&dir).ok();
        // Budget 0: every batch spills, so a skipped segment is a
        // skipped *disk read*, not just a skipped decode.
        let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
        store
            .ingest(0, "value", (0..8).map(|v| tuple(v, 0)).collect())
            .unwrap();
        store
            .ingest(0, "send_message", (0..8).map(|v| tuple(v, 0)).collect())
            .unwrap();
        store.ingest(0, "superstep", vec![tuple(1, 0)]).unwrap();

        let wanted: std::collections::BTreeSet<String> =
            ["value", "superstep"].iter().map(|s| s.to_string()).collect();
        let read = store.layer_filtered(0, Some(&wanted)).unwrap();
        assert_eq!(read.segments_read, 2);
        assert_eq!(read.segments_skipped, 1);
        assert!(read.bytes_read > 0 && read.bytes_skipped > 0);
        let preds: Vec<&str> = read.tuples.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(preds, ["superstep", "value"], "predicate order");
        // Unfiltered read sees everything and skips nothing.
        let full = store.layer_filtered(0, None).unwrap();
        assert_eq!(full.segments_read, 3);
        assert_eq!(full.segments_skipped, 0);
        assert_eq!(
            full.bytes_read,
            read.bytes_read + read.bytes_skipped,
            "skip accounting partitions the layer's bytes"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_index_reports_counts_without_decoding() {
        let dir = temp_dir("seg-index");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
        store
            .ingest(0, "value", (0..5).map(|v| tuple(v, 0)).collect())
            .unwrap();
        store.ingest(1, "value", vec![tuple(9, 1)]).unwrap();
        let index: Vec<SegmentInfo> = store.segment_index().collect();
        assert_eq!(index.len(), 2);
        assert_eq!((index[0].superstep, index[0].tuples), (0, 5));
        assert_eq!((index[1].superstep, index[1].tuples), (1, 1));
        assert!(index.iter().all(|s| s.spilled && !s.sealed));
        assert_eq!(
            index.iter().map(|s| s.bytes).sum::<usize>(),
            store.byte_size(),
            "index bytes reconcile with store accounting"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Abandoned-writer fence: a timed-out finish leaves the writer
    /// thread holding the spool, but the fence stops it at the next
    /// batch boundary, so a later [`ProvStore::resume_from_spool`]
    /// either recovers whole checksummed records or fails with a typed
    /// error — never panics, never silently corrupts.
    #[test]
    fn abandoned_writer_never_corrupts_spool() {
        let dir = temp_dir("abandon");
        std::fs::remove_dir_all(&dir).ok();
        let plan = FaultPlan::new();
        // Pin the writer inside its first ingest so the 10ms finish
        // deadline deterministically fires while batches are queued.
        plan.stall_ingest(0, 400);
        let writer = StoreWriter::spawn(
            StoreConfig::spilling(0, dir.clone()).with_fault(Arc::clone(&plan)),
        );
        let sender = writer.sender();
        for k in 0..32 {
            sender.ingest(0, "value", vec![tuple(k, 0)]);
        }
        match writer.finish_timeout(Duration::from_millis(10)) {
            Err(StoreError::FinishTimeout { pending, .. }) => {
                assert!(pending > 0, "timeout must report the queue backlog");
            }
            other => panic!("expected finish timeout, got {other:?}"),
        }
        // Give the abandoned thread time to clear its stall, observe the
        // fence and stop.
        std::thread::sleep(Duration::from_millis(900));
        assert_eq!(
            plan.ingest_attempts(),
            1,
            "fence must stop the writer at the first batch boundary"
        );
        match ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())) {
            Ok(store) => {
                // Whatever was persisted is whole and decodable.
                for s in store.segment_index().map(|s| s.superstep).collect::<Vec<_>>() {
                    store.layer(s).unwrap();
                }
                assert!(store.tuple_count() <= 32);
            }
            Err(StoreError::Corrupt { .. }) | Err(StoreError::Io { .. }) => {
                // The residual in-flight-write race, surfaced typed.
            }
            Err(other) => panic!("untyped failure after abandonment: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A v1 spool written by the pr4-era code (format = V1) reopens and
    /// decodes under a v2-default store, and the resumed capture appends
    /// v2 records into the same logical segments.
    #[test]
    fn v1_spool_resumes_under_v2_store() {
        let dir = temp_dir("v1-compat");
        std::fs::remove_dir_all(&dir).ok();
        let mut old =
            ProvStore::new(StoreConfig::spilling(0, dir.clone()).with_format(SegmentFormat::V1));
        old.ingest(0, "value", (0..10).map(|v| tuple(v, 0)).collect())
            .unwrap();
        old.ingest(1, "value", (0..10).map(|v| tuple(v, 1)).collect())
            .unwrap();
        drop(old);

        // New incarnation writes v2 by default.
        let mut store = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
        assert_eq!(store.config.format, SegmentFormat::V2);
        assert_eq!(store.tuple_count(), 20);
        assert_eq!(store.sealed_segments(), 2);
        // Pure-v1 segments report no column stats.
        assert!(store.segment_index().all(|s| s.columns.is_empty()));
        // Replayed layers 0/1 are idempotent no-ops; layer 2 is new and
        // lands as a packed v2 record in the same spool.
        for s in 0..2u32 {
            store
                .ingest(s, "value", (0..10).map(|v| tuple(v, s as i64)).collect())
                .unwrap();
        }
        store
            .ingest(2, "value", (0..10).map(|v| tuple(v, 2)).collect())
            .unwrap();
        for s in 0..3u32 {
            assert_eq!(store.layer(s).unwrap()[0].1.len(), 10, "layer {s}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A segment file can hold v1 records followed by v2 records; the
    /// per-record version byte dispatches the decoder.
    #[test]
    fn mixed_v1_v2_records_in_one_segment() {
        let dir = temp_dir("mixed-records");
        std::fs::remove_dir_all(&dir).ok();
        let mut v1 =
            ProvStore::new(StoreConfig::spilling(0, dir.clone()).with_format(SegmentFormat::V1));
        v1.ingest(0, "value", (0..5).map(|v| tuple(v, 0)).collect())
            .unwrap();
        drop(v1);
        // Append v2 records to the same (superstep, pred) segment file.
        // (Unsealed: reopened via a plain new store that spills to the
        // same path.)
        let mut v2 = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
        v2.ingest(0, "value", (5..12).map(|v| tuple(v, 0)).collect())
            .unwrap();
        drop(v2);
        let store = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
        let layer = store.layer(0).unwrap();
        assert_eq!(layer[0].1.len(), 12);
        assert_eq!(layer[0].1[11], tuple(11, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// v2 and v1 stores hold bit-identical logical content; the v2
    /// encoded size is strictly smaller on a redundant workload.
    #[test]
    fn v2_roundtrip_matches_v1_and_shrinks() {
        let mk = |format| {
            let mut store = ProvStore::new(StoreConfig::in_memory().with_format(format));
            for s in 0..4u32 {
                for chunk in 0..8u64 {
                    store
                        .ingest(
                            s,
                            "value",
                            (chunk * 64..(chunk + 1) * 64)
                                .map(|x| {
                                    vec![
                                        Value::Id(x),
                                        Value::Float(1.0 / (x + 1) as f64),
                                        Value::Int(s as i64),
                                    ]
                                })
                                .collect(),
                        )
                        .unwrap();
                    store
                        .ingest(s, "superstep", (0..16).map(|x| tuple(x, s as i64)).collect())
                        .unwrap();
                }
            }
            store.pack_all();
            store
        };
        let v1 = mk(SegmentFormat::V1);
        let v2 = mk(SegmentFormat::V2);
        assert_eq!(v1.tuple_count(), v2.tuple_count());
        for s in 0..4u32 {
            assert_eq!(v1.layer(s).unwrap(), v2.layer(s).unwrap(), "layer {s}");
        }
        assert!(
            (v2.byte_size() as f64) < 0.7 * v1.byte_size() as f64,
            "v2 {} not ≥30% below v1 {}",
            v2.byte_size(),
            v1.byte_size()
        );
        // Column stats reconcile: encoded ≤ segment bytes, decoded > 0.
        let with_cols = v2
            .segment_index()
            .filter(|s| !s.columns.is_empty())
            .count();
        assert!(with_cols > 0, "packed segments expose column stats");
        for info in v2.segment_index() {
            for col in &info.columns {
                assert!(col.decoded_bytes >= col.encoded_bytes / 2, "sane ratio");
            }
        }
    }

    /// v3 holds bit-identical logical content to v2, spills smaller on
    /// a compressible workload (LZ applied per record, only when it
    /// wins), and round-trips through spill + resume.
    #[test]
    fn v3_roundtrip_matches_v2_and_compresses() {
        let mk = |format, dir: &PathBuf| {
            std::fs::remove_dir_all(dir).ok();
            let mut store =
                ProvStore::new(StoreConfig::spilling(0, dir.clone()).with_format(format));
            for s in 0..3u32 {
                // Runs of repeated payloads: textbook LZ fodder.
                store
                    .ingest(
                        s,
                        "value",
                        (0..256u64)
                            .map(|x| vec![Value::Id(x / 16), Value::Int((s as i64) % 2)])
                            .collect(),
                    )
                    .unwrap();
            }
            store
        };
        let d2 = temp_dir("v3-cmp-v2");
        let d3 = temp_dir("v3-cmp-v3");
        let v2 = mk(SegmentFormat::V2, &d2);
        let v3 = mk(SegmentFormat::V3, &d3);
        assert_eq!(v2.tuple_count(), v3.tuple_count());
        for s in 0..3u32 {
            assert_eq!(v2.layer(s).unwrap(), v3.layer(s).unwrap(), "layer {s}");
        }
        assert!(
            v3.disk_bytes() < v2.disk_bytes(),
            "v3 {} not below v2 {} on a compressible workload",
            v3.disk_bytes(),
            v2.disk_bytes()
        );
        drop(v3);
        // ARSZ frames survive a resume and read back identically.
        let resumed = ProvStore::resume_from_spool(
            StoreConfig::spilling(0, d3.clone()).with_format(SegmentFormat::V3),
        )
        .unwrap();
        assert_eq!(resumed.tuple_count(), v2.tuple_count());
        for s in 0..3u32 {
            assert_eq!(resumed.layer(s).unwrap(), v2.layer(s).unwrap(), "layer {s}");
        }
        std::fs::remove_dir_all(&d2).ok();
        std::fs::remove_dir_all(&d3).ok();
    }

    /// Pending (not yet packed) rows are visible to reads, masked reads
    /// included, and the byte partition invariant holds throughout.
    #[test]
    fn pending_rows_visible_before_pack() {
        let mut store = ProvStore::new(StoreConfig::in_memory());
        store
            .ingest(0, "value", (0..10).map(|v| tuple(v, 0)).collect())
            .unwrap();
        store.ingest(0, "superstep", vec![tuple(1, 0)]).unwrap();
        assert!(store.byte_size() > 0, "pending rows counted");
        let full = store.layer_filtered(0, None).unwrap();
        assert_eq!(full.tuples.len(), 2);
        let wanted: std::collections::BTreeSet<String> =
            std::iter::once("value".to_string()).collect();
        let read = store.layer_filtered(0, Some(&wanted)).unwrap();
        assert_eq!(read.tuples[0].1.len(), 10);
        assert_eq!(
            full.bytes_read,
            read.bytes_read + read.bytes_skipped,
            "partition invariant with pending rows"
        );
        // Masked read of pending rows yields Unit in dropped positions.
        let filter = LayerFilter::for_preds(wanted).with_mask("value", vec![true, false]);
        let masked = store.layer_read(0, &filter).unwrap();
        assert!(masked.tuples[0].1.iter().all(|t| t[1] == Value::Unit));
        // Packing changes nothing observable but the encoding.
        let before = store.layer(0).unwrap();
        store.pack_all();
        assert_eq!(store.layer(0).unwrap(), before);
    }

    /// Column-masked reads skip v2 column blocks without materializing
    /// them, and the same mask yields identical tuples on v1 records.
    #[test]
    fn masked_reads_skip_columns_identically_across_formats() {
        let mk = |format| {
            let mut store = ProvStore::new(StoreConfig::in_memory().with_format(format));
            store
                .ingest(
                    3,
                    "send_message",
                    (0..600)
                        .map(|x| {
                            vec![
                                Value::Id(x),
                                Value::Id(x + 1),
                                Value::str("heavy-payload-string"),
                                Value::Int(3),
                            ]
                        })
                        .collect(),
                )
                .unwrap();
            store.pack_all();
            store
        };
        let v1 = mk(SegmentFormat::V1);
        let v2 = mk(SegmentFormat::V2);
        let filter = LayerFilter::all().with_mask("send_message", vec![true, true, false, true]);
        let r1 = v1.layer_read(3, &filter).unwrap();
        let r2 = v2.layer_read(3, &filter).unwrap();
        assert_eq!(r1.tuples, r2.tuples, "masked decode identical v1 vs v2");
        assert!(r1.tuples[0].1.iter().all(|t| t[2] == Value::Unit));
        // Both formats count the masked column; only v2 skips whole
        // encoded blocks and so byte-accounts the savings.
        assert!(r1.cols_skipped >= 1);
        assert_eq!(r1.col_bytes_skipped, 0);
        assert!(r2.cols_skipped >= 1);
        assert!(r2.col_bytes_skipped > 0);
        // The unmasked reads agree too.
        assert_eq!(v1.layer(3).unwrap(), v2.layer(3).unwrap());
    }

    /// Packing is forced before any spill: the spool never holds a
    /// partial pending buffer, only whole checksummed records.
    #[test]
    fn spill_packs_pending_first() {
        let dir = temp_dir("spill-pack");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(StoreConfig::spilling(64, dir.clone()));
        store
            .ingest(0, "value", (0..40).map(|v| tuple(v, 0)).collect())
            .unwrap();
        assert!(store.spills() > 0);
        // Everything readable from a fresh resume (validates records).
        let resumed = ProvStore::resume_from_spool(StoreConfig::spilling(64, dir.clone())).unwrap();
        let recovered: usize = resumed.layer(0).unwrap().iter().map(|(_, t)| t.len()).sum();
        assert_eq!(recovered, 40);
        // Resumed v2 segments rebuild their column stats from disk.
        assert!(resumed.segment_index().any(|s| !s.columns.is_empty()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_accounting_reports_encoded_size() {
        let mut store = ProvStore::new(StoreConfig::in_memory());
        let before = store.byte_size();
        store
            .ingest(
                0,
                "value",
                vec![vec![Value::Id(1), Value::str("payload"), Value::Int(0)]],
            )
            .unwrap();
        let after = store.byte_size();
        assert!(after > before);
        // Encoded size is compact: id (9) + str (5 + 7) + int (9) +
        // framing, well under 100 bytes.
        assert!(after - before < 100, "{}", after - before);
        store.ingest(0, "value", vec![]).unwrap(); // empty batch is a no-op
        assert_eq!(store.tuple_count(), 1);
    }

    /// [`Durability::Seal`] writes only atomic `.seal` files — never an
    /// append tail — and repeated spills of the same segment rewrite the
    /// sealed file with the full content.
    #[test]
    fn seal_durability_writes_only_atomic_files() {
        let dir = temp_dir("seal-atomic");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(
            StoreConfig::spilling(0, dir.clone()).with_durability(Durability::Seal),
        );
        store
            .ingest(0, "value", (0..10).map(|v| tuple(v, 0)).collect())
            .unwrap();
        store
            .ingest(0, "value", (10..20).map(|v| tuple(v, 0)).collect())
            .unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().all(|n| n.ends_with(".seal")),
            "only sealed files expected, got {names:?}"
        );
        assert_eq!(names.len(), 1, "rewrite replaces, never accumulates");
        let resumed = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
        assert_eq!(resumed.layer(0).unwrap()[0].1.len(), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A torn (crash-truncated) unsealed tail is salvaged on resume: the
    /// valid prefix survives, the original bytes land in a `.torn`
    /// sidecar, and the salvage is counted.
    #[test]
    fn torn_unsealed_tail_salvaged_on_resume() {
        let dir = temp_dir("torn-salvage");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
        store
            .ingest(0, "value", (0..10).map(|v| tuple(v, 0)).collect())
            .unwrap();
        store
            .ingest(0, "value", (10..20).map(|v| tuple(v, 0)).collect())
            .unwrap();
        drop(store);
        let path = segment_path(&dir, 0, "value");
        let bytes = std::fs::read(&path).unwrap();
        // Cut into the middle of the second record: a torn tail.
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let store = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
        assert_eq!(store.salvaged_records(), 1, "the intact first record");
        assert_eq!(store.layer(0).unwrap()[0].1.len(), 10, "valid prefix kept");
        let sidecar = torn_sidecar_path(&path);
        assert_eq!(
            std::fs::read(&sidecar).unwrap().len(),
            bytes.len() - 7,
            "sidecar preserves the pre-salvage bytes"
        );
        // The salvaged file itself re-verifies clean.
        assert!(scrub_spool(&dir, false).unwrap().is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Damage in a sealed (atomically renamed) segment is never a torn
    /// tail: resume fails typed instead of salvaging.
    #[test]
    fn sealed_segment_damage_is_strict() {
        let dir = temp_dir("seal-strict");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(
            StoreConfig::spilling(0, dir.clone()).with_durability(Durability::Seal),
        );
        store
            .ingest(0, "value", (0..10).map(|v| tuple(v, 0)).collect())
            .unwrap();
        drop(store);
        let path = sealed_segment_path(&dir, 0, "value");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(matches!(
            ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Degraded reads skip damaged records, resync to the next valid
    /// one, and report exactly what was lost; Strict reads of the same
    /// store fail typed.
    #[test]
    fn degraded_read_skips_and_reports_damage() {
        let dir = temp_dir("degraded-read");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
        store
            .ingest(0, "value", (0..10).map(|v| tuple(v, 0)).collect())
            .unwrap();
        store
            .ingest(0, "value", (10..20).map(|v| tuple(v, 0)).collect())
            .unwrap();
        let path = segment_path(&dir, 0, "value");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[RECORD_OVERHEAD / 2] ^= 0xFF; // inside the first record's header
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.layer(0),
            Err(StoreError::Corrupt { .. })
        ));
        let read = store
            .layer_read_with(0, &LayerFilter::all(), ReadPolicy::Degraded)
            .unwrap();
        assert_eq!(read.tuples[0].1.len(), 10, "second record survives");
        assert_eq!(read.degradation.records_skipped, 1);
        assert!(read.degradation.bytes_skipped > 0);
        assert!(!read.degradation.details.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Scrub detects an injected bit flip; repair quarantines the file;
    /// the store's reads then behave per policy: Strict fails typed with
    /// [`StoreError::Quarantined`], Degraded reports exactly the loss,
    /// and a fresh resume opens strict-clean.
    #[test]
    fn scrub_detects_and_repair_quarantines() {
        let dir = temp_dir("scrub-repair");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
        store
            .ingest(0, "value", (0..10).map(|v| tuple(v, 0)).collect())
            .unwrap();
        store
            .ingest(1, "value", (0..10).map(|v| tuple(v, 1)).collect())
            .unwrap();
        let path = segment_path(&dir, 0, "value");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        // Detection pass: damage reported, nothing moved.
        let report = store.scrub(false).unwrap();
        assert_eq!(report.damage.len(), 1);
        assert_eq!(report.damage[0].action, ScrubAction::None);
        assert!(path.exists());

        // Repair pass: the corrupt file moves into quarantine/.
        let report = store.scrub(true).unwrap();
        assert_eq!(report.damage.len(), 1);
        assert_eq!(report.damage[0].action, ScrubAction::Quarantined);
        assert!(!path.exists(), "corrupt file moved out of the spool");
        assert_eq!(store.quarantined_segments(), 1);
        let json = report.to_json();
        assert!(json.contains("\"action\":\"quarantined\""), "{json}");

        // Undamaged layer 1 reads clean; quarantined layer 0 is typed
        // under Strict and exact-loss-reported under Degraded.
        assert_eq!(store.layer(1).unwrap()[0].1.len(), 10);
        assert!(matches!(
            store.layer(0),
            Err(StoreError::Quarantined { .. })
        ));
        let read = store
            .layer_read_with(0, &LayerFilter::all(), ReadPolicy::Degraded)
            .unwrap();
        assert_eq!(read.degradation.segments_skipped, 1);
        let remaining: usize = read.tuples.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(remaining, 0, "quarantined layer has no readable tuples");

        // A fresh resume sees the quarantine and opens without error.
        let resumed = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
        assert_eq!(resumed.quarantined_segments(), 1);
        assert_eq!(resumed.layer(1).unwrap()[0].1.len(), 10);
        assert!(matches!(
            resumed.layer(0),
            Err(StoreError::Quarantined { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Offline scrub of a spool directory: a torn tail is detected, a
    /// repair salvages it, and a second scrub comes back clean.
    #[test]
    fn scrub_spool_salvages_torn_tail_offline() {
        let dir = temp_dir("scrub-offline");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
        store
            .ingest(0, "value", (0..10).map(|v| tuple(v, 0)).collect())
            .unwrap();
        store
            .ingest(0, "value", (10..20).map(|v| tuple(v, 0)).collect())
            .unwrap();
        drop(store);
        let path = segment_path(&dir, 0, "value");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let report = scrub_spool(&dir, false).unwrap();
        assert_eq!(report.damage.len(), 1);
        assert!(report.damage[0].torn);
        assert_eq!(report.records_verified, 1);

        let report = scrub_spool(&dir, true).unwrap();
        assert_eq!(report.damage[0].action, ScrubAction::Salvaged);
        assert!(torn_sidecar_path(&path).exists());

        let report = scrub_spool(&dir, false).unwrap();
        assert!(report.is_clean(), "post-repair scrub: {:?}", report.damage);
        let resumed = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
        assert_eq!(resumed.layer(0).unwrap()[0].1.len(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// [`OnSpillError::DropCapture`]: a spill failure poisons the store
    /// instead of failing ingest; later batches are dropped and counted;
    /// Strict reads refuse the poisoned store with the original error
    /// chained; Degraded reads succeed and report the loss.
    #[test]
    fn drop_capture_poisons_instead_of_failing() {
        let dir = temp_dir("drop-capture");
        std::fs::remove_dir_all(&dir).ok();
        let plan = FaultPlan::new();
        plan.enospc_after_bytes(0);
        let mut store = ProvStore::new(
            StoreConfig::spilling(8, dir.clone())
                .with_fault(Arc::clone(&plan))
                .with_on_spill_error(OnSpillError::DropCapture),
        );
        // The spill fails (injected ENOSPC) but ingest still succeeds.
        store
            .ingest(0, "value", (0..20).map(|v| tuple(v, 0)).collect())
            .unwrap();
        assert!(store.poisoned().is_some());
        store.ingest(1, "value", vec![tuple(9, 1)]).unwrap();
        assert_eq!(store.dropped_batches(), 1);
        assert_eq!(store.dropped_tuples(), 1);
        // Strict read: typed degradation chaining the spill error.
        match store.layer(0) {
            Err(e @ StoreError::Degraded { .. }) => {
                use std::error::Error;
                assert!(e.source().is_some(), "poison cause must chain");
            }
            other => panic!("expected degraded error, got {other:?}"),
        }
        assert!(matches!(
            store.to_database(),
            Err(StoreError::Degraded { .. })
        ));
        // Degraded read: the in-memory records survive (the failed spill
        // restored them) and the poisoning is reported.
        let read = store
            .layer_read_with(0, &LayerFilter::all(), ReadPolicy::Degraded)
            .unwrap();
        assert_eq!(read.tuples[0].1.len(), 20);
        assert!(!read.degradation.is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Transient IO failures (interrupted syscalls) are retried with
    /// backoff; the spill succeeds and the data round-trips.
    #[test]
    fn transient_spill_failures_are_retried() {
        let dir = temp_dir("transient-retry");
        std::fs::remove_dir_all(&dir).ok();
        let plan = FaultPlan::new();
        plan.transient_io_failures(2);
        let mut store =
            ProvStore::new(StoreConfig::spilling(0, dir.clone()).with_fault(Arc::clone(&plan)));
        store
            .ingest(0, "value", (0..10).map(|v| tuple(v, 0)).collect())
            .unwrap();
        assert!(store.spills() > 0, "spill succeeded after retries");
        assert_eq!(store.layer(0).unwrap()[0].1.len(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Injected ENOSPC under the default [`OnSpillError::Abort`] policy
    /// is a typed, non-retried error naming the segment path.
    #[test]
    fn enospc_aborts_typed_by_default() {
        let dir = temp_dir("enospc-abort");
        std::fs::remove_dir_all(&dir).ok();
        let plan = FaultPlan::new();
        plan.enospc_after_bytes(0);
        let mut store =
            ProvStore::new(StoreConfig::spilling(8, dir.clone()).with_fault(Arc::clone(&plan)));
        let err = store
            .ingest(0, "value", (0..20).map(|v| tuple(v, 0)).collect())
            .unwrap_err();
        match err {
            StoreError::Io { path, source } => {
                assert_eq!(path, segment_path(&dir, 0, "value"));
                assert!(source.to_string().contains("ENOSPC"), "{source}");
            }
            other => panic!("expected typed Io error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An injected torn write fails the spill typed, and the resulting
    /// spool (holding the partial record) salvages back to the last
    /// record boundary on resume.
    #[test]
    fn injected_torn_write_salvages_on_resume() {
        let dir = temp_dir("torn-inject");
        std::fs::remove_dir_all(&dir).ok();
        let plan = FaultPlan::new();
        plan.torn_write_at(1, 5);
        let mut store =
            ProvStore::new(StoreConfig::spilling(0, dir.clone()).with_fault(Arc::clone(&plan)));
        store
            .ingest(0, "value", (0..10).map(|v| tuple(v, 0)).collect())
            .unwrap();
        let err = store
            .ingest(0, "value", (10..20).map(|v| tuple(v, 0)).collect())
            .unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "got {err:?}");
        let resumed = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone())).unwrap();
        assert_eq!(resumed.salvaged_records(), 1);
        assert_eq!(resumed.layer(0).unwrap()[0].1.len(), 10, "clean prefix");
        std::fs::remove_dir_all(&dir).ok();
    }
}
