//! Columnar (v2) within-segment encoding.
//!
//! The v1 record payload serializes a tuple batch row-by-row with a tag
//! byte and a fixed-width payload per value (see [`crate::codec`]). For
//! captured provenance that layout is massively redundant: the
//! `superstep` column of a layer's batch is a single repeated constant,
//! vertex-id columns are near-monotone, predicate payloads repeat a
//! handful of distinct values. The v2 payload transposes a batch into
//! columns and picks a per-column [`Encoding`] at pack time from a cheap
//! single-pass stats sweep:
//!
//! ```text
//! payload := arity u16, rows u32, column*          (little-endian)
//! column  := encoding u8, enc_len u32, enc_len bytes
//!
//! encodings:
//!   0 Plain     rows tagged v1 values, concatenated
//!   1 Const     one tagged v1 value (every row equal)
//!   2 DeltaId   varint(first), then zigzag-varint wrapping deltas
//!   3 DeltaInt  zigzag-varint(first), then zigzag-varint wrapping deltas
//!   4 Dict      u32 dict_len, dict_len tagged v1 values, rows varint idx
//!   5 FloatRaw  rows × 8-byte f64 bit patterns (no tags)
//! ```
//!
//! Every column block is independently skippable via `enc_len`: a reader
//! that does not need a column advances past it without materializing a
//! single [`Value`] (see [`decode_columnar`]'s `mask`). Ragged batches
//! (mixed arities) have no columnar form and fall back to v1 records.
//!
//! Encoding choice is deterministic: among the applicable encodings the
//! smallest encoded size wins, ties broken by ascending tag. Dictionary
//! keys rely on [`Value`]'s total `Eq`/`Hash` (floats compare by bit
//! pattern, so `NaN` payloads are safe dictionary keys).

use crate::codec::{read_value, write_value, CodecError};
use ariadne_pql::{Tuple, Value};
use bytes::{Bytes, BytesMut};
use std::collections::HashMap;

/// Maximum dictionary size considered by the stats pass. Columns with
/// more distinct values than this fall back to Plain/FloatRaw.
pub const DICT_MAX: usize = 256;

/// Upper bound on the cells (`rows × arity`) a single columnar record
/// may materialize. The encoder refuses batches above it (they fall
/// back to the v1 row format, which spends at least one byte per value
/// on disk and so cannot amplify), and the decoder rejects headers
/// claiming more — a corrupt or adversarial 6-byte header must not be
/// able to command an arbitrarily large allocation.
pub const MAX_DECODE_CELLS: usize = 1 << 22;

/// Per-column physical encodings available to the v2 segment format.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Encoding {
    /// Row-major tagged v1 values (the fallback; always applicable).
    Plain = 0,
    /// Every row holds the same value; it is stored once.
    Const = 1,
    /// Monotone-friendly delta chain over `Value::Id` columns.
    DeltaId = 2,
    /// Delta chain over `Value::Int` columns (zigzag for signs).
    DeltaInt = 3,
    /// Low-cardinality dictionary: distinct values once + varint indices.
    Dict = 4,
    /// Untagged 8-byte f64 bit patterns (dense float payloads).
    FloatRaw = 5,
}

impl Encoding {
    /// The wire tag byte.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Decode a wire tag byte.
    pub fn from_tag(tag: u8) -> Option<Encoding> {
        Some(match tag {
            0 => Encoding::Plain,
            1 => Encoding::Const,
            2 => Encoding::DeltaId,
            3 => Encoding::DeltaInt,
            4 => Encoding::Dict,
            5 => Encoding::FloatRaw,
            _ => return None,
        })
    }

    /// Stable lowercase name (metric labels, EXPLAIN-style dumps).
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Plain => "plain",
            Encoding::Const => "const",
            Encoding::DeltaId => "delta_id",
            Encoding::DeltaInt => "delta_int",
            Encoding::Dict => "dict",
            Encoding::FloatRaw => "float_raw",
        }
    }

    /// All encodings, in tag order.
    pub const ALL: [Encoding; 6] = [
        Encoding::Plain,
        Encoding::Const,
        Encoding::DeltaId,
        Encoding::DeltaInt,
        Encoding::Dict,
        Encoding::FloatRaw,
    ];
}

/// Accounting for one encoded column of one packed record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColumnStat {
    /// Physical bytes of the encoded column block (excluding the 5-byte
    /// per-column header).
    pub encoded_bytes: usize,
    /// The bytes the same column would occupy in the row-major v1
    /// encoding (tag + payload per value) — the denominator of the
    /// compression ratio.
    pub decoded_bytes: usize,
}

impl ColumnStat {
    /// Fold another record's column accounting into this one.
    pub fn absorb(&mut self, other: &ColumnStat) {
        self.encoded_bytes += other.encoded_bytes;
        self.decoded_bytes += other.decoded_bytes;
    }
}

/// The outcome of encoding one batch columnar-wise.
#[derive(Debug)]
pub struct ColumnarBatch {
    /// The v2 record payload.
    pub payload: Vec<u8>,
    /// The encoding chosen for each column, in column order.
    pub encodings: Vec<Encoding>,
    /// Per-column byte accounting, in column order.
    pub columns: Vec<ColumnStat>,
}

/// The v1 (row-major, tagged) encoded size of one value.
pub fn v1_value_size(v: &Value) -> usize {
    1 + match v {
        Value::Id(_) | Value::Int(_) | Value::Float(_) => 8,
        Value::Bool(_) => 1,
        Value::Str(s) => 4 + s.len(),
        Value::List(items) => 4 + items.iter().map(v1_value_size).sum::<usize>(),
        Value::Unit => 0,
    }
}

/// The v1 encoded record-payload size of a tuple batch (count prefix,
/// per-tuple arity prefix, tagged values) — what [`crate::codec`]'s
/// `encode_tuples` would produce, without producing it.
pub fn v1_batch_size(tuples: &[Tuple]) -> usize {
    4 + tuples
        .iter()
        .map(|t| 4 + t.iter().map(v1_value_size).sum::<usize>())
        .sum::<usize>()
}

// ---------------------------------------------------------------------
// varint / zigzag primitives
// ---------------------------------------------------------------------

/// Append a LEB128 varint.
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Encoded size of a LEB128 varint without encoding it.
fn varint_len(v: u64) -> usize {
    (64 - u64::leading_zeros(v | 1) as usize).div_ceil(7).max(1)
}

/// Read a LEB128 varint, advancing `off`.
fn get_varint(data: &[u8], off: &mut usize) -> Result<u64, CodecError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*off).ok_or(CodecError::Truncated)?;
        *off += 1;
        if shift >= 64 {
            return Err(CodecError::BadTag(byte));
        }
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

/// Zigzag-map a signed delta into an unsigned varint-friendly value.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Invert [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------
// Column stats + encoding choice
// ---------------------------------------------------------------------

/// One column's stats-pass summary.
struct ColProfile<'a> {
    values: Vec<&'a Value>,
    /// v1 (tagged) size of the column.
    v1_bytes: usize,
    all_id: bool,
    all_int: bool,
    all_float: bool,
    /// Distinct values in first-seen order, capped at [`DICT_MAX`] + 1
    /// (the cap overflow disables Dict/Const).
    distinct: Vec<&'a Value>,
    index: HashMap<&'a Value, u32>,
}

impl<'a> ColProfile<'a> {
    fn build(tuples: &'a [Tuple], col: usize) -> ColProfile<'a> {
        let mut p = ColProfile {
            values: Vec::with_capacity(tuples.len()),
            v1_bytes: 0,
            all_id: true,
            all_int: true,
            all_float: true,
            distinct: Vec::new(),
            index: HashMap::new(),
        };
        for t in tuples {
            let v = &t[col];
            p.v1_bytes += v1_value_size(v);
            p.all_id &= matches!(v, Value::Id(_));
            p.all_int &= matches!(v, Value::Int(_));
            p.all_float &= matches!(v, Value::Float(_));
            if p.distinct.len() <= DICT_MAX && !p.index.contains_key(v) {
                p.index.insert(v, p.distinct.len() as u32);
                p.distinct.push(v);
            }
            p.values.push(v);
        }
        p
    }

    fn dict_applicable(&self) -> bool {
        self.distinct.len() <= DICT_MAX
    }

    /// Deterministically choose the smallest applicable encoding.
    fn choose(&self) -> Encoding {
        let rows = self.values.len();
        let mut best = (self.v1_bytes, Encoding::Plain);
        let mut consider = |size: usize, enc: Encoding| {
            // Strict `<` with ascending-tag iteration = deterministic
            // smallest-size-then-smallest-tag winner.
            if size < best.0 {
                best = (size, enc);
            }
        };
        if self.distinct.len() == 1 {
            consider(v1_value_size(self.distinct[0]), Encoding::Const);
        }
        if self.all_id && rows > 0 {
            let mut size = 0usize;
            let mut prev = 0i64;
            for (k, v) in self.values.iter().enumerate() {
                let Value::Id(x) = v else { unreachable!() };
                let cur = *x as i64;
                size += if k == 0 {
                    varint_len(*x)
                } else {
                    varint_len(zigzag(cur.wrapping_sub(prev)))
                };
                prev = cur;
            }
            consider(size, Encoding::DeltaId);
        }
        if self.all_int && rows > 0 {
            let mut size = 0usize;
            let mut prev = 0i64;
            for (k, v) in self.values.iter().enumerate() {
                let Value::Int(x) = v else { unreachable!() };
                size += if k == 0 {
                    varint_len(zigzag(*x))
                } else {
                    varint_len(zigzag(x.wrapping_sub(prev)))
                };
                prev = *x;
            }
            consider(size, Encoding::DeltaInt);
        }
        if self.dict_applicable() && self.distinct.len() > 1 {
            let dict_bytes: usize = self.distinct.iter().map(|v| v1_value_size(v)).sum();
            let idx_bytes: usize = self
                .values
                .iter()
                .map(|v| varint_len(u64::from(self.index[*v])))
                .sum();
            consider(4 + dict_bytes + idx_bytes, Encoding::Dict);
        }
        if self.all_float {
            consider(8 * rows, Encoding::FloatRaw);
        }
        best.1
    }

    /// Encode the column with `enc` into a fresh block.
    fn encode(&self, enc: Encoding) -> Vec<u8> {
        let mut block = Vec::new();
        match enc {
            Encoding::Plain => {
                let mut buf = BytesMut::with_capacity(self.v1_bytes);
                for v in &self.values {
                    write_value(&mut buf, v);
                }
                block.extend_from_slice(&buf);
            }
            Encoding::Const => {
                let mut buf = BytesMut::new();
                write_value(&mut buf, self.distinct[0]);
                block.extend_from_slice(&buf);
            }
            Encoding::DeltaId => {
                let mut prev = 0i64;
                for (k, v) in self.values.iter().enumerate() {
                    let Value::Id(x) = v else { unreachable!() };
                    let cur = *x as i64;
                    if k == 0 {
                        put_varint(&mut block, *x);
                    } else {
                        put_varint(&mut block, zigzag(cur.wrapping_sub(prev)));
                    }
                    prev = cur;
                }
            }
            Encoding::DeltaInt => {
                let mut prev = 0i64;
                for (k, v) in self.values.iter().enumerate() {
                    let Value::Int(x) = v else { unreachable!() };
                    if k == 0 {
                        put_varint(&mut block, zigzag(*x));
                    } else {
                        put_varint(&mut block, zigzag(x.wrapping_sub(prev)));
                    }
                    prev = *x;
                }
            }
            Encoding::Dict => {
                block.extend_from_slice(&(self.distinct.len() as u32).to_le_bytes());
                let mut buf = BytesMut::new();
                for v in &self.distinct {
                    write_value(&mut buf, v);
                }
                block.extend_from_slice(&buf);
                for v in &self.values {
                    put_varint(&mut block, u64::from(self.index[*v]));
                }
            }
            Encoding::FloatRaw => {
                for v in &self.values {
                    let Value::Float(x) = v else { unreachable!() };
                    block.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
        }
        block
    }
}

// ---------------------------------------------------------------------
// Batch encode / decode
// ---------------------------------------------------------------------

/// Encode a batch of tuples into a v2 columnar payload, or `None` when
/// the batch has no columnar form (empty, zero arity, or ragged
/// arities) — callers then fall back to a v1 record.
pub fn encode_columnar(tuples: &[Tuple]) -> Option<ColumnarBatch> {
    let arity = tuples.first()?.len();
    if arity == 0 || arity > u16::MAX as usize || tuples.len() > u32::MAX as usize {
        return None;
    }
    if tuples.len().saturating_mul(arity) > MAX_DECODE_CELLS {
        return None; // stay decodable: the decoder rejects larger headers
    }
    if tuples.iter().any(|t| t.len() != arity) {
        return None;
    }
    let mut payload = Vec::new();
    payload.extend_from_slice(&(arity as u16).to_le_bytes());
    payload.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
    let mut encodings = Vec::with_capacity(arity);
    let mut columns = Vec::with_capacity(arity);
    for col in 0..arity {
        let profile = ColProfile::build(tuples, col);
        let enc = profile.choose();
        let block = profile.encode(enc);
        payload.push(enc.tag());
        payload.extend_from_slice(&(block.len() as u32).to_le_bytes());
        columns.push(ColumnStat {
            encoded_bytes: block.len(),
            decoded_bytes: profile.v1_bytes,
        });
        payload.extend_from_slice(&block);
        encodings.push(enc);
    }
    Some(ColumnarBatch {
        payload,
        encodings,
        columns,
    })
}

/// Accounting returned by [`decode_columnar`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ColumnarRead {
    /// Per-column byte accounting for the record, in column order
    /// (`decoded_bytes` is only populated for columns that were
    /// materialized; masked-out columns report `0` there).
    pub columns: Vec<ColumnStat>,
    /// Column blocks skipped because of the mask.
    pub cols_skipped: usize,
    /// Encoded bytes of skipped column blocks (never materialized).
    pub col_bytes_skipped: usize,
}

/// Decode a v2 columnar payload into `out`.
///
/// `mask`, when given, is a keep-mask in column order: a column whose
/// entry is `false` is *not* materialized — its block is skipped via its
/// length header and every row receives [`Value::Unit`] in that
/// position, preserving arity and row order. Columns past the end of the
/// mask are kept. Column 0 (the location) should always be kept by
/// callers that route on it; this function does not special-case it.
pub fn decode_columnar(
    payload: &[u8],
    mask: Option<&[bool]>,
    out: &mut Vec<Tuple>,
) -> Result<ColumnarRead, CodecError> {
    if payload.len() < 6 {
        return Err(CodecError::Truncated);
    }
    let arity = u16::from_le_bytes(payload[0..2].try_into().unwrap()) as usize;
    let rows = u32::from_le_bytes(payload[2..6].try_into().unwrap()) as usize;
    if arity == 0 || rows.saturating_mul(arity) > MAX_DECODE_CELLS {
        return Err(CodecError::Truncated);
    }
    // Validate the whole column layout before materializing anything:
    // the header fields are untrusted, and every encoding except Const
    // spends at least one byte per row (FloatRaw exactly eight), so a
    // header claiming more rows than any non-const block could hold is
    // corrupt. Rejecting it here means no allocation is ever sized by a
    // row count the payload cannot back. All-const records carry no
    // per-row bytes; they are bounded by [`MAX_DECODE_CELLS`] alone.
    {
        let mut scan = 6usize;
        for _ in 0..arity {
            if payload.len() - scan < 5 {
                return Err(CodecError::Truncated);
            }
            let enc =
                Encoding::from_tag(payload[scan]).ok_or(CodecError::BadTag(payload[scan]))?;
            let len = u32::from_le_bytes(payload[scan + 1..scan + 5].try_into().unwrap()) as usize;
            scan += 5;
            if payload.len() - scan < len {
                return Err(CodecError::Truncated);
            }
            scan += len;
            let rows_fit = match enc {
                Encoding::Const => true,
                Encoding::FloatRaw => len == rows.saturating_mul(8),
                // Dict: 4-byte count + one value + one index byte per row.
                Encoding::Dict => rows <= len.saturating_sub(4),
                Encoding::Plain | Encoding::DeltaId | Encoding::DeltaInt => rows <= len,
            };
            if !rows_fit {
                return Err(CodecError::Truncated);
            }
        }
        if scan != payload.len() {
            return Err(CodecError::Truncated);
        }
    }
    let mut off = 6usize;
    let start = out.len();
    out.extend(std::iter::repeat_with(|| Vec::with_capacity(arity)).take(rows));
    let mut read = ColumnarRead::default();
    for col in 0..arity {
        if payload.len() - off < 5 {
            return Err(CodecError::Truncated);
        }
        let enc = Encoding::from_tag(payload[off]).ok_or(CodecError::BadTag(payload[off]))?;
        let len = u32::from_le_bytes(payload[off + 1..off + 5].try_into().unwrap()) as usize;
        off += 5;
        if payload.len() - off < len {
            return Err(CodecError::Truncated);
        }
        let block = &payload[off..off + len];
        off += len;
        let keep = mask.is_none_or(|m| m.get(col).copied().unwrap_or(true));
        if !keep {
            read.cols_skipped += 1;
            read.col_bytes_skipped += len;
            read.columns.push(ColumnStat {
                encoded_bytes: len,
                decoded_bytes: 0,
            });
            for row in out[start..].iter_mut() {
                row.push(Value::Unit);
            }
            continue;
        }
        let vals = decode_column(enc, block, rows)?;
        let decoded_bytes = vals.iter().map(v1_value_size).sum();
        vals.into_iter()
            .zip(out[start..].iter_mut())
            .for_each(|(v, row)| row.push(v));
        read.columns.push(ColumnStat {
            encoded_bytes: len,
            decoded_bytes,
        });
    }
    if off != payload.len() {
        return Err(CodecError::Truncated);
    }
    Ok(read)
}

/// Decode one column block into `rows` values.
fn decode_column(enc: Encoding, block: &[u8], rows: usize) -> Result<Vec<Value>, CodecError> {
    let mut vals = Vec::with_capacity(rows);
    let push = |vals: &mut Vec<Value>, v: Value| vals.push(v);
    match enc {
        Encoding::Plain => {
            let mut buf = Bytes::copy_from_slice(block);
            for _ in 0..rows {
                let v = read_value(&mut buf)?;
                push(&mut vals, v);
            }
            if !buf.is_empty() {
                return Err(CodecError::Truncated);
            }
        }
        Encoding::Const => {
            let mut buf = Bytes::copy_from_slice(block);
            let v = read_value(&mut buf)?;
            if !buf.is_empty() {
                return Err(CodecError::Truncated);
            }
            for _ in 0..rows {
                push(&mut vals, v.clone());
            }
        }
        Encoding::DeltaId => {
            let mut off = 0usize;
            let mut prev = 0i64;
            for k in 0..rows {
                let raw = get_varint(block, &mut off)?;
                let cur = if k == 0 {
                    raw as i64
                } else {
                    prev.wrapping_add(unzigzag(raw))
                };
                prev = cur;
                push(&mut vals, Value::Id(cur as u64));
            }
            if off != block.len() {
                return Err(CodecError::Truncated);
            }
        }
        Encoding::DeltaInt => {
            let mut off = 0usize;
            let mut prev = 0i64;
            for k in 0..rows {
                let raw = get_varint(block, &mut off)?;
                let cur = if k == 0 {
                    unzigzag(raw)
                } else {
                    prev.wrapping_add(unzigzag(raw))
                };
                prev = cur;
                push(&mut vals, Value::Int(cur));
            }
            if off != block.len() {
                return Err(CodecError::Truncated);
            }
        }
        Encoding::Dict => {
            if block.len() < 4 {
                return Err(CodecError::Truncated);
            }
            let dict_len = u32::from_le_bytes(block[0..4].try_into().unwrap()) as usize;
            if dict_len > DICT_MAX + 1 {
                return Err(CodecError::Truncated);
            }
            let mut entries = Vec::with_capacity(dict_len);
            let mut buf = Bytes::copy_from_slice(&block[4..]);
            for _ in 0..dict_len {
                entries.push(read_value(&mut buf)?);
            }
            // Index stream starts where the dictionary ended.
            let idx_start = 4 + (block.len() - 4 - buf.len());
            let mut off = idx_start;
            for _ in 0..rows {
                let idx = get_varint(block, &mut off)? as usize;
                let v = entries.get(idx).ok_or(CodecError::Truncated)?.clone();
                push(&mut vals, v);
            }
            if off != block.len() {
                return Err(CodecError::Truncated);
            }
        }
        Encoding::FloatRaw => {
            if block.len() != 8 * rows {
                return Err(CodecError::Truncated);
            }
            for chunk in block.chunks_exact(8) {
                let bits = u64::from_le_bytes(chunk.try_into().unwrap());
                push(&mut vals, Value::Float(f64::from_bits(bits)));
            }
        }
    }
    Ok(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn roundtrip(tuples: Vec<Tuple>) -> ColumnarBatch {
        let batch = encode_columnar(&tuples).expect("encodable");
        let mut out = Vec::new();
        let read = decode_columnar(&batch.payload, None, &mut out).unwrap();
        assert_eq!(out, tuples, "roundtrip mismatch");
        assert_eq!(read.cols_skipped, 0);
        for (enc_stat, dec_stat) in batch.columns.iter().zip(&read.columns) {
            assert_eq!(enc_stat, dec_stat, "stats agree encode vs decode");
        }
        batch
    }

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX, u64::MAX - 1] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len for {v}");
            let mut off = 0;
            assert_eq!(get_varint(&buf, &mut off).unwrap(), v);
            assert_eq!(off, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrip_edges() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn const_column_chosen_for_superstep() {
        // superstep(x, i): monotone ids, constant superstep.
        let tuples: Vec<Tuple> = (0..100)
            .map(|x| vec![Value::Id(x), Value::Int(7)])
            .collect();
        let batch = roundtrip(tuples);
        assert_eq!(batch.encodings, vec![Encoding::DeltaId, Encoding::Const]);
        // 100 ascending ids delta-encode to ~1 byte each; the constant
        // superstep column stores 9 bytes total.
        assert!(batch.columns[0].encoded_bytes <= 110);
        assert_eq!(batch.columns[1].encoded_bytes, 9);
        assert_eq!(batch.columns[1].decoded_bytes, 900);
    }

    #[test]
    fn dict_chosen_for_low_cardinality_strings() {
        let tuples: Vec<Tuple> = (0..50)
            .map(|x| {
                vec![
                    Value::Id(x),
                    Value::str(if x % 2 == 0 { "ping" } else { "pong" }),
                ]
            })
            .collect();
        let batch = roundtrip(tuples);
        assert_eq!(batch.encodings[1], Encoding::Dict);
        assert!(batch.columns[1].encoded_bytes < batch.columns[1].decoded_bytes / 3);
    }

    #[test]
    fn float_payloads_roundtrip_bit_exactly() {
        let tuples: Vec<Tuple> = vec![
            vec![Value::Id(1), Value::Float(0.15)],
            vec![Value::Id(2), Value::Float(f64::NAN)],
            vec![Value::Id(3), Value::Float(-0.0)],
            vec![Value::Id(4), Value::Float(f64::INFINITY)],
        ];
        let batch = encode_columnar(&tuples).unwrap();
        let mut out = Vec::new();
        decode_columnar(&batch.payload, None, &mut out).unwrap();
        for (a, b) in tuples.iter().zip(&out) {
            let (Value::Float(x), Value::Float(y)) = (&a[1], &b[1]) else {
                panic!("float column");
            };
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn high_cardinality_floats_use_raw() {
        let tuples: Vec<Tuple> = (0..(DICT_MAX as u64 + 10))
            .map(|x| vec![Value::Id(x), Value::Float(x as f64 * 0.137)])
            .collect();
        let batch = roundtrip(tuples);
        assert_eq!(batch.encodings[1], Encoding::FloatRaw);
        // 9 bytes/row tagged → 8 bytes/row raw.
        assert_eq!(
            batch.columns[1].encoded_bytes * 9,
            batch.columns[1].decoded_bytes * 8
        );
    }

    #[test]
    fn mixed_types_fall_back_to_plain_or_dict() {
        let tuples: Vec<Tuple> = vec![
            vec![Value::Id(1), Value::str("a")],
            vec![Value::Id(2), Value::Int(3)],
            vec![Value::Id(3), Value::Bool(true)],
            vec![Value::Id(4), Value::Unit],
            vec![Value::Id(5), Value::List(Arc::new(vec![Value::Int(1)]))],
        ];
        roundtrip(tuples);
    }

    #[test]
    fn ragged_and_empty_batches_have_no_columnar_form() {
        assert!(encode_columnar(&[]).is_none());
        assert!(encode_columnar(&[vec![]]).is_none());
        assert!(encode_columnar(&[
            vec![Value::Id(1)],
            vec![Value::Id(1), Value::Int(2)]
        ])
        .is_none());
    }

    #[test]
    fn mask_skips_column_without_materializing() {
        let tuples: Vec<Tuple> = (0..20)
            .map(|x| {
                vec![
                    Value::Id(x),
                    Value::str("heavy-message-payload"),
                    Value::Int(3),
                ]
            })
            .collect();
        let batch = encode_columnar(&tuples).unwrap();
        let mut out = Vec::new();
        let read = decode_columnar(&batch.payload, Some(&[true, false, true]), &mut out).unwrap();
        assert_eq!(read.cols_skipped, 1);
        assert!(read.col_bytes_skipped > 0);
        for (k, row) in out.iter().enumerate() {
            assert_eq!(row[0], Value::Id(k as u64));
            assert_eq!(row[1], Value::Unit, "masked column is Unit");
            assert_eq!(row[2], Value::Int(3));
        }
        // Short masks keep the tail columns.
        let mut out2 = Vec::new();
        decode_columnar(&batch.payload, Some(&[true]), &mut out2).unwrap();
        assert_eq!(out2[0][2], Value::Int(3));
    }

    #[test]
    fn negative_and_descending_deltas() {
        let tuples: Vec<Tuple> = (0..50)
            .map(|k| vec![Value::Id(1000 - k * 13), Value::Int(-5 * k as i64)])
            .collect();
        let batch = roundtrip(tuples);
        assert_eq!(batch.encodings[0], Encoding::DeltaId);
        assert_eq!(batch.encodings[1], Encoding::DeltaInt);
    }

    #[test]
    fn extreme_integers_roundtrip() {
        let tuples: Vec<Tuple> = vec![
            vec![Value::Id(u64::MAX), Value::Int(i64::MIN)],
            vec![Value::Id(0), Value::Int(i64::MAX)],
            vec![Value::Id(u64::MAX / 2), Value::Int(0)],
        ];
        roundtrip(tuples);
    }

    #[test]
    fn truncation_detected() {
        let tuples: Vec<Tuple> = (0..10).map(|x| vec![Value::Id(x), Value::Int(1)]).collect();
        let batch = encode_columnar(&tuples).unwrap();
        for cut in 0..batch.payload.len() {
            let mut out = Vec::new();
            assert!(
                decode_columnar(&batch.payload[..cut], None, &mut out).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn bad_encoding_tag_detected() {
        let tuples: Vec<Tuple> = vec![vec![Value::Id(1)]];
        let mut payload = encode_columnar(&tuples).unwrap().payload;
        payload[6] = 0xEE; // first column's encoding tag
        let mut out = Vec::new();
        assert!(matches!(
            decode_columnar(&payload, None, &mut out),
            Err(CodecError::BadTag(0xEE))
        ));
    }

    #[test]
    fn compression_wins_on_pagerank_like_batch() {
        // What a full-capture PageRank layer batch looks like:
        // value(x, score, i) with dense ids, distinct floats, const step.
        let tuples: Vec<Tuple> = (0..512)
            .map(|x| vec![Value::Id(x), Value::Float(1.0 / (x + 1) as f64), Value::Int(9)])
            .collect();
        let batch = encode_columnar(&tuples).unwrap();
        let v1 = v1_batch_size(&tuples);
        assert!(
            batch.payload.len() * 10 < v1 * 7,
            "columnar {} not ≥30% below v1 {}",
            batch.payload.len(),
            v1
        );
    }
}
