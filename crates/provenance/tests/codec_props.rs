//! Property-based round-trip tests for the spill codec.

use ariadne_pql::Value;
use ariadne_provenance::codec::{decode_tuples, encode_tuples};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<u64>().prop_map(Value::Id),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(|s| Value::str(&s)),
        Just(Value::Unit),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(|v| Value::List(Arc::new(v)))
    })
}

proptest! {
    #[test]
    fn tuples_roundtrip(tuples in proptest::collection::vec(
        proptest::collection::vec(arb_value(), 0..6), 0..20)) {
        let encoded = encode_tuples(&tuples);
        let decoded = decode_tuples(encoded).unwrap();
        prop_assert_eq!(tuples, decoded);
    }

    /// Truncating an encoding never panics and never silently succeeds
    /// with wrong data of the same tuple count.
    #[test]
    fn truncation_never_panics(tuples in proptest::collection::vec(
        proptest::collection::vec(arb_value(), 1..4), 1..6), cut in 0usize..64) {
        let encoded = encode_tuples(&tuples);
        if cut < encoded.len() {
            let sliced = encoded.slice(0..cut);
            // Must error (all our encodings are length-prefixed).
            prop_assert!(decode_tuples(sliced).is_err());
        }
    }
}
