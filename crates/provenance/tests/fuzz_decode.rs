//! Decoder robustness fuzzing: randomly mutated record streams and raw
//! byte soup must come back as `Err` (or be skipped by salvage/degraded
//! walks) — never a panic, never an unbounded loop. Deterministically
//! seeded, so a failure reproduces from the printed seed.

use ariadne_pql::Value;
use ariadne_provenance::codec::{decode_tuples, decode_tuples_masked};
use ariadne_provenance::columnar::{decode_columnar, encode_columnar};
use ariadne_provenance::{scrub_spool, LayerFilter, ProvStore, ReadPolicy, StoreConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn tuple(v: u64, i: i64) -> Vec<Value> {
    vec![Value::Id(v), Value::Float(1.0 / (v + 1) as f64), Value::Int(i)]
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ariadne-fuzz-{tag}-{}", std::process::id()))
}

/// Apply one random mutation to `bytes`: a bit flip, a truncation, a
/// random-length splice of random bytes, or a duplication of a random
/// region. Returns the mutated buffer (possibly empty).
fn mutate(rng: &mut StdRng, bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return (0..rng.gen_range(0usize..64)).map(|_| rng.gen::<u64>() as u8).collect();
    }
    match rng.gen_range(0u32..4) {
        0 => {
            let i = rng.gen_range(0..out.len());
            out[i] ^= 1 << rng.gen_range(0u32..8);
        }
        1 => {
            let cut = rng.gen_range(0..out.len());
            out.truncate(cut);
        }
        2 => {
            let at = rng.gen_range(0..=out.len());
            let n = rng.gen_range(1usize..32);
            let junk: Vec<u8> = (0..n).map(|_| rng.gen::<u64>() as u8).collect();
            out.splice(at..at, junk);
        }
        _ => {
            let a = rng.gen_range(0..out.len());
            let b = rng.gen_range(a..=out.len());
            let dup = out[a..b].to_vec();
            let at = rng.gen_range(0..=out.len());
            out.splice(at..at, dup);
        }
    }
    out
}

/// The v1 row decoder and its masked variant return `Err`, never panic,
/// on mutated and on purely random payloads.
#[test]
fn v1_decoder_survives_mutations() {
    let mut rng = StdRng::seed_from_u64(0xA51AD4E);
    let valid = ariadne_provenance::codec::encode_tuples(
        &(0..50).map(|v| tuple(v, 3)).collect::<Vec<_>>(),
    );
    for round in 0..600 {
        let bytes = if round % 3 == 0 {
            (0..rng.gen_range(0usize..256)).map(|_| rng.gen::<u64>() as u8).collect()
        } else {
            mutate(&mut rng, &valid)
        };
        let _ = decode_tuples(bytes::Bytes::from(bytes.clone()));
        let _ = decode_tuples_masked(bytes::Bytes::from(bytes), Some(&[true, false, true]));
    }
}

/// The v2 columnar decoder (varint, dictionary, delta and raw-float
/// block paths) returns `Err`, never panics and never over-allocates,
/// on mutated and on purely random payloads.
#[test]
fn columnar_decoder_survives_mutations() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    // A batch exercising every encoding: dense ids (delta), a
    // low-cardinality string column (dictionary), floats (raw).
    let batch: Vec<Vec<Value>> = (0..200)
        .map(|v: u64| {
            vec![
                Value::Id(v),
                Value::str(if v.is_multiple_of(3) { "left" } else { "right" }),
                Value::Float(v as f64 * 0.25),
                Value::Int(-(v as i64)),
            ]
        })
        .collect();
    let valid = encode_columnar(&batch).expect("encodable").payload;
    for round in 0..600 {
        let bytes = if round % 3 == 0 {
            (0..rng.gen_range(0usize..256)).map(|_| rng.gen::<u64>() as u8).collect()
        } else {
            mutate(&mut rng, &valid)
        };
        let mut out = Vec::new();
        let _ = decode_columnar(&bytes, None, &mut out);
        let mut out = Vec::new();
        let _ = decode_columnar(&bytes, Some(&[true, false, true, false]), &mut out);
    }
}

/// Whole-spool fuzzing: mutate spilled segment files (v1, v2 and v3), then
/// resume, scrub, and degraded-read the spool. Every path must return
/// `Ok` or a typed error — no panics — and a degraded read never yields
/// more tuples than the clean run held.
#[test]
fn mutated_spools_never_panic() {
    use ariadne_provenance::SegmentFormat;
    let mut rng = StdRng::seed_from_u64(0xD15C0);
    for format in [SegmentFormat::V1, SegmentFormat::V2, SegmentFormat::V3] {
        let dir = temp_dir(&format!("spool-{format:?}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()).with_format(format));
        for s in 0..3u32 {
            store
                .ingest(s, "value", (0..40).map(|v| tuple(v, s as i64)).collect())
                .unwrap();
        }
        drop(store);
        let files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        let originals: Vec<Vec<u8>> = files.iter().map(|p| std::fs::read(p).unwrap()).collect();
        let clean_tuples = 3 * 40;

        for round in 0..60 {
            // Mutate one file per round, leave the rest clean.
            let target = rng.gen_range(0..files.len());
            for (i, (path, orig)) in files.iter().zip(&originals).enumerate() {
                if i == target {
                    std::fs::write(path, mutate(&mut rng, orig)).unwrap();
                } else {
                    std::fs::write(path, orig).unwrap();
                }
            }
            // Remove sidecars a previous round's salvage may have left.
            for e in std::fs::read_dir(&dir).unwrap().flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy();
                if name.ends_with(".torn") {
                    std::fs::remove_file(e.path()).ok();
                }
            }

            // Scrub (detection only) always reports, never panics.
            let scrub = scrub_spool(&dir, false);
            assert!(scrub.is_ok(), "round {round}: scrub errored {scrub:?}");

            // Resume either salvages or fails typed.
            // A typed resume failure is acceptable; a panic is not.
            if let Ok(resumed) = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone()))
            {
                assert!(resumed.tuple_count() <= clean_tuples, "round {round}");
                // Degraded reads of every layer terminate and never
                // exceed the clean tuple count.
                let mut seen = 0usize;
                for s in 0..3u32 {
                    let read = resumed
                        .layer_read_with(s, &LayerFilter::all(), ReadPolicy::Degraded)
                        .unwrap();
                    seen += read.tuples.iter().map(|(_, t)| t.len()).sum::<usize>();
                }
                assert!(seen <= clean_tuples, "round {round}: {seen} tuples");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
