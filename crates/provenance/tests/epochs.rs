//! Epoch layering: append_epoch must make logical reads of the mutated
//! store bit-identical to the fresh capture, while writing only the
//! diff; spool resume must rebuild the epoch table from markers.

use ariadne_pql::{Tuple, Value};
use ariadne_provenance::{ProvStore, StoreConfig};

fn t(vals: &[i64]) -> Tuple {
    vals.iter().map(|&v| Value::Int(v)).collect()
}

/// Logical content of every layer, materialized.
fn all_layers(store: &ProvStore) -> Vec<(u32, Vec<(String, Vec<Tuple>)>)> {
    let mut out = Vec::new();
    if let Some(max) = store.max_superstep() {
        for s in 0..=max {
            out.push((s, store.layer(s).expect("layer read")));
        }
    }
    out
}

fn build(layers: u32, rows_per_layer: &[&[i64]]) -> ProvStore {
    let mut store = ProvStore::new(StoreConfig::in_memory());
    for s in 0..layers {
        let rows: Vec<Tuple> = rows_per_layer.iter().map(|r| t(r)).collect();
        let mut rows = rows;
        // Make each layer distinct: tag the layer number into the tuple.
        for r in &mut rows {
            r.push(Value::Int(i64::from(s)));
        }
        store.ingest(s, "value", rows).expect("ingest");
    }
    store
}

#[test]
fn append_epoch_reads_match_fresh_capture() {
    let mut store = build(3, &[&[1], &[2], &[3]]);
    // The "mutated" capture: layer 1 grows (append), layer 2 diverges
    // (replace), and there is a new layer 3.
    let mut next = ProvStore::new(StoreConfig::in_memory());
    next.ingest(0, "value", vec![t(&[1, 0]), t(&[2, 0]), t(&[3, 0])])
        .unwrap(); // identical -> carried
    next.ingest(1, "value", vec![t(&[1, 1]), t(&[2, 1]), t(&[3, 1]), t(&[9, 1])])
        .unwrap(); // prefix-extended -> ~add~
    next.ingest(2, "value", vec![t(&[7, 2])]).unwrap(); // diverged -> replace
    next.ingest(3, "value", vec![t(&[8, 3])]).unwrap(); // new layer

    let stats = store.append_epoch(&next).expect("append epoch");
    assert_eq!(stats.epoch, 1);
    assert_eq!(store.mutation_epoch(), 1);
    assert_eq!(stats.carried, 1, "layer 0 should carry");
    assert_eq!(stats.appended, 1, "layer 1 should append a suffix");
    assert_eq!(stats.replaced, 2, "layers 2 and 3 should replace");
    assert_eq!(stats.tombstoned, 0);
    assert!(
        stats.bytes_appended < stats.cold_bytes,
        "delta ({}) must beat full re-capture ({})",
        stats.bytes_appended,
        stats.cold_bytes
    );

    assert_eq!(store.max_superstep(), Some(3));
    assert_eq!(
        all_layers(&store),
        all_layers(&next),
        "logical reads must be bit-identical to the fresh capture"
    );
    assert_eq!(
        store.to_database().unwrap().sorted("value"),
        next.to_database().unwrap().sorted("value"),
    );
}

#[test]
fn shrinking_run_and_tombstones() {
    let mut store = build(3, &[&[1], &[2]]);
    store.ingest(1, "aux", vec![t(&[42])]).unwrap();
    // New run: fewer supersteps, and `aux` disappears from layer 1.
    let mut next = ProvStore::new(StoreConfig::in_memory());
    next.ingest(0, "value", vec![t(&[1, 0]), t(&[2, 0])]).unwrap();
    next.ingest(1, "value", vec![t(&[1, 1]), t(&[2, 1])]).unwrap();

    let stats = store.append_epoch(&next).expect("append epoch");
    assert_eq!(stats.tombstoned, 1, "aux@1 must be tombstoned");
    assert_eq!(store.max_superstep(), Some(1), "logical run shrank");
    assert_eq!(all_layers(&store), all_layers(&next));
    // Layer 2 is logically gone even though physical history remains.
    assert!(store.layer(2).unwrap().is_empty());
    assert!(store.physical_max_superstep().unwrap() > 2);
}

#[test]
fn multiple_epochs_chain() {
    let mut store = build(2, &[&[1]]);
    let mut current = build(2, &[&[1]]);
    for round in 0..3i64 {
        // Each round extends layer 1 and rewrites layer 0.
        let mut next = ProvStore::new(StoreConfig::in_memory());
        next.ingest(0, "value", vec![t(&[round, 0])]).unwrap();
        let mut l1: Vec<Tuple> = current.layer(1).unwrap().remove(0).1;
        l1.push(t(&[100 + round, 1]));
        next.ingest(1, "value", l1).unwrap();
        store.append_epoch(&next).expect("append epoch");
        current = next;
        assert_eq!(store.mutation_epoch(), (round + 1) as u64);
        assert_eq!(all_layers(&store), all_layers(&current), "round {round}");
    }
    assert_eq!(store.epoch_table().len(), 4);
}

#[test]
fn epoch_table_survives_spool_resume() {
    let dir = std::env::temp_dir().join(format!("ariadne-epoch-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut store = ProvStore::new(StoreConfig::spilling(0, dir.clone()));
    store.ingest(0, "value", vec![t(&[1, 0])]).unwrap();
    store.ingest(1, "value", vec![t(&[1, 1])]).unwrap();

    let mut next = ProvStore::new(StoreConfig::in_memory());
    next.ingest(0, "value", vec![t(&[1, 0]), t(&[2, 0])]).unwrap();
    next.ingest(1, "value", vec![t(&[1, 1])]).unwrap();
    store.append_epoch(&next).expect("append epoch");
    let expect = all_layers(&store);
    store.pack_all();
    drop(store);

    let resumed = ProvStore::resume_from_spool(StoreConfig::spilling(0, dir.clone()))
        .expect("resume from spool");
    assert_eq!(resumed.mutation_epoch(), 1, "epoch table must be rebuilt");
    assert_eq!(resumed.epoch_table().len(), 2);
    assert_eq!(resumed.max_superstep(), Some(1));
    assert_eq!(all_layers(&resumed), expect);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn filtered_and_masked_logical_reads() {
    let mut store = build(2, &[&[1], &[2]]);
    store.ingest(0, "aux", vec![t(&[5, 6])]).unwrap();
    let mut next = ProvStore::new(StoreConfig::in_memory());
    next.ingest(0, "value", vec![t(&[1, 0]), t(&[2, 0]), t(&[3, 0])])
        .unwrap();
    next.ingest(0, "aux", vec![t(&[5, 6])]).unwrap();
    next.ingest(1, "value", vec![t(&[1, 1]), t(&[2, 1])]).unwrap();
    store.append_epoch(&next).unwrap();

    // Predicate filter prunes `aux`.
    let preds: std::collections::BTreeSet<String> = ["value".to_string()].into_iter().collect();
    let read = store
        .layer_read(0, &ariadne_provenance::LayerFilter::for_preds(preds.clone()))
        .unwrap();
    assert_eq!(read.tuples.len(), 1);
    assert_eq!(read.tuples[0].0, "value");
    assert_eq!(read.tuples[0].1.len(), 3);

    // Column mask blanks the masked column after materialization.
    let filter = ariadne_provenance::LayerFilter::for_preds(preds).with_mask("value", vec![true, false, true]);
    let read = store.layer_read(0, &filter).unwrap();
    for row in &read.tuples[0].1 {
        assert_eq!(row[1], Value::Unit, "masked column must decode as Unit");
    }
}
