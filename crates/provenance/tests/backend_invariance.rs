//! The read-backend taxonomy test: decoded layer contents and every
//! *deterministic* read counter must be identical whether extents are
//! served by buffered seek+read or by mmap, while the per-backend byte
//! counters (flagged non-deterministic) attribute the traffic to
//! whichever backend actually served it.
//!
//! Lives in its own integration-test binary on purpose: the obs
//! registry is process-global, and unit tests of the store crate run in
//! the same process and would race these counter-delta assertions.

use ariadne_pql::{Tuple, Value};
use ariadne_provenance::{LayerFilter, ProvStore, ReadBackend, SegmentFormat, StoreConfig};

/// Current value of a global-registry counter (0 if never registered).
fn counter(name: &str) -> u64 {
    ariadne_obs::registry()
        .snapshot()
        .counter(name)
        .unwrap_or(0)
}

/// The deterministic read-path counters whose deltas must not depend on
/// the backend.
const DETERMINISTIC: [&str; 3] = [
    "store_segments_read_total",
    "store_segments_skipped_total",
    "store_col_bytes_skipped_total",
];

fn deterministic_snapshot() -> Vec<u64> {
    DETERMINISTIC.iter().map(|n| counter(n)).collect()
}

/// Read every layer of `store` through the currently configured
/// backend, predicate-filtered to `superstep` + `value` so the skip
/// counters move too.
fn read_all_layers(store: &ProvStore) -> Vec<(String, Vec<Tuple>)> {
    let filter = LayerFilter::for_preds(
        ["superstep".to_string(), "value".to_string()]
            .into_iter()
            .collect(),
    );
    let mut out = Vec::new();
    for layer in 0..=store.max_superstep().expect("non-empty store") {
        let read = store.layer_read(layer, &filter).expect("layer read");
        out.extend(read.tuples);
    }
    out
}

#[test]
fn deterministic_counters_and_contents_are_backend_invariant() {
    let dir = std::env::temp_dir().join(format!(
        "ariadne-backend-invariance-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Spool-backed v3 store, compacted so reads go through atomic
    // generation-file extents — the only files the mmap backend maps.
    let mut store =
        ProvStore::new(StoreConfig::spilling(0, dir.clone()).with_format(SegmentFormat::V3));
    for superstep in 0..4u32 {
        for v in 0..64u64 {
            store
                .ingest(
                    superstep,
                    "superstep",
                    vec![vec![Value::Id(v), Value::Int(i64::from(superstep))]],
                )
                .expect("ingest superstep");
            store
                .ingest(
                    superstep,
                    "value",
                    vec![vec![
                        Value::Id(v),
                        Value::Float(v as f64),
                        Value::Int(i64::from(superstep)),
                    ]],
                )
                .expect("ingest value");
            store
                .ingest(
                    superstep,
                    "send_message",
                    vec![vec![
                        Value::Id(v),
                        Value::Id((v + 1) % 64),
                        Value::Float(0.5),
                        Value::Int(i64::from(superstep)),
                    ]],
                )
                .expect("ingest send_message");
        }
    }
    store.compact().expect("compact the spool");

    store.set_read_backend(ReadBackend::Buffered);
    let det_before = deterministic_snapshot();
    let buffered_bytes_before = counter("store_buffered_bytes_total");
    let extent_reads_before = counter("store_extent_reads_total");
    let buffered_contents = read_all_layers(&store);
    let det_mid = deterministic_snapshot();
    let buffered_bytes_mid = counter("store_buffered_bytes_total");
    let mmap_bytes_mid = counter("store_mmap_bytes_total");
    let extent_reads_mid = counter("store_extent_reads_total");

    store.set_read_backend(ReadBackend::Mmap);
    let mmap_contents = read_all_layers(&store);
    let det_after = deterministic_snapshot();
    let mmap_bytes_after = counter("store_mmap_bytes_total");
    let extent_reads_after = counter("store_extent_reads_total");

    // The decoded layers are bit-identical regardless of backend.
    assert_eq!(
        buffered_contents, mmap_contents,
        "decoded layer contents must not depend on the read backend"
    );

    // Deterministic counters moved by the same delta under each backend.
    let buffered_delta: Vec<u64> = det_mid
        .iter()
        .zip(&det_before)
        .map(|(after, before)| after - before)
        .collect();
    let mmap_delta: Vec<u64> = det_after
        .iter()
        .zip(&det_mid)
        .map(|(after, before)| after - before)
        .collect();
    assert_eq!(
        buffered_delta, mmap_delta,
        "deterministic read counters {DETERMINISTIC:?} must be backend-invariant"
    );
    assert!(
        buffered_delta[0] > 0,
        "the pass must actually decode segments"
    );
    assert!(
        buffered_delta[1] > 0,
        "the predicate filter must actually skip segments"
    );

    // The non-deterministic byte counters attribute traffic to the
    // backend that served it.
    assert!(
        buffered_bytes_mid > buffered_bytes_before,
        "buffered pass must account its extent bytes"
    );
    assert!(
        extent_reads_mid > extent_reads_before && extent_reads_after > extent_reads_mid,
        "both passes must count extent reads"
    );
    if cfg!(unix) {
        assert!(
            mmap_bytes_after > mmap_bytes_mid,
            "mmap pass must account its extent bytes through the mmap counter"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
