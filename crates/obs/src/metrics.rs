//! Lock-free sharded metric registry.
//!
//! Three metric kinds, all built on the same primitive: a bank of
//! cache-line-padded `AtomicU64` shards indexed by a stable per-thread
//! shard id. Recording is a single `fetch_add(Relaxed)` on the calling
//! thread's shard — no locks, no branches beyond the call itself, and no
//! cross-core cache-line traffic while threads stay on distinct shards.
//! Reading sums the shards; that is the *only* place ordering matters,
//! and snapshot readers run at barriers or end-of-run where the engine
//! has already synchronized.
//!
//! Registration (name → handle) goes through a mutex-guarded map, but
//! every instrumentation site caches its handle in a `OnceLock`, so the
//! mutex is touched once per site per process.
//!
//! Each metric carries a `deterministic` flag: `true` means the value is
//! a function of the *logical* computation only (bit-identical across
//! thread counts and runs), `false` means it depends on scheduling,
//! chunk layout, or wall time. Exporters and tests can filter on it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of shards per metric. Enough to keep a ~dozen worker threads
/// on distinct cache lines without bloating snapshot cost.
pub const SHARDS: usize = 16;

/// One cache-line-padded atomic cell.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A bank of padded shards.
struct ShardBank {
    shards: [PaddedU64; SHARDS],
}

impl ShardBank {
    fn new() -> Self {
        Self {
            shards: Default::default(),
        }
    }

    #[inline]
    fn add(&self, v: u64) {
        self.shards[shard_id()].0.fetch_add(v, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// The calling thread's stable shard index.
#[inline]
fn shard_id() -> usize {
    SHARD.with(|s| *s)
}

/// What a metric measures; drives the Prometheus `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time signed value.
    Gauge,
    /// Distribution over power-of-two buckets.
    Histogram,
}

impl MetricKind {
    /// Prometheus type keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Handle to a monotonically increasing, sharded counter.
#[derive(Clone)]
pub struct Counter {
    bank: Arc<ShardBank>,
}

impl Counter {
    /// Add `v` to the calling thread's shard. Hot-path safe.
    #[inline]
    pub fn add(&self, v: u64) {
        if v != 0 {
            self.bank.add(v);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.bank.add(1);
    }

    /// Sum of all shards.
    pub fn value(&self) -> u64 {
        self.bank.sum()
    }
}

/// Handle to a signed gauge. Gauges are set/adjusted at low frequency
/// (per barrier, per spill), so a single atomic cell suffices.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v as u64, Ordering::Relaxed);
    }

    /// Adjust the gauge by a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta as u64, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed) as i64
    }
}

/// Number of exponential histogram buckets: bucket `i` counts samples
/// with `value < 2^i`, the final bucket is `+Inf`. 64 buckets put the
/// largest finite bound at `2^62 - 1`, so nanosecond latencies of
/// multi-second queries still get interpolated quantiles instead of
/// collapsing into the `+Inf` bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

struct HistogramInner {
    /// Per-shard bucket banks; `buckets[b]` is a shard bank for bucket b.
    buckets: Vec<ShardBank>,
    count: ShardBank,
    sum: ShardBank,
}

/// Handle to a power-of-two-bucketed histogram.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = bucket_index(v);
        self.inner.buckets[b].add(1);
        self.inner.count.add(1);
        self.inner.sum.add(v);
    }

    /// Snapshot `(upper_bound, cumulative_count)` pairs plus sum and count.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = 0u64;
        let mut buckets = Vec::with_capacity(HISTOGRAM_BUCKETS);
        for (i, bank) in self.inner.buckets.iter().enumerate() {
            cumulative += bank.sum();
            buckets.push((bucket_bound(i), cumulative));
        }
        HistogramSnapshot {
            buckets,
            sum: self.inner.sum.sum(),
            count: self.inner.count.sum(),
        }
    }
}

/// Bucket index for a sample: samples land in the first bucket whose
/// upper bound is `>= v`; the last bucket is unbounded.
#[inline]
fn bucket_index(v: u64) -> usize {
    // Bucket i has upper bound 2^i - 1 stored as bound 2^i exclusive;
    // equivalently i = bit length of v, clamped.
    let bits = (64 - v.leading_zeros()) as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound (inclusive) for bucket `i`; the last bucket is `+Inf`
/// (represented as `u64::MAX`).
fn bucket_bound(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Materialized histogram state for exporters.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// `(upper_bound, cumulative_count)`; last entry's bound is `u64::MAX` (+Inf).
    pub buckets: Vec<(u64, u64)>,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Number of recorded samples.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the power-of-two bucket holding the target rank.
    ///
    /// The estimate assumes samples are uniformly spread across each
    /// bucket's `(lower, upper]` range, so it is exact for degenerate
    /// buckets (bound 0) and at worst off by one bucket width otherwise —
    /// the usual trade of exponential-bucket histograms. Returns `None`
    /// when the histogram is empty or `q` is not a finite value in
    /// `[0, 1]`. `quantile(1.0)` returns the upper bound of the highest
    /// occupied bucket (the observable max).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !q.is_finite() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Rank of the target sample, 1-based, clamped into [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut prev_cumulative = 0u64;
        let mut prev_bound = 0u64;
        for &(bound, cumulative) in &self.buckets {
            if cumulative >= rank {
                let in_bucket = cumulative - prev_cumulative;
                let into = rank - prev_cumulative; // 1-based within bucket
                // Bucket range is (prev_bound, bound]; the first bucket
                // is the single value 0. +Inf interpolates to its lower
                // edge (there is no finite upper bound to lerp toward).
                if bound == prev_bound || in_bucket == 0 {
                    return Some(bound);
                }
                if bound == u64::MAX {
                    return Some(prev_bound.saturating_add(1));
                }
                let lo = prev_bound as f64;
                let width = (bound - prev_bound) as f64;
                let est = lo + width * (into as f64 / in_bucket as f64);
                return Some(est.round() as u64);
            }
            prev_cumulative = cumulative;
            prev_bound = bound;
        }
        None
    }

    /// The upper bound of the highest occupied bucket (`None` when
    /// empty): a safe over-estimate of the maximum recorded sample.
    pub fn max_bound(&self) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        self.buckets
            .iter()
            .find(|&&(_, cumulative)| cumulative >= self.count)
            .map(|&(bound, _)| bound)
    }
}

enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    help: &'static str,
    deterministic: bool,
    cell: Cell,
}

impl Entry {
    fn kind(&self) -> MetricKind {
        match self.cell {
            Cell::Counter(_) => MetricKind::Counter,
            Cell::Gauge(_) => MetricKind::Gauge,
            Cell::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// One exported metric value.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric name (Prometheus-style `snake_case`, `_total` suffix for counters).
    pub name: &'static str,
    /// Help text.
    pub help: &'static str,
    /// Metric kind.
    pub kind: MetricKind,
    /// Whether the value is thread-count invariant.
    pub deterministic: bool,
    /// The value.
    pub value: SampleValue,
}

/// The value part of a [`Sample`].
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A full, name-sorted registry snapshot.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All samples, sorted by metric name.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// Only the deterministic counters, as `(name, value)` pairs — the
    /// subset that must be bit-identical across thread counts.
    pub fn deterministic_counters(&self) -> Vec<(&'static str, u64)> {
        self.samples
            .iter()
            .filter(|s| s.deterministic)
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some((s.name, v)),
                _ => None,
            })
            .collect()
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.samples.iter().find(|s| s.name == name).and_then(|s| {
            match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            }
        })
    }
}

/// A metric registry. Most code uses the process-global instance via
/// [`Registry::global`] (or `ariadne_obs::registry()`); tests build
/// private instances with [`Registry::new`].
#[derive(Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<&'static str, Entry>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Register (or fetch) a counter. Panics if `name` is already
    /// registered with a different kind.
    pub fn counter(&self, name: &'static str, help: &'static str, deterministic: bool) -> Counter {
        let mut map = self.entries.lock().unwrap();
        let entry = map.entry(name).or_insert_with(|| Entry {
            help,
            deterministic,
            cell: Cell::Counter(Counter {
                bank: Arc::new(ShardBank::new()),
            }),
        });
        match &entry.cell {
            Cell::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered as {:?}", entry.kind()),
        }
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str, deterministic: bool) -> Gauge {
        let mut map = self.entries.lock().unwrap();
        let entry = map.entry(name).or_insert_with(|| Entry {
            help,
            deterministic,
            cell: Cell::Gauge(Gauge {
                cell: Arc::new(AtomicU64::new(0)),
            }),
        });
        match &entry.cell {
            Cell::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered as {:?}", entry.kind()),
        }
    }

    /// Register (or fetch) a histogram.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        deterministic: bool,
    ) -> Histogram {
        let mut map = self.entries.lock().unwrap();
        let entry = map.entry(name).or_insert_with(|| Entry {
            help,
            deterministic,
            cell: Cell::Histogram(Histogram {
                inner: Arc::new(HistogramInner {
                    buckets: (0..HISTOGRAM_BUCKETS).map(|_| ShardBank::new()).collect(),
                    count: ShardBank::new(),
                    sum: ShardBank::new(),
                }),
            }),
        });
        match &entry.cell {
            Cell::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered as {:?}", entry.kind()),
        }
    }

    /// Snapshot every registered metric, sorted by name (BTreeMap order).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.entries.lock().unwrap();
        let samples = map
            .iter()
            .map(|(name, e)| Sample {
                name,
                help: e.help,
                kind: e.kind(),
                deterministic: e.deterministic,
                value: match &e.cell {
                    Cell::Counter(c) => SampleValue::Counter(c.value()),
                    Cell::Gauge(g) => SampleValue::Gauge(g.value()),
                    Cell::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// Reset all counters and histograms to zero and gauges to zero.
    /// For tests and bench harness runs that want per-run deltas.
    pub fn reset(&self) {
        let map = self.entries.lock().unwrap();
        for e in map.values() {
            match &e.cell {
                Cell::Counter(c) => c.bank.reset(),
                Cell::Gauge(g) => g.cell.store(0, Ordering::Relaxed),
                Cell::Histogram(h) => {
                    for b in &h.inner.buckets {
                        b.reset();
                    }
                    h.inner.count.reset();
                    h.inner.sum.reset();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_sums_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("t_messages_total", "test", true);
        thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = Registry::new();
        let g = reg.gauge("t_bytes", "test", false);
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("t_latency_ns", "test", false);
        h.record(0); // bucket 0 (bound 0)
        h.record(1); // bucket 1 (bound 1)
        h.record(7); // bucket 3 (bound 7)
        h.record(u64::MAX); // last bucket
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 0u64.wrapping_add(1).wrapping_add(7).wrapping_add(u64::MAX));
        assert_eq!(snap.buckets[0], (0, 1));
        assert_eq!(snap.buckets[1], (1, 2));
        assert_eq!(snap.buckets[3], (7, 3));
        let last = *snap.buckets.last().unwrap();
        assert_eq!(last, (u64::MAX, 4));
    }

    #[test]
    fn quantile_empty_and_bad_inputs() {
        let reg = Registry::new();
        let h = reg.histogram("t_q_empty", "test", false);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.max_bound(), None);
        h.record(1);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(-0.1), None);
        assert_eq!(snap.quantile(1.5), None);
        assert_eq!(snap.quantile(f64::NAN), None);
    }

    #[test]
    fn quantile_single_bucket_is_exact() {
        let reg = Registry::new();
        let h = reg.histogram("t_q_zero", "test", false);
        for _ in 0..10 {
            h.record(0);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.0), Some(0));
        assert_eq!(snap.quantile(0.5), Some(0));
        assert_eq!(snap.quantile(1.0), Some(0));
        assert_eq!(snap.max_bound(), Some(0));
    }

    #[test]
    fn quantile_interpolates_and_orders() {
        let reg = Registry::new();
        let h = reg.histogram("t_q_lat", "test", false);
        // 90 fast samples (bucket bound 127), 10 slow (bucket bound 8191).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(8000);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.5).unwrap();
        let p90 = snap.quantile(0.9).unwrap();
        let p99 = snap.quantile(0.99).unwrap();
        // p50/p90 land in the fast bucket (64, 127], p99 in the slow one.
        assert!((64..=127).contains(&p50), "p50 = {p50}");
        assert!((64..=127).contains(&p90), "p90 = {p90}");
        assert!((4096..=8191).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p90 && p90 <= p99, "quantiles must be monotone");
        assert_eq!(snap.max_bound(), Some(8191));
    }

    #[test]
    fn quantile_top_bucket_does_not_explode() {
        let reg = Registry::new();
        let h = reg.histogram("t_q_inf", "test", false);
        h.record(u64::MAX);
        let snap = h.snapshot();
        // +Inf bucket: report its finite lower edge, not u64::MAX.
        let p50 = snap.quantile(0.5).unwrap();
        assert!(p50 < u64::MAX);
        assert_eq!(snap.max_bound(), Some(u64::MAX));
    }

    #[test]
    fn registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("t_once_total", "test", true);
        let b = reg.counter("t_once_total", "test", true);
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("t_kind", "test", true);
        let _ = reg.gauge("t_kind", "test", true);
    }

    #[test]
    fn snapshot_sorted_and_filterable() {
        let reg = Registry::new();
        reg.counter("b_total", "b", true).add(1);
        reg.counter("a_total", "a", false).add(2);
        reg.gauge("c_level", "c", true).set(9);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.samples.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a_total", "b_total", "c_level"]);
        assert_eq!(snap.deterministic_counters(), vec![("b_total", 1)]);
        assert_eq!(snap.counter("a_total"), Some(2));
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = Registry::new();
        let c = reg.counter("t_r_total", "t", true);
        let h = reg.histogram("t_r_hist", "t", false);
        c.add(5);
        h.record(3);
        reg.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(h.snapshot().count, 0);
    }
}
