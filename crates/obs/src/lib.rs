//! `ariadne-obs` — hand-rolled observability for the Ariadne reproduction.
//!
//! The paper's entire evaluation (§6) is built from runtime ratios,
//! message counts, and space accounting. This crate makes those signals
//! first-class for *our own* execution, the way the analytic's provenance
//! is first-class for the analytic:
//!
//! * [`metrics`] — a lock-free, sharded counter/gauge/histogram
//!   **registry**. Hot-path recording is a single relaxed `fetch_add` on
//!   a cache-padded per-shard cell; shards are summed only when a
//!   snapshot is taken (at barriers / end of run). Every metric carries a
//!   `deterministic` flag separating *logical-work* counters (messages,
//!   tuples, rule firings — bit-identical across thread counts) from
//!   *schedule-dependent* ones (timings, buffer occupancy, spill sizes).
//! * [`trace`] — a structured span/event tracing layer. Events carry a
//!   global sequence number, a monotonic timestamp, a level, a target,
//!   and typed fields; they land in per-thread ring buffers and are
//!   merged in sequence order on [`trace::drain`]. An `ARIADNE_LOG`-style
//!   env filter gates everything behind one relaxed atomic load, so the
//!   default (`off`) costs a branch on a loaded byte.
//! * [`export`] — two exporters: Prometheus-style text exposition for
//!   the registry and a JSONL trace dump for events. Both schemas are
//!   documented in the repository's `EXPERIMENTS.md`.
//!
//! The crate is **dependency-free by policy**: the build environment is
//! offline and everything external is vendored, so observability — the
//! layer that must never be the thing that breaks — uses only `std`.
//!
//! # Example
//!
//! ```
//! use ariadne_obs::{metrics::Registry, trace, export};
//!
//! let reg = Registry::new();
//! let sent = reg.counter("engine_messages_sent_total", "messages sent", true);
//! sent.add(42);
//! let text = export::prometheus_text(&reg.snapshot());
//! assert!(text.contains("engine_messages_sent_total 42"));
//!
//! trace::set_filter("info");
//! trace::event(
//!     trace::Level::Info,
//!     "engine",
//!     "superstep",
//!     &[("superstep", 3u64.into())],
//! );
//! let events = trace::drain();
//! assert_eq!(events.len(), 1);
//! let jsonl = export::trace_jsonl(&events);
//! assert!(jsonl.contains("\"name\":\"superstep\""));
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod server;
pub mod trace;

pub use export::{prometheus_text, trace_jsonl};
pub use metrics::{Counter, Gauge, Histogram, MetricKind, Registry};
pub use server::{
    obs_route, percent_decode, publish_report, status_reason, Handler, HttpServer, ObsServer,
    Request, Response,
};
pub use trace::{Event, Level, SpanContext, SpanGuard, Value};

/// The process-wide metric registry.
///
/// Instrumentation sites cache the handles they obtain from this
/// registry in `OnceLock` statics, so the registry mutex is only touched
/// once per site per process.
pub fn registry() -> &'static Registry {
    Registry::global()
}

/// Serialize tests that mutate the process-global trace state (filter,
/// rings); shared across this crate's test modules.
#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    static TRACE_LOCK: Mutex<()> = Mutex::new(());

    pub fn trace_lock() -> MutexGuard<'static, ()> {
        TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
