//! Exporters: Prometheus-style text exposition for the metric registry
//! and a JSONL dump for the trace ring. Both formats are documented in
//! the repository's `EXPERIMENTS.md` (§ "Observability output formats").

use crate::metrics::{MetricsSnapshot, SampleValue};
use crate::trace::{Event, Value};
use std::fmt::Write as _;

/// Render a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4 subset):
///
/// ```text
/// # HELP engine_messages_sent_total messages sent
/// # TYPE engine_messages_sent_total counter
/// engine_messages_sent_total 42
/// ```
///
/// Every metric additionally carries a
/// `# ARIADNE deterministic <name> <true|false>` comment line so
/// downstream tooling can select the thread-invariant subset without a
/// side table. Histograms emit cumulative `_bucket{le="..."}` series
/// plus `_sum` and `_count`, with `le="+Inf"` last, followed by
/// interpolated `{quantile="..."}` series (p50/p90/p99, summary-style)
/// computed server-side from the power-of-two buckets — scrape
/// consumers get latency percentiles without PromQL.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for s in &snapshot.samples {
        let _ = writeln!(out, "# HELP {} {}", s.name, s.help);
        let _ = writeln!(out, "# TYPE {} {}", s.name, s.kind.as_str());
        let _ = writeln!(out, "# ARIADNE deterministic {} {}", s.name, s.deterministic);
        match &s.value {
            SampleValue::Counter(v) => {
                let _ = writeln!(out, "{} {}", s.name, v);
            }
            SampleValue::Gauge(v) => {
                let _ = writeln!(out, "{} {}", s.name, v);
            }
            SampleValue::Histogram(h) => {
                for (bound, cumulative) in &h.buckets {
                    if *bound == u64::MAX {
                        let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", s.name, cumulative);
                    } else {
                        let _ =
                            writeln!(out, "{}_bucket{{le=\"{}\"}} {}", s.name, bound, cumulative);
                    }
                }
                let _ = writeln!(out, "{}_sum {}", s.name, h.sum);
                let _ = writeln!(out, "{}_count {}", s.name, h.count);
                for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                    if let Some(v) = h.quantile(q) {
                        let _ =
                            writeln!(out, "{}{{quantile=\"{}\"}} {}", s.name, label, v);
                    }
                }
            }
        }
    }
    out
}

/// Render captured events as JSON Lines: one object per event, keys in
/// fixed order (`seq`, `ts_ns`, `level`, `target`, `name`, `trace_id`,
/// `span_id`, `parent_id`, `fields`), `fields` an object preserving
/// field order. The three id keys encode the span tree (zero means
/// "none"; see [`crate::trace::SpanContext`]). Floats use Rust's default
/// `{}` formatting; non-finite floats are emitted as `null`.
pub fn trace_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = write!(
            out,
            "{{\"seq\":{},\"ts_ns\":{},\"level\":\"{}\",\"target\":\"{}\",\"name\":\"{}\",\"trace_id\":{},\"span_id\":{},\"parent_id\":{},\"fields\":{{",
            ev.seq,
            ev.ts_ns,
            ev.level.as_str(),
            escape(ev.target),
            escape(ev.name),
            ev.trace_id,
            ev.span_id,
            ev.parent_id,
        );
        for (i, (k, v)) in ev.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape(k));
            write_value(&mut out, v);
        }
        out.push_str("}}\n");
    }
    out
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::trace::Level;

    #[test]
    fn prometheus_counter_gauge_exposition() {
        let reg = Registry::new();
        reg.counter("e_msgs_total", "messages", true).add(7);
        reg.gauge("e_mem_bytes", "memory", false).set(-3);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# HELP e_msgs_total messages\n"));
        assert!(text.contains("# TYPE e_msgs_total counter\n"));
        assert!(text.contains("# ARIADNE deterministic e_msgs_total true\n"));
        assert!(text.contains("\ne_msgs_total 7\n"));
        assert!(text.contains("# TYPE e_mem_bytes gauge\n"));
        assert!(text.contains("\ne_mem_bytes -3\n"));
    }

    #[test]
    fn prometheus_histogram_exposition() {
        let reg = Registry::new();
        let h = reg.histogram("e_lat_ns", "latency", false);
        h.record(1);
        h.record(100);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("e_lat_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("e_lat_ns_bucket{le=\"127\"} 2\n"));
        assert!(text.contains("e_lat_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("e_lat_ns_sum 101\n"));
        assert!(text.contains("e_lat_ns_count 2\n"));
        // Interpolated quantile series follow _count.
        assert!(text.contains("e_lat_ns{quantile=\"0.5\"} 1\n"));
        assert!(text.contains("e_lat_ns{quantile=\"0.9\"}"));
        assert!(text.contains("e_lat_ns{quantile=\"0.99\"}"));
    }

    #[test]
    fn prometheus_empty_histogram_has_no_quantiles() {
        let reg = Registry::new();
        let _ = reg.histogram("e_idle_ns", "latency", false);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("e_idle_ns_count 0\n"));
        assert!(!text.contains("quantile="));
    }

    #[test]
    fn jsonl_escapes_and_orders() {
        let ev = Event {
            seq: 3,
            ts_ns: 99,
            level: Level::Warn,
            target: "store",
            name: "spill",
            trace_id: 7,
            span_id: 0,
            parent_id: 7,
            fields: vec![
                ("bytes", Value::U64(1024)),
                ("path", Value::Str("a\"b\\c\n".into())),
                ("ok", Value::Bool(true)),
                ("delta", Value::I64(-2)),
                ("ratio", Value::F64(0.5)),
                ("nan", Value::F64(f64::NAN)),
            ],
        };
        let line = trace_jsonl(&[ev]);
        assert_eq!(
            line,
            "{\"seq\":3,\"ts_ns\":99,\"level\":\"warn\",\"target\":\"store\",\"name\":\"spill\",\"trace_id\":7,\"span_id\":0,\"parent_id\":7,\"fields\":{\"bytes\":1024,\"path\":\"a\\\"b\\\\c\\n\",\"ok\":true,\"delta\":-2,\"ratio\":0.5,\"nan\":null}}\n"
        );
    }
}
