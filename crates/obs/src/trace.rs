//! Structured span/event tracing with an `ARIADNE_LOG`-style env filter
//! and per-thread ring-buffered capture.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled must be near-free.** The filter's maximum enabled level
//!    lives in one `AtomicU8`; [`enabled`] is a relaxed load plus a
//!    compare. At the default level (`off`) every instrumentation site
//!    reduces to that single check.
//! 2. **Recording must not serialize workers.** Each thread appends to
//!    its own fixed-capacity ring buffer; the only shared state touched
//!    on the hot path is a global `AtomicU64` sequence counter, which
//!    gives events a total order that [`drain`] can merge on.
//! 3. **Capture is lossy by design.** Rings overwrite their oldest
//!    events when full (capacity [`RING_CAPACITY`]); `dropped` counts
//!    are reported so exporters can flag truncation.
//!
//! Filter syntax (`ARIADNE_LOG`): a default level and/or comma-separated
//! `target=level` overrides, e.g. `info`, `warn,engine=debug`,
//! `off,store=trace`. Targets match by prefix, so `engine` covers
//! `engine::checkpoint`. Levels: `off`, `error`, `warn`, `info`,
//! `debug`, `trace`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Maximum events retained per thread ring.
pub const RING_CAPACITY: usize = 8192;

/// Event severity. Discriminants are wire-stable: `Off < Error < … < Trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Tracing disabled (filter-only; events never carry this level).
    Off = 0,
    /// Unrecoverable or data-loss conditions.
    Error = 1,
    /// Injected faults, checksum failures, retries.
    Warn = 2,
    /// Run lifecycle: start, resume, finish, checkpoint.
    Info = 3,
    /// Per-superstep and per-spill detail.
    Debug = 4,
    /// Everything, including per-chunk detail.
    Trace = 5,
}

impl Level {
    /// Lower-case name used by the filter and the JSONL exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a level name; `None` on unknown input.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string (kept rare on hot paths).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Duration> for Value {
    fn from(v: Duration) -> Self {
        Value::U64(v.as_nanos() as u64)
    }
}

/// One captured trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global sequence number: a total order across all threads.
    pub seq: u64,
    /// Nanoseconds since the tracing epoch (first use in this process).
    pub ts_ns: u64,
    /// Severity.
    pub level: Level,
    /// Subsystem, e.g. `engine`, `store`, `pql`, `engine::checkpoint`.
    pub target: &'static str,
    /// Event name, e.g. `superstep`, `spill`, `fault_injected`.
    pub name: &'static str,
    /// Trace the event belongs to (the root span's id); 0 when the
    /// event happened outside any span.
    pub trace_id: u64,
    /// For a span-close event, the span's own id; 0 for point events.
    pub span_id: u64,
    /// The enclosing span: for a span-close event its parent span, for a
    /// point event the span it occurred inside. 0 at the root / outside.
    pub parent_id: u64,
    /// Typed key/value payload.
    pub fields: Vec<(&'static str, Value)>,
}

/// A span's identity, propagatable across threads.
///
/// [`current_context`] captures the calling thread's innermost active
/// span; handing the value to a worker thread and calling
/// [`SpanContext::enter`] there makes spans and events recorded by the
/// worker children of the originating span, so one logical operation
/// (e.g. a provenance query fanning out over replay chunks) forms a
/// single navigable tree in the drained event stream.
///
/// Span-close events carry `(trace_id, span_id, parent_id)`; a span's
/// start time is `ts_ns - dur_ns` of its close event. Point events carry
/// the enclosing span in `parent_id` with `span_id = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext {
    /// The trace (root span) id; 0 when no span is active.
    pub trace_id: u64,
    /// The innermost active span id; 0 when no span is active.
    pub span_id: u64,
}

impl SpanContext {
    /// Is this a real context (captured inside an active span)?
    pub fn is_active(self) -> bool {
        self.span_id != 0
    }

    /// Make this context the calling thread's innermost span until the
    /// returned guard drops. Inert for an inactive context.
    pub fn enter(self) -> ContextGuard {
        if !self.is_active() {
            return ContextGuard { entered: false };
        }
        CONTEXT.with(|c| c.borrow_mut().push(self));
        ContextGuard { entered: true }
    }
}

/// RAII guard from [`SpanContext::enter`]; pops the context on drop.
pub struct ContextGuard {
    entered: bool,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.entered {
            CONTEXT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

thread_local! {
    /// Stack of active span contexts on this thread, innermost last.
    static CONTEXT: RefCell<Vec<SpanContext>> = const { RefCell::new(Vec::new()) };
}

/// The calling thread's innermost active span context (all-zero when no
/// span is active). Cheap: one thread-local read.
pub fn current_context() -> SpanContext {
    CONTEXT.with(|c| c.borrow().last().copied().unwrap_or_default())
}

/// Parsed `ARIADNE_LOG` filter.
#[derive(Debug, Clone)]
struct Filter {
    default: Level,
    /// `(target_prefix, level)` overrides, first match wins.
    overrides: Vec<(String, Level)>,
}

impl Filter {
    fn off() -> Self {
        Filter {
            default: Level::Off,
            overrides: Vec::new(),
        }
    }

    fn parse(spec: &str) -> Self {
        let mut f = Filter::off();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((target, level)) = part.split_once('=') {
                if let Some(level) = Level::parse(level) {
                    f.overrides.push((target.trim().to_string(), level));
                }
            } else if let Some(level) = Level::parse(part) {
                f.default = level;
            }
        }
        f
    }

    fn max_level(&self) -> Level {
        self.overrides
            .iter()
            .map(|(_, l)| *l)
            .max()
            .map_or(self.default, |m| m.max(self.default))
    }

    fn level_for(&self, target: &str) -> Level {
        for (prefix, level) in &self.overrides {
            if target.starts_with(prefix.as_str()) {
                return *level;
            }
        }
        self.default
    }
}

struct Ring {
    events: Mutex<RingInner>,
}

struct RingInner {
    buf: VecDeque<Event>,
    dropped: u64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            events: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(64),
                dropped: 0,
            }),
        }
    }

    fn push(&self, ev: Event) {
        let mut inner = self.events.lock().unwrap();
        if inner.buf.len() >= RING_CAPACITY {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(ev);
    }
}

struct TraceState {
    /// Fast gate: max enabled level across the whole filter, as a byte.
    max_level: AtomicU8,
    filter: Mutex<Filter>,
    seq: AtomicU64,
    /// Span-id allocator; ids start at 1 so 0 always means "none".
    span_ids: AtomicU64,
    epoch: Instant,
    rings: Mutex<Vec<Arc<Ring>>>,
}

fn state() -> &'static TraceState {
    static STATE: OnceLock<TraceState> = OnceLock::new();
    STATE.get_or_init(|| {
        let filter = std::env::var("ARIADNE_LOG")
            .map(|s| Filter::parse(&s))
            .unwrap_or_else(|_| Filter::off());
        TraceState {
            max_level: AtomicU8::new(filter.max_level() as u8),
            filter: Mutex::new(filter),
            seq: AtomicU64::new(0),
            span_ids: AtomicU64::new(1),
            epoch: Instant::now(),
            rings: Mutex::new(Vec::new()),
        }
    })
}

thread_local! {
    static THREAD_RING: Arc<Ring> = {
        let ring = Arc::new(Ring::new());
        state().rings.lock().unwrap().push(ring.clone());
        ring
    };
}

/// Replace the filter programmatically (overrides `ARIADNE_LOG`).
/// Accepts the same syntax as the env var.
pub fn set_filter(spec: &str) {
    let st = state();
    let filter = Filter::parse(spec);
    st.max_level.store(filter.max_level() as u8, Ordering::Relaxed);
    *st.filter.lock().unwrap() = filter;
}

/// Cheap check: would an event at `level` for `target` be captured?
///
/// The common case (tracing off) is one relaxed atomic load and a
/// compare; the filter mutex is only taken when the level passes the
/// global gate.
#[inline]
pub fn enabled(level: Level, target: &str) -> bool {
    let gate = state().max_level.load(Ordering::Relaxed);
    if (level as u8) > gate {
        return false;
    }
    level <= state().filter.lock().unwrap().level_for(target)
}

/// Record an event if the filter allows it. `fields` is only cloned
/// when the event is actually captured. The event is attributed to the
/// calling thread's innermost active span (see [`SpanContext`]).
pub fn event(level: Level, target: &'static str, name: &'static str, fields: &[(&'static str, Value)]) {
    if !enabled(level, target) {
        return;
    }
    let ctx = current_context();
    let st = state();
    let ev = Event {
        seq: st.seq.fetch_add(1, Ordering::Relaxed),
        ts_ns: st.epoch.elapsed().as_nanos() as u64,
        level,
        target,
        name,
        trace_id: ctx.trace_id,
        span_id: 0,
        parent_id: ctx.span_id,
        fields: fields.to_vec(),
    };
    THREAD_RING.with(|r| r.push(ev));
}

/// RAII guard created by [`span`]; emits a closing event with a
/// `dur_ns` field when dropped (if the span was enabled at creation).
pub struct SpanGuard {
    start: Option<SpanData>,
}

struct SpanData {
    started: Instant,
    level: Level,
    target: &'static str,
    name: &'static str,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    fields: Vec<(&'static str, Value)>,
}

impl SpanGuard {
    /// A guard that records nothing.
    pub fn disabled() -> Self {
        SpanGuard { start: None }
    }

    /// This span's propagatable context, for handing to worker threads
    /// (see [`SpanContext::enter`]). Inactive for a disabled guard.
    pub fn context(&self) -> SpanContext {
        match &self.start {
            Some(d) => SpanContext {
                trace_id: d.trace_id,
                span_id: d.span_id,
            },
            None => SpanContext::default(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut data) = self.start.take() {
            // Pop this span off the thread's context stack (spans are
            // strictly LIFO per thread by RAII construction).
            CONTEXT.with(|c| {
                c.borrow_mut().pop();
            });
            data.fields
                .push(("dur_ns", Value::U64(data.started.elapsed().as_nanos() as u64)));
            let st = state();
            let ev = Event {
                seq: st.seq.fetch_add(1, Ordering::Relaxed),
                ts_ns: st.epoch.elapsed().as_nanos() as u64,
                level: data.level,
                target: data.target,
                name: data.name,
                trace_id: data.trace_id,
                span_id: data.span_id,
                parent_id: data.parent_id,
                fields: data.fields,
            };
            THREAD_RING.with(|r| r.push(ev));
        }
    }
}

/// Open a timed span. The returned guard emits `name` with a `dur_ns`
/// field (appended after `fields`) when it goes out of scope. If the
/// filter rejects the span at creation time the guard is inert.
///
/// The span becomes the thread's innermost context until the guard
/// drops: nested spans get `parent_id` pointing here, point events are
/// attributed to it, and a root span (no enclosing span on this thread)
/// starts a new trace with `trace_id` equal to its own span id.
pub fn span(
    level: Level,
    target: &'static str,
    name: &'static str,
    fields: &[(&'static str, Value)],
) -> SpanGuard {
    if !enabled(level, target) {
        return SpanGuard::disabled();
    }
    let parent = current_context();
    let span_id = state().span_ids.fetch_add(1, Ordering::Relaxed);
    let trace_id = if parent.trace_id != 0 {
        parent.trace_id
    } else {
        span_id
    };
    CONTEXT.with(|c| c.borrow_mut().push(SpanContext { trace_id, span_id }));
    SpanGuard {
        start: Some(SpanData {
            started: Instant::now(),
            level,
            target,
            name,
            trace_id,
            span_id,
            parent_id: parent.span_id,
            fields: fields.to_vec(),
        }),
    }
}

/// Cached handle for the ring-overflow counter. Every drain folds the
/// rings' dropped totals in here, so lossiness is visible in `/metrics`
/// even when callers use [`drain`] and never look at the count.
fn dropped_counter() -> &'static crate::metrics::Counter {
    static H: OnceLock<crate::metrics::Counter> = OnceLock::new();
    H.get_or_init(|| {
        crate::metrics::Registry::global().counter(
            "trace_events_dropped_total",
            "trace events lost to ring-buffer overwrite before a drain",
            false,
        )
    })
}

/// Drain every thread's ring buffer, returning all captured events
/// merged into global sequence order, plus nothing else: rings are left
/// empty. Events lost to ring overflow are folded into the
/// `trace_events_dropped_total` registry counter (and also returned by
/// [`drain_stats`]), so lossiness is never silently discarded.
pub fn drain() -> Vec<Event> {
    drain_stats().0
}

/// Like [`drain`], also returning the total number of events dropped by
/// ring overwrite since the previous drain.
///
/// Concurrent drains (two `/trace` clients) must partition the loss
/// count exactly: each dropped event is counted by exactly one drain,
/// and the registry counter advances by exactly what this drain
/// claimed. The fold is therefore a single swap per ring — buffer and
/// drop count are taken atomically under the ring lock (`take`/`swap`,
/// no read-then-reset window), and the global counter is bumped once
/// with the already-claimed total rather than re-read from the rings.
pub fn drain_stats() -> (Vec<Event>, u64) {
    let st = state();
    let rings = st.rings.lock().unwrap();
    let mut out = Vec::new();
    let mut dropped = 0u64;
    for ring in rings.iter() {
        let (buf, ring_dropped) = {
            let mut inner = ring.events.lock().unwrap();
            (
                std::mem::take(&mut inner.buf),
                std::mem::replace(&mut inner.dropped, 0),
            )
        };
        out.extend(buf);
        dropped += ring_dropped;
    }
    drop(rings);
    out.sort_by_key(|e| e.seq);
    dropped_counter().add(dropped);
    (out, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global, so the tests below run serially
    // through one crate-wide mutex to avoid cross-test interference.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        crate::test_support::trace_lock()
    }

    #[test]
    fn filter_parses_default_and_overrides() {
        let f = Filter::parse("warn,engine=debug, store = trace");
        assert_eq!(f.default, Level::Warn);
        assert_eq!(f.level_for("engine::checkpoint"), Level::Debug);
        assert_eq!(f.level_for("store"), Level::Trace);
        assert_eq!(f.level_for("pql"), Level::Warn);
        assert_eq!(f.max_level(), Level::Trace);
    }

    #[test]
    fn filter_off_rejects_everything() {
        let f = Filter::off();
        assert_eq!(f.level_for("engine"), Level::Off);
        assert_eq!(f.max_level(), Level::Off);
    }

    #[test]
    fn events_capture_and_drain_in_seq_order() {
        let _g = locked();
        set_filter("info");
        let _ = drain();
        event(Level::Info, "engine", "a", &[("k", 1u64.into())]);
        event(Level::Debug, "engine", "filtered_out", &[]);
        event(Level::Info, "store", "b", &[("s", "x".into())]);
        let evs = drain();
        set_filter("off");
        assert_eq!(evs.len(), 2);
        assert!(evs[0].seq < evs[1].seq);
        assert_eq!(evs[0].name, "a");
        assert_eq!(evs[1].fields[0].1, Value::Str("x".into()));
    }

    #[test]
    fn span_emits_duration() {
        let _g = locked();
        set_filter("debug");
        let _ = drain();
        {
            let _s = span(Level::Debug, "engine", "phase", &[("superstep", 0u64.into())]);
        }
        let evs = drain();
        set_filter("off");
        assert_eq!(evs.len(), 1);
        let last = evs[0].fields.last().unwrap();
        assert_eq!(last.0, "dur_ns");
    }

    #[test]
    fn span_tree_ids_nest_and_attribute_events() {
        let _g = locked();
        set_filter("trace");
        let _ = drain();
        {
            let root = span(Level::Info, "pql", "query", &[]);
            let root_ctx = root.context();
            assert!(root_ctx.is_active());
            {
                let child = span(Level::Debug, "layered", "replay", &[]);
                let child_ctx = child.context();
                assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
                assert_ne!(child_ctx.span_id, root_ctx.span_id);
                event(Level::Trace, "store", "read", &[]);
            }
            event(Level::Info, "pql", "merged", &[]);
        }
        let evs = drain();
        set_filter("off");
        // Close order: store read (point), child close, merged (point), root close.
        assert_eq!(evs.len(), 4);
        let read = &evs[0];
        let child = &evs[1];
        let merged = &evs[2];
        let root = &evs[3];
        assert_eq!(root.parent_id, 0);
        assert_eq!(root.trace_id, root.span_id, "root span starts its trace");
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, 0);
        // Point events: span_id 0, parent is the enclosing span.
        assert_eq!(read.span_id, 0);
        assert_eq!(read.parent_id, child.span_id);
        assert_eq!(read.trace_id, root.trace_id);
        assert_eq!(merged.parent_id, root.span_id);
    }

    #[test]
    fn span_context_propagates_across_threads() {
        let _g = locked();
        set_filter("debug");
        let _ = drain();
        let root_ids;
        {
            let root = span(Level::Info, "layered", "run", &[]);
            let ctx = root.context();
            root_ids = (ctx.trace_id, ctx.span_id);
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(move || {
                        let _enter = ctx.enter();
                        let _chunk = span(Level::Debug, "layered", "chunk", &[]);
                    });
                }
            });
        }
        let evs = drain();
        set_filter("off");
        let chunks: Vec<_> = evs.iter().filter(|e| e.name == "chunk").collect();
        assert_eq!(chunks.len(), 2);
        for c in &chunks {
            assert_eq!(c.trace_id, root_ids.0);
            assert_eq!(c.parent_id, root_ids.1);
        }
        // Worker threads' stacks drained: entering again is a no-op root.
        assert_eq!(current_context(), SpanContext::default());
    }

    #[test]
    fn inactive_context_enter_is_inert() {
        let _g = locked();
        let ctx = SpanContext::default();
        {
            let _e = ctx.enter();
            assert_eq!(current_context(), SpanContext::default());
        }
    }

    #[test]
    fn overflow_from_many_threads_is_counted_and_exported() {
        let _g = locked();
        set_filter("debug");
        let _ = drain(); // reset rings and fold stale drops away
        let before = dropped_counter().value();
        // Each thread's private ring overflows well past RING_CAPACITY.
        let threads = 4;
        let per_thread = RING_CAPACITY + 100;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(move || {
                    for i in 0..per_thread {
                        event(Level::Debug, "overflow", "spin", &[("i", i.into())]);
                    }
                });
            }
        });
        let (events, dropped) = drain_stats();
        set_filter("off");
        let ours = events.iter().filter(|e| e.target == "overflow").count();
        // Every event was either retained or counted dropped.
        assert_eq!(
            ours as u64 + dropped,
            (threads * per_thread) as u64,
            "retained + dropped must equal recorded"
        );
        assert!(dropped >= (threads * 100) as u64, "each ring overflowed");
        // And the loss is visible as a registry counter for /metrics.
        assert_eq!(dropped_counter().value(), before + dropped);
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = locked();
        set_filter("off");
        let _ = drain();
        {
            let _s = span(Level::Info, "engine", "phase", &[]);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn target_override_enables_below_default() {
        let _g = locked();
        set_filter("off,store=debug");
        let _ = drain();
        event(Level::Debug, "store", "spill", &[]);
        event(Level::Debug, "engine", "superstep", &[]);
        let evs = drain();
        set_filter("off");
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].target, "store");
    }
}
