//! A minimal, dependency-free HTTP/1.1 server core plus the telemetry
//! plane built on it.
//!
//! Everything else in this crate dumps artifacts *after* a run; this
//! module makes the same signals scrapeable *while* the analytic and its
//! provenance queries are executing — the whole point of online
//! provenance. It is deliberately tiny: `TcpListener`, a fixed worker
//! pool, `GET`-only routing, `Connection: close` on every response. It
//! is an operational surface for scrapers and `curl`, not a general web
//! server.
//!
//! The transport machinery ([`HttpServer`]) is decoupled from the obs
//! routes so other planes can mount on it: a handler is any
//! `Fn(&Request) -> Response + Send + Sync`, the parsed [`Request`]
//! carries the query string and headers, and [`obs_route`] is the
//! default handler other planes can fall back to — one listener can
//! serve `/metrics` *and* an application API (`ariadne-serve` does
//! exactly this).
//!
//! Obs endpoints:
//!
//! | Path       | Body                                                        |
//! |------------|-------------------------------------------------------------|
//! | `/metrics` | global registry, Prometheus text ([`crate::prometheus_text`]) |
//! | `/trace`   | drains the trace rings as JSONL ([`crate::trace_jsonl`]);   |
//! |            | `X-Ariadne-Dropped-Events` reports ring overflow loss       |
//! | `/report`  | latest [`publish_report`]ed run report (404 until one lands) |
//! | `/healthz` | `ok` — liveness                                             |
//!
//! Anything malformed gets `400`, unknown paths `404`, non-GET methods
//! `405`; none of these wedge the listener. `/trace` is destructive by
//! design (it drains the rings, like [`crate::trace::drain`]) — point
//! exactly one consumer at it.
//!
//! The server is bounded everywhere: `WORKERS` handler threads, a
//! `QUEUE_DEPTH`-deep accept queue (excess connections wait in the OS
//! backlog), `MAX_REQUEST_BYTES` per request head, and read/write
//! timeouts so a stalled peer cannot pin a worker. A request head split
//! across TCP segments is reassembled by looping the read until the
//! blank line, the byte cap, or the timeout — a flushed half-request is
//! not a malformed request. [`HttpServer::shutdown`] stops accepting,
//! drains in-flight requests, and joins every thread.

use crate::metrics::Counter;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Handler threads serving accepted connections.
pub const WORKERS: usize = 4;
/// Accepted-but-unserved connections held between accept and a worker.
pub const QUEUE_DEPTH: usize = 32;
/// Upper bound on the request head (request line + headers) we read.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection socket read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Cached handles for the server's own metrics (it eats its own food).
mod obs_handles {
    use super::*;

    macro_rules! http_counter {
        ($fn_name:ident, $name:literal, $help:literal) => {
            pub fn $fn_name() -> &'static Counter {
                static H: OnceLock<Counter> = OnceLock::new();
                H.get_or_init(|| crate::registry().counter($name, $help, false))
            }
        };
    }

    http_counter!(
        requests,
        "obs_http_requests_total",
        "HTTP requests accepted by the exposition server"
    );
    http_counter!(
        bad_requests,
        "obs_http_bad_requests_total",
        "HTTP requests rejected as malformed (400) or unsupported (404/405)"
    );
}

/// The latest published run report, served verbatim on `/report`.
fn latest_report() -> &'static Mutex<Option<String>> {
    static R: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(None))
}

/// Publish a run's report JSON for `GET /report`. Call it after each
/// run (or superstep); the newest value wins. Publishing is independent
/// of any server's lifetime, so drivers can publish unconditionally.
pub fn publish_report(json: String) {
    *latest_report().lock().unwrap() = Some(json);
}

/// The currently published report, if any (what `/report` would serve).
pub fn published_report() -> Option<String> {
    latest_report().lock().unwrap().clone()
}

/// One parsed request head: method, path, raw query string, headers.
///
/// Routing is path-only; handlers read parameters through
/// [`Request::param`] (percent-decoded) and headers through
/// [`Request::header`] (case-insensitive).
#[derive(Debug)]
pub struct Request {
    /// The request method, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The path with any query string stripped.
    pub path: String,
    /// The raw query string after `?` (empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs; names lowercased at parse time.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// The percent-decoded value of query parameter `name`, if present.
    /// `+` decodes to a space, `%XX` to the byte it encodes.
    pub fn param(&self, name: &str) -> Option<String> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then(|| percent_decode(v))
        })
    }

    /// The value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }
}

/// Decode `%XX` escapes and `+`-for-space in a query-string component.
/// Malformed escapes pass through verbatim rather than erroring: the
/// parameter grammar is the application's concern, transport just
/// unwraps the encoding it can prove.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match (
                    bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                    bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
                ) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One response: status, content type, extra headers, body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Additional `(name, value)` header pairs emitted verbatim.
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `text/plain` response.
    pub fn plain(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Attach an extra header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }
}

/// The reason phrase for the status codes this plane emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        410 => "Gone",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// A request handler mounted on an [`HttpServer`]. Called concurrently
/// from the worker pool.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// The transport core: listener, bounded accept queue, fixed worker
/// pool, request-head reassembly, response framing. Route logic is the
/// mounted [`Handler`]'s; [`ObsServer`] mounts [`obs_route`].
///
/// Dropping without [`HttpServer::shutdown`] performs the same graceful
/// shutdown.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `127.0.0.1:9464`, or port `0` for an ephemeral
    /// port) and serve `handler` in background threads.
    pub fn bind_with<A: ToSocketAddrs>(addr: A, handler: Handler) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) = sync_channel(QUEUE_DEPTH);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(WORKERS);
        for i in 0..WORKERS {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("obs-http-{i}"))
                    .spawn(move || loop {
                        // Take the next connection; exit when the accept
                        // thread has gone and the queue is drained.
                        let stream = match rx.lock().unwrap().recv() {
                            Ok(s) => s,
                            Err(_) => break,
                        };
                        handle_connection(stream, &handler);
                    })?,
            );
        }

        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("obs-http-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break; // the wake-up connection lands here too
                    }
                    match conn {
                        // A full queue blocks here, bounding in-flight
                        // work; further peers wait in the OS backlog.
                        Ok(stream) => {
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // tx drops here: workers drain the queue and exit.
            })?;

        Ok(HttpServer {
            addr,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, finish queued requests, join
    /// every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept thread out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A running telemetry server: the obs routes mounted on the shared
/// [`HttpServer`] core.
pub struct ObsServer {
    inner: HttpServer,
}

impl ObsServer {
    /// Bind `addr` and serve the obs endpoints in background threads.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<ObsServer> {
        Ok(ObsServer {
            inner: HttpServer::bind_with(addr, Arc::new(obs_route))?,
        })
    }

    /// The bound address (useful with an ephemeral port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Graceful shutdown: stop accepting, finish queued requests, join
    /// every thread.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

/// Read the request head (through the blank line), bounded by
/// [`MAX_REQUEST_BYTES`]. Loops across short reads — a head split over
/// multiple TCP segments is reassembled, not rejected. Returns `None`
/// on timeout/oversize/EOF-mid-head.
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n")
                    || buf.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
                if buf.len() > MAX_REQUEST_BYTES {
                    return None;
                }
            }
            // A signal landing mid-read is not a protocol error; only
            // real failures (including the IO_TIMEOUT deadline) abort.
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
    String::from_utf8(buf).ok()
}

/// Parse the request head into a [`Request`]; `Err(400)` on anything
/// that is not a well-formed HTTP/1.x request line. Method filtering
/// (405) is the router's decision, not the parser's.
fn parse_request(head: &str) -> Result<Request, u16> {
    let mut lines = head.lines();
    let line = lines.next().ok_or(400u16)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(400u16)?;
    let target = parts.next().ok_or(400u16)?;
    let version = parts.next().ok_or(400u16)?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return Err(400);
    }
    if !target.starts_with('/') || !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(400);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        headers,
    })
}

/// The obs-plane router: serves `/metrics`, `/trace`, `/report` and
/// `/healthz`, `405` for non-GET methods, `404` otherwise. Public so
/// other planes mounted on [`HttpServer`] can delegate unknown paths
/// here and keep the telemetry endpoints alive on their port.
pub fn obs_route(req: &Request) -> Response {
    if req.method != "GET" {
        return Response::plain(405, format!("{}\n", status_reason(405)));
    }
    match req.path.as_str() {
        "/metrics" => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            extra_headers: Vec::new(),
            body: crate::prometheus_text(&crate::registry().snapshot()),
        },
        "/trace" => {
            let (events, dropped) = crate::trace::drain_stats();
            Response {
                status: 200,
                content_type: "application/jsonl; charset=utf-8",
                extra_headers: vec![("X-Ariadne-Dropped-Events".into(), dropped.to_string())],
                body: crate::trace_jsonl(&events),
            }
        }
        "/report" => match published_report() {
            Some(json) => Response::json(200, json + "\n"),
            None => Response::plain(404, "no report published yet\n"),
        },
        "/healthz" => Response::plain(200, "ok\n"),
        _ => Response::plain(404, "not found\n"),
    }
}

fn handle_connection(mut stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    obs_handles::requests().inc();

    let response = match read_request_head(&mut stream) {
        None => Response::plain(400, "bad request\n"),
        Some(head) => match parse_request(&head) {
            Ok(req) => handler(&req),
            Err(status) => Response::plain(status, format!("{}\n", status_reason(status))),
        },
    };
    if response.status >= 400 {
        obs_handles::bad_requests().inc();
    }

    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
    );
    for (name, value) in &response.extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(&response.body);
    let _ = stream.write_all(out.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    /// One round-trip against a running server; returns (status, headers,
    /// body). `raw` is written verbatim so tests can send malformed junk.
    fn roundtrip(addr: SocketAddr, raw: &str) -> (u16, Vec<String>, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        s.flush().unwrap();
        let mut reader = std::io::BufReader::new(s);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_string();
            if line.is_empty() {
                break;
            }
            headers.push(line);
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        (status, headers, body)
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, Vec<String>, String) {
        roundtrip(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    #[test]
    fn serves_healthz_metrics_and_404() {
        let server = ObsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (status, _, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        crate::registry()
            .counter("obs_server_test_total", "server test marker", true)
            .add(3);
        let (status, headers, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(headers.iter().any(|h| h.contains("text/plain")));
        assert!(body.contains("obs_server_test_total 3"));
        assert!(body.contains("# ARIADNE deterministic obs_server_test_total true"));

        let (status, _, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn malformed_and_non_get_do_not_wedge() {
        let server = ObsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (status, _, _) = roundtrip(addr, "???\r\n\r\n");
        assert_eq!(status, 400);
        let (status, _, _) = roundtrip(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 405);
        let (status, _, _) = roundtrip(addr, "GET /metrics TELNET/9\r\n\r\n");
        assert_eq!(status, 400);

        // The listener is still alive and serving.
        let (status, _, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        server.shutdown();
    }

    #[test]
    fn report_is_404_until_published() {
        let server = ObsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        // NB: the published report is process-global; earlier tests in
        // this binary may already have published. Publish a sentinel and
        // assert it wins (newest-wins semantics).
        publish_report("{\"supersteps\":42}".to_string());
        let (status, _, body) = get(addr, "/report");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"supersteps\":42}\n");
        server.shutdown();
    }

    #[test]
    fn trace_endpoint_drains_and_reports_drops() {
        let _g = crate::test_support::trace_lock();
        let server = ObsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        crate::trace::set_filter("info");
        crate::trace::event(
            crate::trace::Level::Info,
            "obs_server_test",
            "ping",
            &[("n", 1u64.into())],
        );
        let (status, headers, body) = get(addr, "/trace");
        crate::trace::set_filter("off");
        assert_eq!(status, 200);
        assert!(headers
            .iter()
            .any(|h| h.starts_with("X-Ariadne-Dropped-Events:")));
        assert!(body.lines().any(|l| l.contains("\"name\":\"ping\"")));
        server.shutdown();
    }

    #[test]
    fn request_params_and_headers_parse() {
        let req = parse_request(
            "GET /query?pql=hot%28x%29+%3A-+v.&limit=7&cursor= HTTP/1.1\r\n\
             Host: x\r\nX-Ariadne-Tenant: alice\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.param("pql").as_deref(), Some("hot(x) :- v."));
        assert_eq!(req.param("limit").as_deref(), Some("7"));
        assert_eq!(req.param("cursor").as_deref(), Some(""));
        assert_eq!(req.param("absent"), None);
        assert_eq!(req.header("x-ariadne-tenant"), Some("alice"));
        assert_eq!(req.header("X-Ariadne-Tenant"), Some("alice"));
        assert_eq!(req.header("nope"), None);
    }

    #[test]
    fn percent_decoding_is_total() {
        assert_eq!(percent_decode("a+b%20c%3a%2F"), "a b c:/");
        // Malformed escapes pass through instead of erroring.
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn custom_handler_mounts_on_the_shared_core() {
        let handler: Handler = Arc::new(|req: &Request| {
            if req.path == "/echo" {
                Response::json(200, format!("{{\"q\":\"{}\"}}", req.param("q").unwrap_or_default()))
                    .with_header("X-Test", "1")
            } else {
                obs_route(req)
            }
        });
        let server = HttpServer::bind_with("127.0.0.1:0", handler).unwrap();
        let addr = server.local_addr();
        let (status, headers, body) = get(addr, "/echo?q=hi");
        assert_eq!(status, 200);
        assert!(headers.iter().any(|h| h == "X-Test: 1"), "{headers:?}");
        assert_eq!(body, "{\"q\":\"hi\"}");
        // Unknown paths fall through to the obs routes.
        let (status, _, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        server.shutdown();
    }
}
