//! A minimal, dependency-free HTTP/1.1 exposition server: the live
//! telemetry plane.
//!
//! Everything else in this crate dumps artifacts *after* a run; this
//! module makes the same signals scrapeable *while* the analytic and its
//! provenance queries are executing — the whole point of online
//! provenance. It is deliberately tiny: `TcpListener`, a fixed worker
//! pool, `GET`-only routing, `Connection: close` on every response. It
//! is an operational surface for scrapers and `curl`, not a general web
//! server.
//!
//! Endpoints:
//!
//! | Path       | Body                                                        |
//! |------------|-------------------------------------------------------------|
//! | `/metrics` | global registry, Prometheus text ([`crate::prometheus_text`]) |
//! | `/trace`   | drains the trace rings as JSONL ([`crate::trace_jsonl`]);   |
//! |            | `X-Ariadne-Dropped-Events` reports ring overflow loss       |
//! | `/report`  | latest [`publish_report`]ed run report (404 until one lands) |
//! | `/healthz` | `ok` — liveness                                             |
//!
//! Anything malformed gets `400`, unknown paths `404`, non-GET methods
//! `405`; none of these wedge the listener. `/trace` is destructive by
//! design (it drains the rings, like [`crate::trace::drain`]) — point
//! exactly one consumer at it.
//!
//! The server is bounded everywhere: `WORKERS` handler threads, a
//! `QUEUE_DEPTH`-deep accept queue (excess connections wait in the OS
//! backlog), `MAX_REQUEST_BYTES` per request head, and read/write
//! timeouts so a stalled peer cannot pin a worker. [`ObsServer::shutdown`]
//! stops accepting, drains in-flight requests, and joins every thread.

use crate::metrics::Counter;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Handler threads serving accepted connections.
pub const WORKERS: usize = 4;
/// Accepted-but-unserved connections held between accept and a worker.
pub const QUEUE_DEPTH: usize = 32;
/// Upper bound on the request head (request line + headers) we read.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection socket read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Cached handles for the server's own metrics (it eats its own food).
mod obs_handles {
    use super::*;

    macro_rules! http_counter {
        ($fn_name:ident, $name:literal, $help:literal) => {
            pub fn $fn_name() -> &'static Counter {
                static H: OnceLock<Counter> = OnceLock::new();
                H.get_or_init(|| crate::registry().counter($name, $help, false))
            }
        };
    }

    http_counter!(
        requests,
        "obs_http_requests_total",
        "HTTP requests accepted by the exposition server"
    );
    http_counter!(
        bad_requests,
        "obs_http_bad_requests_total",
        "HTTP requests rejected as malformed (400) or unsupported (404/405)"
    );
}

/// The latest published run report, served verbatim on `/report`.
fn latest_report() -> &'static Mutex<Option<String>> {
    static R: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(None))
}

/// Publish a run's report JSON for `GET /report`. Call it after each
/// run (or superstep); the newest value wins. Publishing is independent
/// of any server's lifetime, so drivers can publish unconditionally.
pub fn publish_report(json: String) {
    *latest_report().lock().unwrap() = Some(json);
}

/// The currently published report, if any (what `/report` would serve).
pub fn published_report() -> Option<String> {
    latest_report().lock().unwrap().clone()
}

/// A running exposition server. Dropping without [`ObsServer::shutdown`]
/// performs the same graceful shutdown.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9464`, or port `0` for an ephemeral
    /// port) and start serving in background threads.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) = sync_channel(QUEUE_DEPTH);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(WORKERS);
        for i in 0..WORKERS {
            let rx = Arc::clone(&rx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("obs-http-{i}"))
                    .spawn(move || loop {
                        // Take the next connection; exit when the accept
                        // thread has gone and the queue is drained.
                        let stream = match rx.lock().unwrap().recv() {
                            Ok(s) => s,
                            Err(_) => break,
                        };
                        handle_connection(stream);
                    })?,
            );
        }

        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("obs-http-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break; // the wake-up connection lands here too
                    }
                    match conn {
                        // A full queue blocks here, bounding in-flight
                        // work; further peers wait in the OS backlog.
                        Ok(stream) => {
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // tx drops here: workers drain the queue and exit.
            })?;

        Ok(ObsServer {
            addr,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, finish queued requests, join
    /// every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept thread out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Read the request head (through the blank line), bounded by
/// [`MAX_REQUEST_BYTES`]. Returns `None` on timeout/oversize/EOF-mid-head.
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n")
                    || buf.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
                if buf.len() > MAX_REQUEST_BYTES {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
    String::from_utf8(buf).ok()
}

/// Parse `GET /path HTTP/1.x` out of the head; `Err` distinguishes a
/// malformed request (400) from a well-formed non-GET method (405).
fn parse_request(head: &str) -> Result<String, u16> {
    let line = head.lines().next().ok_or(400u16)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(400u16)?;
    let path = parts.next().ok_or(400u16)?;
    let version = parts.next().ok_or(400u16)?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return Err(400);
    }
    if !path.starts_with('/') {
        return Err(400);
    }
    if method != "GET" {
        return Err(405);
    }
    // Strip any query string; routing is path-only.
    let path = path.split('?').next().unwrap_or(path);
    Ok(path.to_string())
}

struct Response {
    status: u16,
    content_type: &'static str,
    extra_header: Option<String>,
    body: String,
}

impl Response {
    fn plain(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_header: None,
            body: body.into(),
        }
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

/// Route one parsed GET to its response.
fn route(path: &str) -> Response {
    match path {
        "/metrics" => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            extra_header: None,
            body: crate::prometheus_text(&crate::registry().snapshot()),
        },
        "/trace" => {
            let (events, dropped) = crate::trace::drain_stats();
            Response {
                status: 200,
                content_type: "application/jsonl; charset=utf-8",
                extra_header: Some(format!("X-Ariadne-Dropped-Events: {dropped}")),
                body: crate::trace_jsonl(&events),
            }
        }
        "/report" => match published_report() {
            Some(json) => Response {
                status: 200,
                content_type: "application/json; charset=utf-8",
                extra_header: None,
                body: json + "\n",
            },
            None => Response::plain(404, "no report published yet\n"),
        },
        "/healthz" => Response::plain(200, "ok\n"),
        _ => Response::plain(404, "not found\n"),
    }
}

fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    obs_handles::requests().inc();

    let response = match read_request_head(&mut stream) {
        None => Response::plain(400, "bad request\n"),
        Some(head) => match parse_request(&head) {
            Ok(path) => route(&path),
            Err(status) => Response::plain(status, format!("{}\n", status_reason(status))),
        },
    };
    if response.status >= 400 {
        obs_handles::bad_requests().inc();
    }

    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
    );
    if let Some(h) = &response.extra_header {
        out.push_str(h);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(&response.body);
    let _ = stream.write_all(out.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    /// One round-trip against a running server; returns (status, headers,
    /// body). `raw` is written verbatim so tests can send malformed junk.
    fn roundtrip(addr: SocketAddr, raw: &str) -> (u16, Vec<String>, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        s.flush().unwrap();
        let mut reader = std::io::BufReader::new(s);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_string();
            if line.is_empty() {
                break;
            }
            headers.push(line);
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        (status, headers, body)
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, Vec<String>, String) {
        roundtrip(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    #[test]
    fn serves_healthz_metrics_and_404() {
        let server = ObsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (status, _, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        crate::registry()
            .counter("obs_server_test_total", "server test marker", true)
            .add(3);
        let (status, headers, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(headers.iter().any(|h| h.contains("text/plain")));
        assert!(body.contains("obs_server_test_total 3"));
        assert!(body.contains("# ARIADNE deterministic obs_server_test_total true"));

        let (status, _, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn malformed_and_non_get_do_not_wedge() {
        let server = ObsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (status, _, _) = roundtrip(addr, "???\r\n\r\n");
        assert_eq!(status, 400);
        let (status, _, _) = roundtrip(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 405);
        let (status, _, _) = roundtrip(addr, "GET /metrics TELNET/9\r\n\r\n");
        assert_eq!(status, 400);

        // The listener is still alive and serving.
        let (status, _, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        server.shutdown();
    }

    #[test]
    fn report_is_404_until_published() {
        let server = ObsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        // NB: the published report is process-global; earlier tests in
        // this binary may already have published. Publish a sentinel and
        // assert it wins (newest-wins semantics).
        publish_report("{\"supersteps\":42}".to_string());
        let (status, _, body) = get(addr, "/report");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"supersteps\":42}\n");
        server.shutdown();
    }

    #[test]
    fn trace_endpoint_drains_and_reports_drops() {
        let _g = crate::test_support::trace_lock();
        let server = ObsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        crate::trace::set_filter("info");
        crate::trace::event(
            crate::trace::Level::Info,
            "obs_server_test",
            "ping",
            &[("n", 1u64.into())],
        );
        let (status, headers, body) = get(addr, "/trace");
        crate::trace::set_filter("off");
        assert_eq!(status, 200);
        assert!(headers
            .iter()
            .any(|h| h.starts_with("X-Ariadne-Dropped-Events:")));
        assert!(body.lines().any(|l| l.contains("\"name\":\"ping\"")));
        server.shutdown();
    }
}
