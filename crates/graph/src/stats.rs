//! Graph statistics: degrees, components, approximate effective diameter.
//!
//! These power the Table 2 reproduction (`|V|`, `|E|`, avg degree,
//! avg diameter) and several test oracles.

use crate::csr::Csr;
use crate::types::VertexId;
use std::collections::VecDeque;

/// Summary statistics for a graph, mirroring the columns of Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Approximate average distance between reachable pairs, estimated by
    /// BFS from sampled sources (treating edges as undirected, as diameter
    /// reports on web crawls conventionally do).
    pub avg_diameter: f64,
}

/// Compute [`GraphStats`] with `samples` BFS sources (deterministic:
/// sources are evenly spaced ids).
pub fn graph_stats(g: &Csr, samples: usize) -> GraphStats {
    let n = g.num_vertices();
    let avg_degree = if n == 0 { 0.0 } else { g.num_edges() as f64 / n as f64 };
    GraphStats {
        vertices: n,
        edges: g.num_edges(),
        avg_degree,
        avg_diameter: approx_avg_distance(g, samples),
    }
}

/// Average BFS distance over reachable pairs from `samples` evenly spaced
/// source vertices, following edges in both directions.
pub fn approx_avg_distance(g: &Csr, samples: usize) -> f64 {
    let n = g.num_vertices();
    if n == 0 || samples == 0 {
        return 0.0;
    }
    let step = (n / samples.min(n)).max(1);
    let mut total = 0u64;
    let mut count = 0u64;
    let mut dist = vec![u32::MAX; n];
    for s in (0..n).step_by(step).take(samples) {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        let mut q = VecDeque::new();
        dist[s] = 0;
        q.push_back(VertexId(s as u64));
        while let Some(v) = q.pop_front() {
            let dv = dist[v.index()];
            for &u in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
                if dist[u.index()] == u32::MAX {
                    dist[u.index()] = dv + 1;
                    q.push_back(u);
                }
            }
        }
        for &d in &dist {
            if d != u32::MAX && d > 0 {
                total += d as u64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

/// Exact single-source BFS distances (hops, directed). `u32::MAX` means
/// unreachable. Used by tests as an oracle for unit-weight SSSP.
pub fn bfs_distances(g: &Csr, source: VertexId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_vertices()];
    let mut q = VecDeque::new();
    dist[source.index()] = 0;
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        let dv = dist[v.index()];
        for &u in g.out_neighbors(v) {
            if dist[u.index()] == u32::MAX {
                dist[u.index()] = dv + 1;
                q.push_back(u);
            }
        }
    }
    dist
}

/// Weakly connected component labels via union-find: every vertex is
/// labelled with the smallest vertex id in its component, which is exactly
/// the fixpoint the WCC analytic computes — making this the WCC oracle.
pub fn weakly_connected_components(g: &Csr) -> Vec<u64> {
    let n = g.num_vertices();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    for (s, d, _) in g.edges() {
        let (rs, rd) = (find(&mut parent, s.index()), find(&mut parent, d.index()));
        if rs != rd {
            // Union by smaller root id so the representative is the min id.
            let (lo, hi) = if rs < rd { (rs, rd) } else { (rd, rs) };
            parent[hi] = lo;
        }
    }
    (0..n).map(|v| find(&mut parent, v) as u64).collect()
}

/// Number of distinct weakly connected components.
pub fn num_components(g: &Csr) -> usize {
    let labels = weakly_connected_components(g);
    let mut sorted = labels;
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Out-degree histogram: `hist[d]` = number of vertices with out-degree `d`.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let max_d = g.vertices().map(|v| g.out_degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_d + 1];
    for v in g.vertices() {
        hist[g.out_degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::regular::{cycle, grid, path, star};

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = bfs_distances(&g, VertexId(4));
        assert_eq!(d2[0], u32::MAX); // path is directed
    }

    #[test]
    fn wcc_labels_are_min_ids() {
        let mut b = crate::GraphBuilder::new();
        b.add_edge(VertexId(1), VertexId(2), 1.0);
        b.add_edge(VertexId(3), VertexId(4), 1.0);
        b.ensure_vertex(VertexId(5));
        let g = b.build();
        let labels = weakly_connected_components(&g);
        assert_eq!(labels, vec![0, 1, 1, 3, 3, 5]);
        assert_eq!(num_components(&g), 4);
    }

    #[test]
    fn wcc_direction_blind() {
        let g = path(4); // directed, but weakly one component
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn stats_on_cycle() {
        let g = cycle(6);
        let s = graph_stats(&g, 6);
        assert_eq!(s.vertices, 6);
        assert_eq!(s.edges, 6);
        assert!((s.avg_degree - 1.0).abs() < 1e-9);
        // Undirected view of a 6-cycle: average pair distance is
        // (1+1+2+2+3)/5 = 1.8.
        assert!((s.avg_diameter - 1.8).abs() < 1e-9);
    }

    #[test]
    fn diameter_of_star_is_small() {
        let g = star(10);
        let d = approx_avg_distance(&g, 10);
        assert!(d > 1.0 && d < 2.0, "star avg distance {d}");
    }

    #[test]
    fn degree_histogram_shape() {
        let g = grid(3, 3);
        let h = degree_histogram(&g);
        // 3x3 grid: 4 corners (deg 2), 4 sides (deg 3), 1 center (deg 4).
        assert_eq!(h[2], 4);
        assert_eq!(h[3], 4);
        assert_eq!(h[4], 1);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::empty(0);
        let s = graph_stats(&g, 4);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.avg_diameter, 0.0);
    }
}
