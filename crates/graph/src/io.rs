//! Plain-text edge-list IO.
//!
//! Format: one edge per line, `src dst [weight]`, whitespace separated.
//! Lines starting with `#` or `%` are comments (both conventions appear in
//! the SNAP and WebGraph ecosystems the paper's datasets come from).

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::types::VertexId;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A line that is neither a comment nor a valid edge.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse an edge list from any reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Csr, IoError> {
    let mut b = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let src = parse_vertex(parts.next(), idx + 1, "source")?;
        let dst = parse_vertex(parts.next(), idx + 1, "destination")?;
        let weight = match parts.next() {
            None => 1.0,
            Some(w) => w.parse::<f64>().map_err(|e| IoError::Parse {
                line: idx + 1,
                message: format!("bad weight {w:?}: {e}"),
            })?,
        };
        if parts.next().is_some() {
            return Err(IoError::Parse {
                line: idx + 1,
                message: "trailing fields after weight".into(),
            });
        }
        b.add_edge(src, dst, weight);
    }
    Ok(b.build())
}

fn parse_vertex(tok: Option<&str>, line: usize, what: &str) -> Result<VertexId, IoError> {
    let tok = tok.ok_or_else(|| IoError::Parse {
        line,
        message: format!("missing {what} vertex"),
    })?;
    tok.parse::<u64>().map(VertexId).map_err(|e| IoError::Parse {
        line,
        message: format!("bad {what} vertex {tok:?}: {e}"),
    })
}

/// Load an edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Csr, IoError> {
    read_edge_list(BufReader::new(File::open(path)?))
}

/// Write a graph as an edge list to any writer. Unit weights are omitted.
pub fn write_edge_list<W: Write>(graph: &Csr, mut w: W) -> io::Result<()> {
    writeln!(w, "# {} vertices, {} edges", graph.num_vertices(), graph.num_edges())?;
    for (s, d, weight) in graph.edges() {
        if weight == 1.0 {
            writeln!(w, "{s} {d}")?;
        } else {
            writeln!(w, "{s} {d} {weight}")?;
        }
    }
    Ok(())
}

/// Save a graph as an edge list to a file path.
pub fn save_edge_list<P: AsRef<Path>>(graph: &Csr, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_edge_list(graph, &mut w)?;
    w.flush()
}

/// Parse an adjacency-list file: each line is `src: dst dst dst ...`
/// (the colon optional), the format many web-graph dumps use. Weights
/// are all 1.0. Lines starting with `#` or `%` are comments.
pub fn read_adjacency_list<R: BufRead>(reader: R) -> Result<Csr, IoError> {
    let mut b = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let (src_tok, rest) = match line.split_once(':') {
            Some((s, r)) => (s.trim(), r),
            None => match line.split_once(char::is_whitespace) {
                Some((s, r)) => (s, r),
                None => (line, ""),
            },
        };
        let src = parse_vertex(Some(src_tok), idx + 1, "source")?;
        b.ensure_vertex(src);
        for tok in rest.split_whitespace() {
            let dst = parse_vertex(Some(tok), idx + 1, "destination")?;
            b.add_edge(src, dst, 1.0);
        }
    }
    Ok(b.build())
}

/// Load an adjacency list from a file path.
pub fn load_adjacency_list<P: AsRef<Path>>(path: P) -> Result<Csr, IoError> {
    read_adjacency_list(BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let text = "# comment\n0 1\n1 2 0.5\n\n% another comment\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(VertexId(1), VertexId(2)), Some(0.5));
        assert_eq!(g.edge_weight(VertexId(0), VertexId(1)), Some(1.0));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_edge_list("0 1\nnope 2\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn missing_destination_is_an_error() {
        assert!(read_edge_list("0\n".as_bytes()).is_err());
    }

    #[test]
    fn trailing_fields_rejected() {
        assert!(read_edge_list("0 1 2.0 extra\n".as_bytes()).is_err());
    }

    #[test]
    fn roundtrip() {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(1), 1.0);
        b.add_edge(VertexId(1), VertexId(2), 2.5);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }

    #[test]
    fn adjacency_list_with_colons() {
        let text = "# comment\n0: 1 2\n1: 2\n3:\n";
        let g = read_adjacency_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(VertexId(0)), &[VertexId(1), VertexId(2)]);
        assert_eq!(g.out_degree(VertexId(3)), 0);
    }

    #[test]
    fn adjacency_list_without_colons() {
        let g = read_adjacency_list("0 1 2\n2 0\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(VertexId(2), VertexId(0)));
    }

    #[test]
    fn adjacency_list_isolated_vertex_line() {
        let g = read_adjacency_list("5\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn adjacency_list_bad_token() {
        assert!(read_adjacency_list("0: x\n".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ariadne-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.txt");
        let g = crate::generators::regular::cycle(5);
        save_edge_list(&g, &p).unwrap();
        let g2 = load_edge_list(&p).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        std::fs::remove_file(&p).ok();
    }
}
