//! Core identifier and enum types shared across the workspace.

use std::fmt;

/// Identifier of a vertex in the input graph.
///
/// A thin newtype over `u64` so vertex ids are never confused with other
/// integers (superstep counters, partition indexes, tuple values) at API
/// boundaries. Ids are expected to be dense (`0..n`) once a graph has been
/// built; the [`crate::GraphBuilder`] guarantees this by sizing the vertex
/// set to the maximum id it has seen.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VertexId(pub u64);

impl VertexId {
    /// The id as a `usize` index into per-vertex arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` array index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        VertexId(i as u64)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for VertexId {
    fn from(v: u64) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u64 {
    fn from(v: VertexId) -> Self {
        v.0
    }
}

/// Direction of adjacency traversal.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Edges leaving a vertex (`x -> y` for vertex `x`).
    Out,
    /// Edges entering a vertex (`y -> x` for vertex `x`).
    In,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId(42);
        assert_eq!(v.index(), 42);
        assert_eq!(VertexId::from_index(42), v);
        assert_eq!(u64::from(v), 42);
        assert_eq!(VertexId::from(42u64), v);
    }

    #[test]
    fn vertex_id_formatting() {
        assert_eq!(format!("{}", VertexId(7)), "7");
        assert_eq!(format!("{:?}", VertexId(7)), "v7");
    }

    #[test]
    fn vertex_id_ordering() {
        assert!(VertexId(1) < VertexId(2));
        assert_eq!(VertexId::default(), VertexId(0));
    }
}
