//! Vertex partitioning for the parallel engine.
//!
//! Giraph hash-partitions vertices across workers; we do the same across
//! worker threads. The partitioner is a trait so tests can plug in a
//! round-robin or single-partition layout.

use crate::csr::Csr;
use crate::types::VertexId;

/// Maps vertices to partitions `0..num_partitions`.
pub trait Partitioner: Send + Sync {
    /// Number of partitions.
    fn num_partitions(&self) -> usize;
    /// The partition that owns `v`.
    fn partition_of(&self, v: VertexId) -> usize;
}

/// Multiplicative-hash partitioner (Fibonacci hashing), the default.
#[derive(Copy, Clone, Debug)]
pub struct HashPartitioner {
    parts: usize,
}

impl HashPartitioner {
    /// Create a partitioner over `parts` partitions.
    pub fn new(parts: usize) -> Self {
        assert!(parts > 0, "need at least one partition");
        HashPartitioner { parts }
    }
}

impl Partitioner for HashPartitioner {
    fn num_partitions(&self) -> usize {
        self.parts
    }

    #[inline]
    fn partition_of(&self, v: VertexId) -> usize {
        // Fibonacci hashing spreads consecutive ids well.
        let h = v.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.parts
    }
}

/// Assigns contiguous id ranges to partitions; useful when locality along
/// the id space matters (e.g. generated grid graphs in tests).
#[derive(Copy, Clone, Debug)]
pub struct RangePartitioner {
    parts: usize,
    chunk: u64,
}

impl RangePartitioner {
    /// Partition `0..n` ids into `parts` contiguous chunks.
    pub fn new(n: usize, parts: usize) -> Self {
        assert!(parts > 0, "need at least one partition");
        let chunk = ((n as u64) / parts as u64).max(1);
        RangePartitioner { parts, chunk }
    }
}

impl Partitioner for RangePartitioner {
    fn num_partitions(&self) -> usize {
        self.parts
    }

    #[inline]
    fn partition_of(&self, v: VertexId) -> usize {
        ((v.0 / self.chunk) as usize).min(self.parts - 1)
    }
}

/// A table of contiguous vertex-id chunk boundaries for the parallel
/// engine's two-phase superstep.
///
/// `starts` has `num_chunks + 1` entries: chunk `c` owns vertex indices
/// `starts[c] .. starts[c + 1]`. Boundaries are strictly increasing (no
/// empty chunks) except for the degenerate `n == 0` table, which keeps a
/// single empty chunk so the engine loop stays uniform.
///
/// Two constructors:
/// - [`ChunkTable::uniform`] cuts ~equal *vertex* counts (the historical
///   layout, kept for the naive message plane and as a fallback);
/// - [`ChunkTable::degree_weighted`] cuts ~equal *edge* work using the CSR
///   out-degree prefix sums, so one hub-heavy chunk of a power-law graph
///   doesn't serialize the superstep.
///
/// Boundaries can be snapped to multiples of an `align` quantum; the
/// engine aligns chunks to its sender-block size so floating-point
/// combining stays bit-identical at every thread count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkTable {
    starts: Vec<usize>,
}

impl ChunkTable {
    /// Build a table of `chunks` ~equal-vertex chunks over `0..n`,
    /// boundaries snapped to multiples of `align` (use `1` for none).
    pub fn uniform(n: usize, chunks: usize, align: usize) -> Self {
        assert!(chunks > 0, "need at least one chunk");
        let align = align.max(1);
        if n == 0 {
            return ChunkTable { starts: vec![0, 0] };
        }
        let per = n.div_ceil(chunks).max(1);
        let mut starts = vec![0];
        let mut cut = 0usize;
        while cut + per < n {
            cut += per;
            let snapped = Self::snap(cut, align, *starts.last().unwrap(), n);
            if snapped > *starts.last().unwrap() && snapped < n {
                starts.push(snapped);
            }
        }
        starts.push(n);
        ChunkTable { starts }
    }

    /// Build a table of up to `chunks` chunks over the vertices of `csr`
    /// such that each chunk owns roughly equal work, where the work of
    /// vertex `v` is `1 + out_degree(v)` (the unit term keeps huge chunks
    /// of isolated vertices from forming). Boundaries are snapped to
    /// multiples of `align`.
    pub fn degree_weighted(csr: &Csr, chunks: usize, align: usize) -> Self {
        assert!(chunks > 0, "need at least one chunk");
        let align = align.max(1);
        let n = csr.num_vertices();
        if n == 0 {
            return ChunkTable { starts: vec![0, 0] };
        }
        let offsets = csr.out_offsets();
        // Prefix weight of vertices 0..v is v + offsets[v].
        let total = n + offsets[n];
        let mut starts = vec![0usize];
        for k in 1..chunks {
            let target = (total as u128 * k as u128 / chunks as u128) as usize;
            // Smallest cut with prefix(cut) >= target.
            let ideal = partition_point_idx(n + 1, |v| v + offsets[v] < target);
            let prev = *starts.last().unwrap();
            let snapped = Self::snap(ideal, align, prev, n);
            if snapped > prev && snapped < n {
                starts.push(snapped);
            }
        }
        starts.push(n);
        ChunkTable { starts }
    }

    /// Snap `cut` to the nearest multiple of `align` within `(prev, n)`,
    /// preferring rounding to the closer multiple.
    fn snap(cut: usize, align: usize, prev: usize, n: usize) -> usize {
        if align <= 1 {
            return cut;
        }
        let down = cut / align * align;
        let up = down + align;
        let snapped = if cut - down <= up - cut { down } else { up };
        snapped.clamp(prev, n)
    }

    /// Number of chunks.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of vertices covered.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// Half-open vertex-index range `[start, end)` of chunk `c`.
    #[inline]
    pub fn bounds(&self, c: usize) -> (usize, usize) {
        (self.starts[c], self.starts[c + 1])
    }

    /// The chunk owning vertex index `v`. Binary search over the boundary
    /// table; panics (via debug assertions) if `v` is out of range.
    #[inline]
    pub fn chunk_of(&self, v: usize) -> usize {
        debug_assert!(
            v < self.num_vertices(),
            "vertex index {v} outside partition table (n = {})",
            self.num_vertices()
        );
        // partition_point over starts[1..]: count boundaries <= v.
        let c = self.starts[1..].partition_point(|&s| s <= v);
        debug_assert!(self.starts[c] <= v && v < self.starts[c + 1]);
        c
    }

    /// The boundary array itself (len `num_chunks() + 1`).
    #[inline]
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// Revalidate this table against a mutated `csr`: keep the existing
    /// boundaries when every chunk's degree weight is still within
    /// `tolerance` (fractional drift, e.g. `0.25`) of the ideal share,
    /// otherwise recut with [`ChunkTable::degree_weighted`]. A change in
    /// vertex count always forces a recut (boundaries would no longer
    /// cover the id space).
    ///
    /// Chunk layout never affects results — the engine is bit-identical
    /// at every thread count and therefore at every chunk layout — so
    /// keeping a slightly stale table after a small mutation batch trades
    /// only load balance, never correctness. Returns the table to use and
    /// whether a recut happened.
    pub fn rebalance(&self, csr: &Csr, tolerance: f64, align: usize) -> (ChunkTable, bool) {
        let n = csr.num_vertices();
        let chunks = self.num_chunks();
        if n != self.num_vertices() {
            return (ChunkTable::degree_weighted(csr, chunks, align.max(1)), true);
        }
        if n == 0 || chunks <= 1 {
            return (self.clone(), false);
        }
        let offsets = csr.out_offsets();
        let total = (n + offsets[n]) as f64;
        let ideal = total / chunks as f64;
        for c in 0..chunks {
            let (s, e) = self.bounds(c);
            let work = ((e - s) + (offsets[e] - offsets[s])) as f64;
            if work > ideal * (1.0 + tolerance) {
                return (ChunkTable::degree_weighted(csr, chunks, align.max(1)), true);
            }
        }
        (self.clone(), false)
    }
}

/// `partition_point` over the virtual slice `0..len`: the smallest `i`
/// in `0..=len` with `!pred(i)` (assuming `pred` is monotone).
fn partition_point_idx(len: usize, pred: impl Fn(usize) -> bool) -> usize {
    let mut lo = 0usize;
    let mut hi = len;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn hash_covers_all_partitions() {
        let p = HashPartitioner::new(4);
        let mut seen = [false; 4];
        for i in 0..1000u64 {
            let part = p.partition_of(VertexId(i));
            assert!(part < 4);
            seen[part] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hash_is_roughly_balanced() {
        let p = HashPartitioner::new(8);
        let mut counts = [0usize; 8];
        for i in 0..8000u64 {
            counts[p.partition_of(VertexId(i))] += 1;
        }
        for &c in &counts {
            assert!(c > 500 && c < 1500, "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn range_partitioner_contiguous() {
        let p = RangePartitioner::new(100, 4);
        assert_eq!(p.partition_of(VertexId(0)), 0);
        assert_eq!(p.partition_of(VertexId(99)), 3);
        for i in 1..100u64 {
            assert!(p.partition_of(VertexId(i)) >= p.partition_of(VertexId(i - 1)));
        }
    }

    #[test]
    fn single_partition() {
        let p = HashPartitioner::new(1);
        assert_eq!(p.partition_of(VertexId(123)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_partitions_rejected() {
        let _ = HashPartitioner::new(0);
    }

    #[test]
    fn uniform_table_covers_everything() {
        for n in [0usize, 1, 5, 16, 100, 101] {
            for chunks in [1usize, 2, 3, 7, 16] {
                let t = ChunkTable::uniform(n, chunks, 1);
                assert_eq!(t.starts()[0], 0);
                assert_eq!(t.num_vertices(), n);
                assert!(t.num_chunks() >= 1);
                assert!(t.num_chunks() <= chunks.max(1));
                for c in 0..t.num_chunks() {
                    let (s, e) = t.bounds(c);
                    assert!(s <= e);
                    for v in s..e {
                        assert_eq!(t.chunk_of(v), c);
                    }
                }
            }
        }
    }

    #[test]
    fn uniform_alignment_respected() {
        let t = ChunkTable::uniform(100, 7, 16);
        for &s in &t.starts()[1..t.starts().len() - 1] {
            assert_eq!(s % 16, 0, "interior boundary {s} not 16-aligned");
        }
        assert_eq!(t.num_vertices(), 100);
    }

    #[test]
    fn degree_weighted_balances_edges() {
        // A power-law-ish graph: vertex 0 is a hub with most of the edges.
        let mut b = GraphBuilder::new();
        let n = 64u64;
        for i in 1..n {
            b.add_edge(VertexId(0), VertexId(i), 1.0); // hub fan-out
        }
        for i in 1..n {
            b.add_edge(VertexId(i), VertexId((i + 1) % n), 1.0);
        }
        let g = b.build();
        let t = ChunkTable::degree_weighted(&g, 4, 1);
        assert_eq!(t.num_vertices(), 64);
        // The hub chunk should be much smaller (fewer vertices) than a
        // uniform cut would make it.
        let (s0, e0) = t.bounds(0);
        assert_eq!(s0, 0);
        assert!(
            e0 - s0 < 64 / t.num_chunks(),
            "hub chunk owns {} vertices, expected < {}",
            e0 - s0,
            64 / t.num_chunks()
        );
        // Edge work per chunk is within 2x of the mean.
        let m = g.num_edges();
        let mean = (m + 64) / t.num_chunks();
        for c in 0..t.num_chunks() {
            let (s, e) = t.bounds(c);
            let work: usize =
                (s..e).map(|v| 1 + g.out_degree(VertexId(v as u64))).sum();
            assert!(work <= 2 * mean + 1, "chunk {c} work {work} >> mean {mean}");
        }
    }

    #[test]
    fn degree_weighted_empty_and_tiny() {
        let g = Csr::empty(0);
        let t = ChunkTable::degree_weighted(&g, 4, 16);
        assert_eq!(t.num_chunks(), 1);
        assert_eq!(t.num_vertices(), 0);

        let g = Csr::empty(3);
        let t = ChunkTable::degree_weighted(&g, 8, 1);
        assert_eq!(t.num_vertices(), 3);
        let covered: usize = (0..t.num_chunks())
            .map(|c| {
                let (s, e) = t.bounds(c);
                e - s
            })
            .sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn rebalance_keeps_table_under_small_drift() {
        let mut b = GraphBuilder::new();
        for i in 0..100u64 {
            b.add_edge(VertexId(i), VertexId((i + 1) % 100), 1.0);
        }
        let g = b.build();
        let t = ChunkTable::degree_weighted(&g, 4, 1);
        // Same graph: nothing to do.
        let (kept, recut) = t.rebalance(&g, 0.25, 1);
        assert!(!recut);
        assert_eq!(kept, t);
        // Pile edges onto one chunk until its share exceeds tolerance.
        let mut b = GraphBuilder::new();
        for i in 0..100u64 {
            b.add_edge(VertexId(i), VertexId((i + 1) % 100), 1.0);
        }
        for i in 0..50u64 {
            b.add_edge(VertexId(3), VertexId(i), 1.0);
        }
        let skewed = b.build();
        let (recut_table, recut) = t.rebalance(&skewed, 0.25, 1);
        assert!(recut);
        assert_eq!(recut_table.num_vertices(), 100);
    }

    #[test]
    fn rebalance_recuts_on_vertex_growth() {
        let g1 = Csr::empty(10);
        let t = ChunkTable::uniform(10, 2, 1);
        let g2 = Csr::empty(15);
        let (t2, recut) = t.rebalance(&g2, 0.5, 1);
        assert!(recut);
        assert_eq!(t2.num_vertices(), 15);
        let (same, recut) = t2.rebalance(&g2, 0.5, 1);
        assert!(!recut);
        assert_eq!(same.num_vertices(), 15);
        let _ = g1;
    }

    #[test]
    fn chunk_of_matches_linear_scan() {
        let mut b = GraphBuilder::new();
        for i in 0..200u64 {
            for j in 0..(i % 11) {
                b.add_edge(VertexId(i), VertexId((i + j + 1) % 200), 1.0);
            }
        }
        b.ensure_vertex(VertexId(199));
        let g = b.build();
        let t = ChunkTable::degree_weighted(&g, 5, 8);
        for v in 0..200usize {
            let linear = (0..t.num_chunks())
                .find(|&c| {
                    let (s, e) = t.bounds(c);
                    s <= v && v < e
                })
                .unwrap();
            assert_eq!(t.chunk_of(v), linear);
        }
    }
}
