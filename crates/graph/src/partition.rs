//! Vertex partitioning for the parallel engine.
//!
//! Giraph hash-partitions vertices across workers; we do the same across
//! worker threads. The partitioner is a trait so tests can plug in a
//! round-robin or single-partition layout.

use crate::types::VertexId;

/// Maps vertices to partitions `0..num_partitions`.
pub trait Partitioner: Send + Sync {
    /// Number of partitions.
    fn num_partitions(&self) -> usize;
    /// The partition that owns `v`.
    fn partition_of(&self, v: VertexId) -> usize;
}

/// Multiplicative-hash partitioner (Fibonacci hashing), the default.
#[derive(Copy, Clone, Debug)]
pub struct HashPartitioner {
    parts: usize,
}

impl HashPartitioner {
    /// Create a partitioner over `parts` partitions.
    pub fn new(parts: usize) -> Self {
        assert!(parts > 0, "need at least one partition");
        HashPartitioner { parts }
    }
}

impl Partitioner for HashPartitioner {
    fn num_partitions(&self) -> usize {
        self.parts
    }

    #[inline]
    fn partition_of(&self, v: VertexId) -> usize {
        // Fibonacci hashing spreads consecutive ids well.
        let h = v.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.parts
    }
}

/// Assigns contiguous id ranges to partitions; useful when locality along
/// the id space matters (e.g. generated grid graphs in tests).
#[derive(Copy, Clone, Debug)]
pub struct RangePartitioner {
    parts: usize,
    chunk: u64,
}

impl RangePartitioner {
    /// Partition `0..n` ids into `parts` contiguous chunks.
    pub fn new(n: usize, parts: usize) -> Self {
        assert!(parts > 0, "need at least one partition");
        let chunk = ((n as u64) / parts as u64).max(1);
        RangePartitioner { parts, chunk }
    }
}

impl Partitioner for RangePartitioner {
    fn num_partitions(&self) -> usize {
        self.parts
    }

    #[inline]
    fn partition_of(&self, v: VertexId) -> usize {
        ((v.0 / self.chunk) as usize).min(self.parts - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_covers_all_partitions() {
        let p = HashPartitioner::new(4);
        let mut seen = [false; 4];
        for i in 0..1000u64 {
            let part = p.partition_of(VertexId(i));
            assert!(part < 4);
            seen[part] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hash_is_roughly_balanced() {
        let p = HashPartitioner::new(8);
        let mut counts = [0usize; 8];
        for i in 0..8000u64 {
            counts[p.partition_of(VertexId(i))] += 1;
        }
        for &c in &counts {
            assert!(c > 500 && c < 1500, "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn range_partitioner_contiguous() {
        let p = RangePartitioner::new(100, 4);
        assert_eq!(p.partition_of(VertexId(0)), 0);
        assert_eq!(p.partition_of(VertexId(99)), 3);
        for i in 1..100u64 {
            assert!(p.partition_of(VertexId(i)) >= p.partition_of(VertexId(i - 1)));
        }
    }

    #[test]
    fn single_partition() {
        let p = HashPartitioner::new(1);
        assert_eq!(p.partition_of(VertexId(123)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_partitions_rejected() {
        let _ = HashPartitioner::new(0);
    }
}
