//! Mutable graph overlay: batched edge/vertex mutations merged into a
//! fresh CSR at run barriers.
//!
//! The engine's CSR stays immutable — every invariant the parallel
//! superstep relies on (sorted adjacency, dense ids, prefix-sum offsets)
//! would be violated by in-place edits. Instead, mutations accumulate in
//! a [`GraphDelta`] and are merged by [`MutableGraph::apply`] at a
//! *barrier* (between runs, never mid-superstep): the merge walks the old
//! out-CSR once, copying untouched adjacency runs wholesale and merging
//! sorted per-source patch lists only for the sources a mutation touched,
//! then rebuilds the in-CSR by counting sort. The merged CSR is
//! **bit-identical** to what [`crate::GraphBuilder`] would produce from
//! the mutated edge list — inserting an existing edge overwrites its
//! weight (last write wins), exactly matching the builder's dedup rule —
//! which is what makes "incremental equals cold re-run" testable at the
//! array level.
//!
//! Vertex ids are dense and stable: *removing* a vertex strips its
//! incident edges and leaves it isolated (ids never shift, so previous
//! runs' value vectors and provenance stay addressable); *adding* a
//! vertex grows the id space. See `docs/MUTATIONS.md` for the full
//! semantics and the barrier-merge protocol.


#![warn(missing_docs)]
use crate::csr::Csr;
use crate::types::VertexId;
use std::collections::{BTreeMap, BTreeSet};

/// A batch of graph mutations, applied atomically at a run barrier.
///
/// Order within a batch is normalized at [`MutableGraph::apply`] time:
/// vertex removals strip *pre-existing* incident edges first, then edge
/// removals apply, then edge insertions (so a batch may remove a vertex
/// and immediately re-attach it). Duplicate inserts of the same `(src,
/// dst)` keep the last weight, matching [`crate::GraphBuilder`].
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    add_edges: Vec<(VertexId, VertexId, f64)>,
    remove_edges: Vec<(VertexId, VertexId)>,
    add_vertices: Vec<VertexId>,
    remove_vertices: Vec<VertexId>,
}

impl GraphDelta {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a directed edge insert (or weight overwrite if present).
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, weight: f64) -> &mut Self {
        self.add_edges.push((src, dst, weight));
        self
    }

    /// Queue a directed edge removal. Removing an absent edge is a no-op.
    pub fn remove_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.remove_edges.push((src, dst));
        self
    }

    /// Queue a vertex addition (grows the dense id space to cover `v`).
    pub fn add_vertex(&mut self, v: VertexId) -> &mut Self {
        self.add_vertices.push(v);
        self
    }

    /// Queue a vertex removal: strips all pre-existing incident edges and
    /// leaves the id isolated (ids are stable, the id space never
    /// shrinks). Removing an absent vertex is a no-op.
    pub fn remove_vertex(&mut self, v: VertexId) -> &mut Self {
        self.remove_vertices.push(v);
        self
    }

    /// Whether the batch contains no mutations at all.
    pub fn is_empty(&self) -> bool {
        self.add_edges.is_empty()
            && self.remove_edges.is_empty()
            && self.add_vertices.is_empty()
            && self.remove_vertices.is_empty()
    }

    /// Total queued operations (pre-normalization).
    pub fn len(&self) -> usize {
        self.add_edges.len()
            + self.remove_edges.len()
            + self.add_vertices.len()
            + self.remove_vertices.len()
    }

    /// Fold `other` into this batch, preserving arrival order per
    /// operation kind (the barrier-merge protocol queues batches in
    /// arrival order and applies them as one).
    pub fn merge(&mut self, other: GraphDelta) {
        self.add_edges.extend(other.add_edges);
        self.remove_edges.extend(other.remove_edges);
        self.add_vertices.extend(other.add_vertices);
        self.remove_vertices.extend(other.remove_vertices);
    }
}

/// What one [`MutableGraph::apply`] actually changed — the frontier
/// seeds the incremental re-execution path plans from.
#[derive(Clone, Debug, Default)]
pub struct MutationReport {
    /// The graph epoch *after* this batch (epoch 0 is the initial load).
    pub epoch: u64,
    /// Edges inserted that did not exist before.
    pub inserted_edges: usize,
    /// Existing edges whose weight actually changed (an insert of an
    /// identical `(src, dst, weight)` triple is dropped as a no-op).
    pub reweighted_edges: usize,
    /// Edges removed (including those stripped by vertex removals).
    pub removed_edges: usize,
    /// Vertices added beyond the old id space.
    pub added_vertices: usize,
    /// Pre-existing vertices isolated by removal.
    pub removed_vertices: Vec<VertexId>,
    /// Sources that must re-offer state: sources of inserted and
    /// reweighted edges. Sorted, deduplicated.
    pub insertion_sources: Vec<VertexId>,
    /// Destinations of inserted and reweighted edges. Programs that
    /// propagate against edge direction (WCC label floods) need both
    /// endpoints in the reseed frontier. Sorted, deduplicated.
    pub insertion_targets: Vec<VertexId>,
    /// Seeds whose downstream values may be invalidated: destinations of
    /// removed/reweighted edges, old out-neighbors of removed vertices,
    /// and the removed vertices themselves. Sorted, deduplicated.
    pub invalidation_seeds: Vec<VertexId>,
}

impl MutationReport {
    /// Whether the batch deleted or reweighted anything — the condition
    /// under which non-deletion-safe analytics must restart from scratch.
    pub fn has_removals(&self) -> bool {
        self.removed_edges > 0 || !self.removed_vertices.is_empty()
    }

    /// Whether the batch changed the graph at all.
    pub fn changed(&self) -> bool {
        self.inserted_edges > 0
            || self.reweighted_edges > 0
            || self.removed_edges > 0
            || self.added_vertices > 0
            || !self.removed_vertices.is_empty()
    }
}

/// An epoch-versioned graph: the current immutable [`Csr`] plus the
/// barrier-merge entry point.
#[derive(Clone, Debug)]
pub struct MutableGraph {
    csr: Csr,
    epoch: u64,
}

impl MutableGraph {
    /// Wrap an initial graph as epoch 0.
    pub fn new(csr: Csr) -> Self {
        MutableGraph { csr, epoch: 0 }
    }

    /// The current graph snapshot.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The current mutation epoch (0 = initial load, +1 per applied
    /// batch that is allowed to bump it — empty batches still bump, so
    /// epoch counts barriers, not changes).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Merge one mutation batch at a barrier, producing the next epoch's
    /// CSR and a [`MutationReport`] of what changed.
    pub fn apply(&mut self, delta: &GraphDelta) -> MutationReport {
        let old = &self.csr;
        let old_n = old.num_vertices();

        // Normalize the batch.
        let removed_vs: BTreeSet<VertexId> = delta
            .remove_vertices
            .iter()
            .copied()
            .filter(|v| v.index() < old_n)
            .collect();
        // (src, dst) -> Some(weight) = insert/overwrite, None = remove.
        // Later operations win; inserts are applied after removals, so an
        // insert queued after a remove of the same edge survives (and the
        // map's last-write-wins matches queue order because apply() folds
        // removals first, then inserts, per the documented batch order).
        let mut patch: BTreeMap<(VertexId, VertexId), Option<f64>> = BTreeMap::new();
        for v in &removed_vs {
            for e in old.out_edges(*v) {
                patch.insert((*v, e.neighbor), None);
            }
            for e in old.in_edges(*v) {
                patch.insert((e.neighbor, *v), None);
            }
        }
        for &(s, d) in &delta.remove_edges {
            patch.insert((s, d), None);
        }
        for &(s, d, w) in &delta.add_edges {
            patch.insert((s, d), Some(w));
        }

        // New id space: grows to cover added vertices and edge endpoints.
        let mut max_v = old_n;
        for v in &delta.add_vertices {
            max_v = max_v.max(v.index() + 1);
        }
        for ((s, d), w) in &patch {
            if w.is_some() {
                max_v = max_v.max(s.index() + 1).max(d.index() + 1);
            }
        }
        let n = max_v;

        let mut report = MutationReport {
            epoch: self.epoch + 1,
            added_vertices: n - old_n,
            removed_vertices: removed_vs.iter().copied().collect(),
            ..MutationReport::default()
        };
        let mut insertion_sources: BTreeSet<VertexId> = BTreeSet::new();
        let mut insertion_targets: BTreeSet<VertexId> = BTreeSet::new();
        let mut invalidation_seeds: BTreeSet<VertexId> = removed_vs.clone();

        // Group the patch by source for the single merge walk.
        let mut by_src: BTreeMap<VertexId, Vec<(VertexId, Option<f64>)>> = BTreeMap::new();
        for ((s, d), w) in &patch {
            by_src.entry(*s).or_default().push((*d, *w));
        }

        // Merge walk over the out-CSR: untouched runs copy wholesale.
        let m_hint = old.num_edges() + delta.add_edges.len();
        let mut out_offsets = Vec::with_capacity(n + 1);
        out_offsets.push(0usize);
        let mut out_targets: Vec<VertexId> = Vec::with_capacity(m_hint);
        let mut out_weights: Vec<f64> = Vec::with_capacity(m_hint);
        for vi in 0..n {
            let v = VertexId(vi as u64);
            match by_src.get(&v) {
                None => {
                    // Untouched source: copy the old adjacency run.
                    if vi < old_n {
                        for e in old.out_edges(v) {
                            out_targets.push(e.neighbor);
                            out_weights.push(e.weight);
                        }
                    }
                }
                Some(patches) => {
                    // Merge old sorted run with the sorted patch list.
                    let mut old_it = if vi < old_n {
                        old.out_edges(v).collect::<Vec<_>>()
                    } else {
                        Vec::new()
                    }
                    .into_iter()
                    .peekable();
                    let mut patch_it = patches.iter().peekable();
                    loop {
                        match (old_it.peek(), patch_it.peek()) {
                            (None, None) => break,
                            (Some(e), None) => {
                                out_targets.push(e.neighbor);
                                out_weights.push(e.weight);
                                old_it.next();
                            }
                            (None, Some(&&(d, w))) => {
                                if let Some(w) = w {
                                    out_targets.push(d);
                                    out_weights.push(w);
                                    report.inserted_edges += 1;
                                    insertion_sources.insert(v);
                                    insertion_targets.insert(d);
                                }
                                patch_it.next();
                            }
                            (Some(e), Some(&&(d, w))) => {
                                if e.neighbor < d {
                                    out_targets.push(e.neighbor);
                                    out_weights.push(e.weight);
                                    old_it.next();
                                } else if e.neighbor > d {
                                    if let Some(w) = w {
                                        out_targets.push(d);
                                        out_weights.push(w);
                                        report.inserted_edges += 1;
                                        insertion_sources.insert(v);
                                        insertion_targets.insert(d);
                                    }
                                    patch_it.next();
                                } else {
                                    // Patch hits an existing edge.
                                    match w {
                                        Some(w) => {
                                            out_targets.push(d);
                                            out_weights.push(w);
                                            if w != e.weight {
                                                report.reweighted_edges += 1;
                                                insertion_sources.insert(v);
                                                insertion_targets.insert(d);
                                                invalidation_seeds.insert(d);
                                            }
                                        }
                                        None => {
                                            report.removed_edges += 1;
                                            invalidation_seeds.insert(d);
                                        }
                                    }
                                    old_it.next();
                                    patch_it.next();
                                }
                            }
                        }
                    }
                }
            }
            out_offsets.push(out_targets.len());
        }

        // A removed vertex's old out-neighbors lose an incoming edge.
        for v in &removed_vs {
            for e in old.out_edges(*v) {
                invalidation_seeds.insert(e.neighbor);
            }
        }

        // In-CSR by counting sort, identical to GraphBuilder::build.
        let m = out_targets.len();
        let mut in_offsets = vec![0usize; n + 1];
        for d in &out_targets {
            in_offsets[d.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![VertexId(0); m];
        let mut in_weights = vec![0.0f64; m];
        for vi in 0..n {
            let (s, e) = (out_offsets[vi], out_offsets[vi + 1]);
            for k in s..e {
                let d = out_targets[k].index();
                let pos = cursor[d];
                in_sources[pos] = VertexId(vi as u64);
                in_weights[pos] = out_weights[k];
                cursor[d] += 1;
            }
        }

        self.csr = Csr::from_parts(
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        );
        self.epoch += 1;
        report.insertion_sources = insertion_sources.into_iter().collect();
        report.insertion_targets = insertion_targets.into_iter().collect();
        report.invalidation_seeds = invalidation_seeds.into_iter().collect();
        report
    }
}

/// Forward closure: every vertex reachable from `seeds` along out-edges
/// (seeds included), as a dense membership bitmap over `graph`'s id
/// space. Seeds outside the id space are ignored.
pub fn forward_closure(graph: &Csr, seeds: impl IntoIterator<Item = VertexId>) -> Vec<bool> {
    let n = graph.num_vertices();
    let mut seen = vec![false; n];
    let mut queue: Vec<VertexId> = Vec::new();
    for s in seeds {
        if s.index() < n && !seen[s.index()] {
            seen[s.index()] = true;
            queue.push(s);
        }
    }
    while let Some(v) = queue.pop() {
        for &t in graph.out_neighbors(v) {
            if !seen[t.index()] {
                seen[t.index()] = true;
                queue.push(t);
            }
        }
    }
    seen
}

/// Undirected closure: reachability from `seeds` following edges in both
/// directions — the invalidation region of component-style analytics.
pub fn undirected_closure(graph: &Csr, seeds: impl IntoIterator<Item = VertexId>) -> Vec<bool> {
    let n = graph.num_vertices();
    let mut seen = vec![false; n];
    let mut queue: Vec<VertexId> = Vec::new();
    for s in seeds {
        if s.index() < n && !seen[s.index()] {
            seen[s.index()] = true;
            queue.push(s);
        }
    }
    while let Some(v) = queue.pop() {
        for &t in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
            if !seen[t.index()] {
                seen[t.index()] = true;
                queue.push(t);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Oracle: the merged CSR must equal a cold GraphBuilder build of the
    /// mutated edge list, array for array.
    fn assert_matches_cold(mg: &MutableGraph, edges: &[(u64, u64, f64)], n_min: usize) {
        let mut b = GraphBuilder::new();
        for &(s, d, w) in edges {
            b.add_edge(VertexId(s), VertexId(d), w);
        }
        if n_min > 0 {
            b.ensure_vertex(VertexId(n_min as u64 - 1));
        }
        let cold = b.build();
        assert_eq!(mg.csr().num_vertices(), cold.num_vertices());
        assert_eq!(mg.csr().num_edges(), cold.num_edges());
        let got: Vec<_> = mg.csr().edges().collect();
        let want: Vec<_> = cold.edges().collect();
        assert_eq!(got, want);
        for v in cold.vertices() {
            assert_eq!(mg.csr().in_neighbors(v), cold.in_neighbors(v));
            let gi: Vec<_> = mg.csr().in_edges(v).collect();
            let wi: Vec<_> = cold.in_edges(v).collect();
            assert_eq!(gi, wi);
        }
    }

    fn seed_graph() -> MutableGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(1), 1.0);
        b.add_edge(VertexId(0), VertexId(2), 2.0);
        b.add_edge(VertexId(1), VertexId(3), 1.0);
        b.add_edge(VertexId(2), VertexId(3), 5.0);
        b.add_edge(VertexId(3), VertexId(4), 1.0);
        MutableGraph::new(b.build())
    }

    #[test]
    fn insert_matches_cold_rebuild() {
        let mut g = seed_graph();
        let mut d = GraphDelta::new();
        d.add_edge(VertexId(4), VertexId(0), 0.5);
        d.add_edge(VertexId(1), VertexId(4), 3.0);
        let r = g.apply(&d);
        assert_eq!(r.inserted_edges, 2);
        assert_eq!(r.epoch, 1);
        assert_eq!(g.epoch(), 1);
        assert_matches_cold(
            &g,
            &[
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 3, 1.0),
                (2, 3, 5.0),
                (3, 4, 1.0),
                (4, 0, 0.5),
                (1, 4, 3.0),
            ],
            5,
        );
        assert_eq!(r.insertion_sources, vec![VertexId(1), VertexId(4)]);
        assert!(r.invalidation_seeds.is_empty());
    }

    #[test]
    fn remove_and_reweight_match_cold_rebuild() {
        let mut g = seed_graph();
        let mut d = GraphDelta::new();
        d.remove_edge(VertexId(2), VertexId(3));
        d.add_edge(VertexId(0), VertexId(1), 9.0); // reweight
        d.add_edge(VertexId(0), VertexId(2), 2.0); // identical, no-op
        let r = g.apply(&d);
        assert_eq!(r.removed_edges, 1);
        assert_eq!(r.reweighted_edges, 1);
        assert_eq!(r.inserted_edges, 0);
        assert_matches_cold(
            &g,
            &[(0, 1, 9.0), (0, 2, 2.0), (1, 3, 1.0), (3, 4, 1.0)],
            5,
        );
        // Seeds: dst of removed edge and of the reweighted edge.
        assert_eq!(r.invalidation_seeds, vec![VertexId(1), VertexId(3)]);
        assert_eq!(r.insertion_sources, vec![VertexId(0)]);
    }

    #[test]
    fn vertex_removal_isolates_and_seeds() {
        let mut g = seed_graph();
        let mut d = GraphDelta::new();
        d.remove_vertex(VertexId(3));
        let r = g.apply(&d);
        assert!(r.has_removals());
        assert_eq!(r.removed_vertices, vec![VertexId(3)]);
        // 1->3, 2->3, 3->4 all stripped.
        assert_eq!(r.removed_edges, 3);
        assert_matches_cold(&g, &[(0, 1, 1.0), (0, 2, 2.0)], 5);
        assert_eq!(g.csr().num_vertices(), 5, "ids are stable");
        // Seeds: the vertex itself and its old out-neighbor 4.
        assert_eq!(r.invalidation_seeds, vec![VertexId(3), VertexId(4)]);
    }

    #[test]
    fn vertex_addition_grows_id_space() {
        let mut g = seed_graph();
        let mut d = GraphDelta::new();
        d.add_vertex(VertexId(7));
        let r = g.apply(&d);
        assert_eq!(r.added_vertices, 3);
        assert_eq!(g.csr().num_vertices(), 8);
        assert_eq!(g.csr().out_degree(VertexId(7)), 0);
    }

    #[test]
    fn remove_then_readd_in_one_batch_keeps_edge() {
        let mut g = seed_graph();
        let mut d = GraphDelta::new();
        d.remove_edge(VertexId(0), VertexId(1));
        d.add_edge(VertexId(0), VertexId(1), 4.0);
        g.apply(&d);
        assert_eq!(g.csr().edge_weight(VertexId(0), VertexId(1)), Some(4.0));
    }

    #[test]
    fn removing_absent_things_is_noop() {
        let mut g = seed_graph();
        let before: Vec<_> = g.csr().edges().collect();
        let mut d = GraphDelta::new();
        d.remove_edge(VertexId(0), VertexId(4));
        d.remove_vertex(VertexId(99));
        let r = g.apply(&d);
        assert!(!r.changed());
        assert_eq!(g.csr().edges().collect::<Vec<_>>(), before);
    }

    #[test]
    fn merged_batches_apply_in_order() {
        let mut g = seed_graph();
        let mut d1 = GraphDelta::new();
        d1.add_edge(VertexId(0), VertexId(3), 1.0);
        let mut d2 = GraphDelta::new();
        d2.add_edge(VertexId(0), VertexId(3), 8.0);
        let mut merged = d1;
        merged.merge(d2);
        g.apply(&merged);
        assert_eq!(g.csr().edge_weight(VertexId(0), VertexId(3)), Some(8.0));
    }

    #[test]
    fn random_batches_match_cold_rebuild() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let n = 40u64;
        let mut edges: BTreeMap<(u64, u64), f64> = BTreeMap::new();
        let mut b = GraphBuilder::new();
        b.ensure_vertex(VertexId(n - 1));
        for _ in 0..160 {
            let (s, d) = (rng.gen_range(0..n), rng.gen_range(0..n));
            let w = (rng.gen_range(1..100) as f64) / 10.0;
            edges.insert((s, d), w);
            b.add_edge(VertexId(s), VertexId(d), w);
        }
        // The builder dedups keep-last; the map mirrors it.
        let mut g = MutableGraph::new(b.build());
        for round in 0..10 {
            let mut delta = GraphDelta::new();
            // Mirror the batch normalization: vertex strips and edge
            // removals apply against the pre-batch state, then inserts.
            let mut adds: BTreeMap<(u64, u64), f64> = BTreeMap::new();
            let mut removed_edges: Vec<(u64, u64)> = Vec::new();
            let mut removed_vs: Vec<u64> = Vec::new();
            for _ in 0..12 {
                match rng.gen_range(0..3) {
                    0 => {
                        let (s, d) = (rng.gen_range(0..n), rng.gen_range(0..n));
                        let w = (rng.gen_range(1..100) as f64) / 10.0;
                        delta.add_edge(VertexId(s), VertexId(d), w);
                        adds.insert((s, d), w);
                    }
                    1 => {
                        let (s, d) = (rng.gen_range(0..n), rng.gen_range(0..n));
                        delta.remove_edge(VertexId(s), VertexId(d));
                        removed_edges.push((s, d));
                    }
                    _ => {
                        let v = rng.gen_range(0..n);
                        delta.remove_vertex(VertexId(v));
                        removed_vs.push(v);
                    }
                }
            }
            for &v in &removed_vs {
                edges.retain(|&(s, d), _| s != v && d != v);
            }
            for e in &removed_edges {
                edges.remove(e);
            }
            for (e, w) in adds {
                edges.insert(e, w);
            }
            let r = g.apply(&delta);
            assert_eq!(r.epoch, round + 1);
            let flat: Vec<(u64, u64, f64)> =
                edges.iter().map(|(&(s, d), &w)| (s, d, w)).collect();
            assert_matches_cold(&g, &flat, n as usize);
        }
    }

    #[test]
    fn closures_cover_reachable_sets() {
        let g = seed_graph();
        let fwd = forward_closure(g.csr(), [VertexId(1)]);
        assert_eq!(fwd, vec![false, true, false, true, true]);
        let und = undirected_closure(g.csr(), [VertexId(4)]);
        assert!(und.iter().all(|&x| x), "everything weakly connected");
        // Out-of-range seeds are ignored.
        let none = forward_closure(g.csr(), [VertexId(99)]);
        assert!(none.iter().all(|&x| !x));
    }
}
