//! Graph substrate for the Ariadne reproduction.
//!
//! This crate provides the data layer the paper's Giraph deployment relied
//! on: an immutable compressed-sparse-row (CSR) graph with both out- and
//! in-adjacency, a mutable [`GraphBuilder`], plain-text edge-list IO,
//! synthetic graph [`generators`] that stand in for the paper's web-crawl
//! datasets (indochina-2004, uk-2002, arabic-2005, uk-2005) and the
//! MovieLens-20M ratings bipartite graph, and the [`stats`] used to
//! regenerate Table 2 of the paper.
//!
//! # Example
//!
//! ```
//! use ariadne_graph::{GraphBuilder, VertexId};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(VertexId(0), VertexId(1), 1.0);
//! b.add_edge(VertexId(1), VertexId(2), 2.0);
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 3);
//! assert_eq!(g.num_edges(), 2);
//! assert_eq!(g.out_degree(VertexId(1)), 1);
//! ```

pub mod builder;
pub mod csr;
pub mod delta;
pub mod generators;
pub mod io;
pub mod partition;
pub mod stats;
pub mod types;

pub use builder::GraphBuilder;
pub use csr::{Csr, EdgeRef};
pub use delta::{forward_closure, undirected_closure, GraphDelta, MutableGraph, MutationReport};
pub use partition::{ChunkTable, HashPartitioner};
pub use types::{Direction, VertexId};
