//! Mutable edge-list accumulator that finalizes into a [`Csr`].

use crate::csr::Csr;
use crate::types::VertexId;

/// Accumulates edges and produces an immutable [`Csr`].
///
/// Duplicate edges are deduplicated at [`GraphBuilder::build`] time keeping
/// the *last* weight inserted, matching the overwrite semantics of loading
/// an edge list into Giraph. Adjacency lists are sorted by neighbour id so
/// the CSR supports binary-search edge lookup.
#[derive(Default, Clone, Debug)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId, f64)>,
    max_vertex: Option<VertexId>,
}

impl GraphBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder with pre-allocated capacity for `edges` edges.
    pub fn with_capacity(_vertices: usize, edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            max_vertex: None,
        }
    }

    /// Add a directed edge `src -> dst` with `weight`.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, weight: f64) {
        self.ensure_vertex(src);
        self.ensure_vertex(dst);
        self.edges.push((src, dst, weight));
    }

    /// Add both `a -> b` and `b -> a` with the same weight.
    pub fn add_undirected_edge(&mut self, a: VertexId, b: VertexId, weight: f64) {
        self.add_edge(a, b, weight);
        self.add_edge(b, a, weight);
    }

    /// Make sure vertex `v` exists even if isolated.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        match self.max_vertex {
            Some(m) if m >= v => {}
            _ => self.max_vertex = Some(v),
        }
    }

    /// Number of edges accumulated so far (before dedup).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into a CSR. Consumes the builder.
    pub fn build(mut self) -> Csr {
        let n = self.max_vertex.map(|v| v.index() + 1).unwrap_or(0);

        // Sort by (src, dst) then dedup keeping the last weight.
        self.edges
            .sort_by_key(|&(s, d, _)| (s, d));
        let mut deduped: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(self.edges.len());
        for e in self.edges {
            match deduped.last_mut() {
                Some(last) if last.0 == e.0 && last.1 == e.1 => last.2 = e.2,
                _ => deduped.push(e),
            }
        }
        let m = deduped.len();

        // Out-CSR straight from the sorted list.
        let mut out_offsets = vec![0usize; n + 1];
        for &(s, _, _) in &deduped {
            out_offsets[s.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_weights = Vec::with_capacity(m);
        for &(_, d, w) in &deduped {
            out_targets.push(d);
            out_weights.push(w);
        }

        // In-CSR via counting sort on destination.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, d, _) in &deduped {
            in_offsets[d.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![VertexId(0); m];
        let mut in_weights = vec![0.0f64; m];
        for &(s, d, w) in &deduped {
            let pos = cursor[d.index()];
            in_sources[pos] = s;
            in_weights[pos] = w;
            cursor[d.index()] += 1;
        }
        // Sources within each in-list are already sorted because we iterate
        // edges in (src, dst) order, so for a fixed dst the sources ascend.

        Csr::from_parts(
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_last_weight() {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(1), 1.0);
        b.add_edge(VertexId(0), VertexId(1), 9.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(VertexId(0), VertexId(1)), Some(9.0));
    }

    #[test]
    fn isolated_vertices_are_kept() {
        let mut b = GraphBuilder::new();
        b.ensure_vertex(VertexId(9));
        b.add_edge(VertexId(0), VertexId(1), 1.0);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(VertexId(9)), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn undirected_edges_appear_both_ways() {
        let mut b = GraphBuilder::new();
        b.add_undirected_edge(VertexId(0), VertexId(1), 4.0);
        let g = b.build();
        assert_eq!(g.edge_weight(VertexId(0), VertexId(1)), Some(4.0));
        assert_eq!(g.edge_weight(VertexId(1), VertexId(0)), Some(4.0));
    }

    #[test]
    fn adjacency_lists_sorted() {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(5), 1.0);
        b.add_edge(VertexId(0), VertexId(2), 1.0);
        b.add_edge(VertexId(0), VertexId(8), 1.0);
        let g = b.build();
        let ns = g.out_neighbors(VertexId(0));
        assert_eq!(ns, &[VertexId(2), VertexId(5), VertexId(8)]);
    }

    #[test]
    fn in_lists_sorted_and_complete() {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(3), VertexId(0), 1.0);
        b.add_edge(VertexId(1), VertexId(0), 1.0);
        b.add_edge(VertexId(2), VertexId(0), 1.0);
        let g = b.build();
        assert_eq!(
            g.in_neighbors(VertexId(0)),
            &[VertexId(1), VertexId(2), VertexId(3)]
        );
    }
}
