//! Immutable compressed-sparse-row graph storage.
//!
//! The paper's vertex-centric engines keep the whole graph in memory; CSR
//! is the standard layout for that. We store *both* out- and in-adjacency
//! because provenance queries routinely look at incoming neighbours
//! (e.g. Query 4's in-degree check) while analytics send along outgoing
//! edges.

use crate::types::{Direction, VertexId};

/// A single adjacency entry: the neighbour and the edge weight.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct EdgeRef {
    /// The other endpoint of the edge.
    pub neighbor: VertexId,
    /// The edge weight (1.0 for unweighted graphs).
    pub weight: f64,
}

/// Immutable directed graph in CSR form with weights and in/out adjacency.
///
/// Construct via [`crate::GraphBuilder`]. Vertex ids are dense `0..n`.
#[derive(Clone, Debug)]
pub struct Csr {
    // Out-adjacency.
    out_offsets: Vec<usize>,
    out_targets: Vec<VertexId>,
    out_weights: Vec<f64>,
    // In-adjacency (sources of incoming edges), weights aligned.
    in_offsets: Vec<usize>,
    in_sources: Vec<VertexId>,
    in_weights: Vec<f64>,
}

impl Csr {
    /// Build a CSR directly from sorted, deduplicated parts. Intended for
    /// use by [`crate::GraphBuilder`]; invariants are debug-asserted.
    pub(crate) fn from_parts(
        out_offsets: Vec<usize>,
        out_targets: Vec<VertexId>,
        out_weights: Vec<f64>,
        in_offsets: Vec<usize>,
        in_sources: Vec<VertexId>,
        in_weights: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), in_offsets.len());
        debug_assert_eq!(*out_offsets.last().unwrap_or(&0), out_targets.len());
        debug_assert_eq!(*in_offsets.last().unwrap_or(&0), in_sources.len());
        debug_assert_eq!(out_targets.len(), out_weights.len());
        debug_assert_eq!(in_sources.len(), in_weights.len());
        Csr {
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Csr {
            out_offsets: vec![0; n + 1],
            out_targets: Vec::new(),
            out_weights: Vec::new(),
            in_offsets: vec![0; n + 1],
            in_sources: Vec::new(),
            in_weights: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let i = v.index();
        self.out_offsets[i + 1] - self.out_offsets[i]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        let i = v.index();
        self.in_offsets[i + 1] - self.in_offsets[i]
    }

    /// Degree in the requested direction.
    #[inline]
    pub fn degree(&self, v: VertexId, dir: Direction) -> usize {
        match dir {
            Direction::Out => self.out_degree(v),
            Direction::In => self.in_degree(v),
        }
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u64).map(VertexId)
    }

    /// Outgoing edges of `v` as `(neighbor, weight)` refs.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeRef> + '_ {
        let i = v.index();
        let range = self.out_offsets[i]..self.out_offsets[i + 1];
        self.out_targets[range.clone()]
            .iter()
            .zip(&self.out_weights[range])
            .map(|(&neighbor, &weight)| EdgeRef { neighbor, weight })
    }

    /// Incoming edges of `v`: the `neighbor` field is the edge *source*.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeRef> + '_ {
        let i = v.index();
        let range = self.in_offsets[i]..self.in_offsets[i + 1];
        self.in_sources[range.clone()]
            .iter()
            .zip(&self.in_weights[range])
            .map(|(&neighbor, &weight)| EdgeRef { neighbor, weight })
    }

    /// Outgoing neighbour ids of `v` (no weights).
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.out_targets[self.out_offsets[i]..self.out_offsets[i + 1]]
    }

    /// Incoming neighbour ids of `v` (no weights).
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.in_sources[self.in_offsets[i]..self.in_offsets[i + 1]]
    }

    /// Weight of edge `src -> dst`, if present. Binary search over the
    /// sorted adjacency list.
    pub fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<f64> {
        let i = src.index();
        let range = self.out_offsets[i]..self.out_offsets[i + 1];
        let slice = &self.out_targets[range.clone()];
        slice
            .binary_search(&dst)
            .ok()
            .map(|pos| self.out_weights[range.start + pos])
    }

    /// Whether the edge `src -> dst` exists.
    pub fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.edge_weight(src, dst).is_some()
    }

    /// Iterator over every directed edge `(src, dst, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, f64)> + '_ {
        self.vertices().flat_map(move |src| {
            self.out_edges(src)
                .map(move |e| (src, e.neighbor, e.weight))
        })
    }

    /// The vertex with the largest out-degree (ties broken by smaller id).
    ///
    /// The paper uses the highest-degree vertex as the seed for the custom
    /// forward-lineage capture (Query 3) on PageRank and WCC.
    pub fn max_out_degree_vertex(&self) -> Option<VertexId> {
        self.vertices().max_by_key(|&v| (self.out_degree(v), std::cmp::Reverse(v.0)))
    }

    /// The out-adjacency offset array: `out_offsets()[i]` is the number of
    /// out-edges owned by vertices `0..i`, i.e. the exclusive prefix sum of
    /// out-degrees, with a final entry equal to [`Csr::num_edges`].
    ///
    /// The parallel engine uses this to cut degree-weighted chunk
    /// boundaries so each worker owns ~equal edge work rather than ~equal
    /// vertex counts (power-law graphs are badly imbalanced otherwise).
    #[inline]
    pub fn out_offsets(&self) -> &[usize] {
        &self.out_offsets
    }

    /// Approximate in-memory footprint in bytes of the CSR arrays.
    ///
    /// Used as the "input graph size" denominator in Tables 3 and 4.
    pub fn byte_size(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<usize>()
            + self.in_offsets.len() * std::mem::size_of::<usize>()
            + self.out_targets.len() * std::mem::size_of::<VertexId>()
            + self.in_sources.len() * std::mem::size_of::<VertexId>()
            + self.out_weights.len() * std::mem::size_of::<f64>()
            + self.in_weights.len() * std::mem::size_of::<f64>()
    }

    /// A copy of this graph with every edge weight replaced by
    /// `f(src, dst, weight)`. Used to assign random positive weights for
    /// SSSP as the paper does ("random positive weights in the range 0-1").
    pub fn map_weights(&self, mut f: impl FnMut(VertexId, VertexId, f64) -> f64) -> Csr {
        let mut builder = crate::GraphBuilder::with_capacity(self.num_vertices(), self.num_edges());
        builder.ensure_vertex(VertexId(self.num_vertices().saturating_sub(1) as u64));
        for (src, dst, w) in self.edges() {
            builder.add_edge(src, dst, f(src, dst, w));
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Csr {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(0), VertexId(1), 1.0);
        b.add_edge(VertexId(1), VertexId(2), 2.0);
        b.add_edge(VertexId(2), VertexId(0), 3.0);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
            assert_eq!(g.degree(v, Direction::Out), 1);
            assert_eq!(g.degree(v, Direction::In), 1);
        }
    }

    #[test]
    fn adjacency_and_weights() {
        let g = triangle();
        assert_eq!(g.out_neighbors(VertexId(0)), &[VertexId(1)]);
        assert_eq!(g.in_neighbors(VertexId(0)), &[VertexId(2)]);
        assert_eq!(g.edge_weight(VertexId(1), VertexId(2)), Some(2.0));
        assert_eq!(g.edge_weight(VertexId(2), VertexId(1)), None);
        assert!(g.has_edge(VertexId(2), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(2)));
    }

    #[test]
    fn in_edges_carry_source_weight() {
        let g = triangle();
        let ins: Vec<_> = g.in_edges(VertexId(2)).collect();
        assert_eq!(ins.len(), 1);
        assert_eq!(ins[0].neighbor, VertexId(1));
        assert_eq!(ins[0].weight, 2.0);
    }

    #[test]
    fn edges_iterator_visits_all() {
        let g = triangle();
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all.len(), 3);
        assert!(all.contains(&(VertexId(0), VertexId(1), 1.0)));
        assert!(all.contains(&(VertexId(2), VertexId(0), 3.0)));
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_degree(VertexId(4)), 0);
        assert!(g.max_out_degree_vertex().is_some());
    }

    #[test]
    fn max_degree_vertex() {
        let mut b = GraphBuilder::new();
        b.add_edge(VertexId(3), VertexId(0), 1.0);
        b.add_edge(VertexId(3), VertexId(1), 1.0);
        b.add_edge(VertexId(3), VertexId(2), 1.0);
        b.add_edge(VertexId(0), VertexId(1), 1.0);
        let g = b.build();
        assert_eq!(g.max_out_degree_vertex(), Some(VertexId(3)));
    }

    #[test]
    fn map_weights_rewrites_both_directions() {
        let g = triangle().map_weights(|_, _, w| w * 10.0);
        assert_eq!(g.edge_weight(VertexId(1), VertexId(2)), Some(20.0));
        let ins: Vec<_> = g.in_edges(VertexId(2)).collect();
        assert_eq!(ins[0].weight, 20.0);
    }

    #[test]
    fn byte_size_positive_and_monotone() {
        let small = Csr::empty(2).byte_size();
        let big = triangle().byte_size();
        assert!(big > small || small > 0);
        assert!(triangle().byte_size() > 0);
    }
}
