//! Barabási–Albert preferential-attachment generator.
//!
//! An alternative heavy-tailed model to R-MAT; used in tests and ablation
//! benches to check that Ariadne's overhead ratios are not an artifact of
//! the R-MAT quadrant structure.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a preferential-attachment graph with `n` vertices where each
/// new vertex attaches `m` out-edges to existing vertices chosen with
/// probability proportional to their current degree.
///
/// The first `m + 1` vertices form a seed clique-ish core (each points to
/// all of its predecessors).
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Csr {
    assert!(m >= 1, "attachment count must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    if n == 0 {
        return b.build();
    }
    b.ensure_vertex(VertexId(n as u64 - 1));

    // Repeated-endpoints trick: sample attachment targets uniformly from
    // the flat list of edge endpoints, which realizes degree-proportional
    // sampling in O(1).
    let mut endpoints: Vec<u64> = Vec::with_capacity(2 * n * m);

    let core = (m + 1).min(n);
    for i in 1..core {
        for j in 0..i {
            b.add_edge(VertexId(i as u64), VertexId(j as u64), 1.0);
            endpoints.push(i as u64);
            endpoints.push(j as u64);
        }
    }

    for i in core..n {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let target = if endpoints.is_empty() {
                rng.gen_range(0..i as u64)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if target != i as u64 && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for t in chosen {
            b.add_edge(VertexId(i as u64), VertexId(t), 1.0);
            endpoints.push(i as u64);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let g = preferential_attachment(200, 3, 9);
        assert_eq!(g.num_vertices(), 200);
        // core: C(4,2)=6 directed edges for m=3 core of 4; rest 196*3.
        assert_eq!(g.num_edges(), 6 + 196 * 3);
    }

    #[test]
    fn heavy_tail() {
        let g = preferential_attachment(1000, 2, 42);
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let avg_in = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max_in as f64 > 5.0 * avg_in, "max {max_in} avg {avg_in}");
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = preferential_attachment(100, 2, 5).edges().collect();
        let b: Vec<_> = preferential_attachment(100, 2, 5).edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(preferential_attachment(0, 1, 0).num_vertices(), 0);
        assert_eq!(preferential_attachment(1, 1, 0).num_edges(), 0);
        let g = preferential_attachment(2, 1, 0);
        assert_eq!(g.num_edges(), 1);
    }
}
