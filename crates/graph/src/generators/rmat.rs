//! R-MAT recursive-matrix generator (Chakrabarti et al., SDM 2004).
//!
//! R-MAT produces graphs with the heavy-tailed degree distribution typical
//! of web crawls — the same family as the paper's indochina/uk/arabic
//! datasets — which is the property that makes graph-analytic provenance
//! large (hub vertices receive and emit many messages every superstep).

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`rmat`].
#[derive(Copy, Clone, Debug)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average edges per vertex (|E| = edge_factor * 2^scale).
    pub edge_factor: usize,
    /// Recursive-quadrant probabilities; must sum to ~1.0.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        // Graph500 reference parameters.
        RmatConfig {
            scale: 10,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 0xA51AD4E,
        }
    }
}

/// Generate an R-MAT graph. Self-loops are dropped and duplicate edges are
/// merged by the builder, so the realized edge count is slightly below
/// `edge_factor * 2^scale`, more so for small scales.
pub fn rmat(cfg: RmatConfig) -> Csr {
    assert!(cfg.a + cfg.b + cfg.c <= 1.0 + 1e-9, "quadrant probabilities exceed 1");
    let n: u64 = 1 << cfg.scale;
    let m = cfg.edge_factor * n as usize;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut builder = GraphBuilder::with_capacity(n as usize, m);
    builder.ensure_vertex(VertexId(n - 1));

    for _ in 0..m {
        let (mut lo_s, mut hi_s) = (0u64, n);
        let (mut lo_d, mut hi_d) = (0u64, n);
        while hi_s - lo_s > 1 {
            let r: f64 = rng.gen();
            let (src_hi, dst_hi) = if r < cfg.a {
                (false, false)
            } else if r < cfg.a + cfg.b {
                (false, true)
            } else if r < cfg.a + cfg.b + cfg.c {
                (true, false)
            } else {
                (true, true)
            };
            let mid_s = (lo_s + hi_s) / 2;
            let mid_d = (lo_d + hi_d) / 2;
            if src_hi {
                lo_s = mid_s;
            } else {
                hi_s = mid_s;
            }
            if dst_hi {
                lo_d = mid_d;
            } else {
                hi_d = mid_d;
            }
        }
        let (src, dst) = (VertexId(lo_s), VertexId(lo_d));
        if src != dst {
            builder.add_edge(src, dst, 1.0);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RmatConfig {
            scale: 8,
            edge_factor: 8,
            ..Default::default()
        };
        let g1 = rmat(cfg);
        let g2 = rmat(cfg);
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        assert_eq!(g1.num_edges(), g2.num_edges());
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn different_seed_differs() {
        let g1 = rmat(RmatConfig { scale: 8, edge_factor: 8, seed: 1, ..Default::default() });
        let g2 = rmat(RmatConfig { scale: 8, edge_factor: 8, seed: 2, ..Default::default() });
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn expected_size() {
        let g = rmat(RmatConfig { scale: 10, edge_factor: 16, ..Default::default() });
        assert_eq!(g.num_vertices(), 1024);
        // Duplicates and self-loops shave some edges off.
        assert!(g.num_edges() > 8 * 1024, "edges = {}", g.num_edges());
        assert!(g.num_edges() <= 16 * 1024);
    }

    #[test]
    fn no_self_loops() {
        let g = rmat(RmatConfig { scale: 7, edge_factor: 8, ..Default::default() });
        assert!(g.edges().all(|(s, d, _)| s != d));
    }

    #[test]
    fn skewed_degrees() {
        // With a=0.57 the top vertex should have far more than the average
        // degree — the hallmark of the web-crawl degree distribution.
        let g = rmat(RmatConfig { scale: 10, edge_factor: 16, ..Default::default() });
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        let max = g
            .vertices()
            .map(|v| g.out_degree(v))
            .max()
            .unwrap() as f64;
        assert!(max > 4.0 * avg, "max {max} avg {avg}");
    }
}
