//! Deterministic structured graphs: paths, cycles, stars, grids, complete
//! graphs and balanced trees. These have known shortest paths, components
//! and diameters, which makes them the workhorses of the test suite.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::types::VertexId;

/// Directed path `0 -> 1 -> ... -> n-1` with unit weights.
pub fn path(n: usize) -> Csr {
    let mut b = GraphBuilder::new();
    if n > 0 {
        b.ensure_vertex(VertexId(n as u64 - 1));
    }
    for i in 1..n {
        b.add_edge(VertexId(i as u64 - 1), VertexId(i as u64), 1.0);
    }
    b.build()
}

/// Directed cycle over `n` vertices with unit weights.
pub fn cycle(n: usize) -> Csr {
    let mut b = GraphBuilder::new();
    if n > 0 {
        b.ensure_vertex(VertexId(n as u64 - 1));
    }
    if n > 1 {
        for i in 0..n {
            b.add_edge(VertexId(i as u64), VertexId(((i + 1) % n) as u64), 1.0);
        }
    }
    b.build()
}

/// Star: vertex 0 points at vertices `1..n` (n-1 spokes), unit weights.
pub fn star(n: usize) -> Csr {
    let mut b = GraphBuilder::new();
    if n > 0 {
        b.ensure_vertex(VertexId(n as u64 - 1));
    }
    for i in 1..n {
        b.add_edge(VertexId(0), VertexId(i as u64), 1.0);
    }
    b.build()
}

/// `w x h` grid with undirected (bidirectional) unit-weight edges between
/// 4-neighbours. Vertex `(r, c)` has id `r * w + c`.
pub fn grid(w: usize, h: usize) -> Csr {
    let mut b = GraphBuilder::new();
    let n = w * h;
    if n > 0 {
        b.ensure_vertex(VertexId(n as u64 - 1));
    }
    for r in 0..h {
        for c in 0..w {
            let id = (r * w + c) as u64;
            if c + 1 < w {
                b.add_undirected_edge(VertexId(id), VertexId(id + 1), 1.0);
            }
            if r + 1 < h {
                b.add_undirected_edge(VertexId(id), VertexId(id + w as u64), 1.0);
            }
        }
    }
    b.build()
}

/// Complete directed graph on `n` vertices (no self-loops), unit weights.
pub fn complete(n: usize) -> Csr {
    let mut b = GraphBuilder::new();
    if n > 0 {
        b.ensure_vertex(VertexId(n as u64 - 1));
    }
    for i in 0..n as u64 {
        for j in 0..n as u64 {
            if i != j {
                b.add_edge(VertexId(i), VertexId(j), 1.0);
            }
        }
    }
    b.build()
}

/// Balanced `k`-ary tree with `n` vertices, edges directed parent -> child,
/// unit weights. Vertex 0 is the root; the parent of `i` is `(i-1)/k`.
pub fn tree(n: usize, k: usize) -> Csr {
    assert!(k >= 1, "arity must be at least 1");
    let mut b = GraphBuilder::new();
    if n > 0 {
        b.ensure_vertex(VertexId(n as u64 - 1));
    }
    for i in 1..n {
        let parent = (i - 1) / k;
        b.add_edge(VertexId(parent as u64), VertexId(i as u64), 1.0);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(VertexId(3)), 0);
        assert_eq!(g.in_degree(VertexId(0)), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.num_edges(), 5);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.out_degree(VertexId(0)), 5);
        assert_eq!(g.in_degree(VertexId(3)), 1);
        assert_eq!(g.max_out_degree_vertex(), Some(VertexId(0)));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 2);
        assert_eq!(g.num_vertices(), 6);
        // 3x2 grid: horizontal 2*2=4, vertical 3*1=3, doubled = 14.
        assert_eq!(g.num_edges(), 14);
        // Corner vertex has degree 2 each way.
        assert_eq!(g.out_degree(VertexId(0)), 2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(4);
        assert_eq!(g.num_edges(), 12);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 3);
            assert_eq!(g.in_degree(v), 3);
        }
    }

    #[test]
    fn tree_shape() {
        let g = tree(7, 2);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_degree(VertexId(0)), 2);
        assert_eq!(g.out_degree(VertexId(1)), 2);
        assert_eq!(g.out_degree(VertexId(3)), 0);
        assert_eq!(g.in_degree(VertexId(0)), 0);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(path(0).num_vertices(), 0);
        assert_eq!(path(1).num_vertices(), 1);
        assert_eq!(cycle(1).num_edges(), 0); // a 1-cycle would be a self-loop; skipped
    }
}
