//! Scale models of the paper's evaluation datasets (Table 2).
//!
//! | Dataset | \|V\|  | \|E\|  | Avg degree | Avg diameter |
//! |---------|--------|--------|------------|--------------|
//! | IN-04   | 7.4M   | 194M   | 26.17      | 28.12        |
//! | UK-02   | 18.5M  | 298M   | 16.01      | 21.59        |
//! | AR-05   | 22.7M  | 640M   | 28.14      | 22.39        |
//! | UK-05   | 39.5M  | 936M   | 23.73      | 23.19        |
//! | ML-20   | 16.5K* | 20M    | 121        | 1 (bipartite)|
//!
//! (*ML-20 has 138,493 users and 26,744 movies; the paper's 16.5K row
//! reports movies + a feature-count-dependent view.)
//!
//! These graphs don't fit a laptop at full scale. [`paper_graph`] produces
//! an R-MAT model with the same average degree at `1/denominator` of the
//! vertex count; [`paper_ratings`] does the same for the MovieLens
//! bipartite graph. Provenance-overhead *ratios* depend on the per-vertex
//! message/edge volume and superstep count, both preserved under this
//! scaling.

use super::bipartite::{BipartiteRatings, RatingsConfig};
use super::rmat::{rmat, RmatConfig};
use crate::csr::Csr;

/// The paper's five evaluation datasets.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Dataset {
    /// indochina-2004 web crawl.
    In04,
    /// uk-2002 web crawl.
    Uk02,
    /// arabic-2005 web crawl.
    Ar05,
    /// uk-2005 web crawl.
    Uk05,
    /// MovieLens-20M ratings (bipartite; use [`paper_ratings`]).
    Ml20,
}

impl Dataset {
    /// Short name used in the paper's tables and our reports.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::In04 => "IN-04",
            Dataset::Uk02 => "UK-02",
            Dataset::Ar05 => "AR-05",
            Dataset::Uk05 => "UK-05",
            Dataset::Ml20 => "ML-20",
        }
    }

    /// Full-scale vertex count from Table 2.
    pub fn full_vertices(self) -> u64 {
        match self {
            Dataset::In04 => 7_400_000,
            Dataset::Uk02 => 18_500_000,
            Dataset::Ar05 => 22_700_000,
            Dataset::Uk05 => 39_500_000,
            Dataset::Ml20 => 138_493 + 26_744,
        }
    }

    /// Full-scale edge count from Table 2.
    pub fn full_edges(self) -> u64 {
        match self {
            Dataset::In04 => 194_000_000,
            Dataset::Uk02 => 298_000_000,
            Dataset::Ar05 => 640_000_000,
            Dataset::Uk05 => 936_000_000,
            Dataset::Ml20 => 20_000_000,
        }
    }

    /// Average degree from Table 2 (edges per vertex).
    pub fn avg_degree(self) -> f64 {
        match self {
            Dataset::In04 => 26.17,
            Dataset::Uk02 => 16.01,
            Dataset::Ar05 => 28.14,
            Dataset::Uk05 => 23.73,
            Dataset::Ml20 => 121.0,
        }
    }

    /// The four web-crawl datasets (the ones PageRank/SSSP/WCC run on).
    pub fn web_crawls() -> [Dataset; 4] {
        [Dataset::In04, Dataset::Uk02, Dataset::Ar05, Dataset::Uk05]
    }
}

/// Build a scale model of a web-crawl dataset with `1/denominator` of the
/// vertices and a matched average degree. `denominator = 1000` gives graphs
/// in the 7k–40k vertex range — comfortable for tests and benches.
///
/// Panics if called with [`Dataset::Ml20`]; use [`paper_ratings`] for it.
pub fn paper_graph(ds: Dataset, denominator: u64) -> Csr {
    assert!(ds != Dataset::Ml20, "ML-20 is bipartite; use paper_ratings");
    assert!(denominator >= 1);
    let target_v = (ds.full_vertices() / denominator).max(64);
    // R-MAT wants a power of two; round up so the average degree computed
    // against the realized vertex count stays close to the target.
    let scale = (64 - (target_v - 1).leading_zeros()) .max(6);
    let edge_factor = ds.avg_degree().round() as usize;
    rmat(RmatConfig {
        scale,
        edge_factor,
        seed: 0x1000 + ds as u64,
        ..Default::default()
    })
}

/// Build a scale model of MovieLens-20M at `1/denominator` scale.
pub fn paper_ratings(denominator: u64) -> BipartiteRatings {
    assert!(denominator >= 1);
    let users = (138_493 / denominator).max(20) as usize;
    let items = (26_744 / denominator).max(5) as usize;
    // 20M ratings over 138k users ≈ 144 ratings/user; keep that density.
    let ratings_per_user = 144usize.min(items * 4);
    BipartiteRatings::generate(&RatingsConfig {
        users,
        items,
        ratings_per_user,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_table2_constants() {
        assert_eq!(Dataset::In04.name(), "IN-04");
        assert_eq!(Dataset::Uk05.full_vertices(), 39_500_000);
        assert!(Dataset::Ar05.avg_degree() > 28.0);
        assert_eq!(Dataset::web_crawls().len(), 4);
    }

    #[test]
    fn scaled_graph_matches_degree_shape() {
        let g = paper_graph(Dataset::Uk02, 2000);
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        // Dedup trims some edges; accept a generous band around 16.
        assert!(avg > 8.0 && avg < 20.0, "avg degree {avg}");
    }

    #[test]
    fn scaled_sizes_ordered_like_paper() {
        // UK-05 model should be the largest, IN-04 the smallest.
        let in04 = paper_graph(Dataset::In04, 2000);
        let uk05 = paper_graph(Dataset::Uk05, 2000);
        assert!(uk05.num_vertices() > in04.num_vertices());
        assert!(uk05.num_edges() > in04.num_edges());
    }

    #[test]
    #[should_panic(expected = "bipartite")]
    fn ml20_rejected_by_paper_graph() {
        let _ = paper_graph(Dataset::Ml20, 1000);
    }

    #[test]
    fn scaled_ratings_shape() {
        let br = paper_ratings(1000);
        assert!(br.users > br.items);
        assert!(br.num_ratings() > 0);
    }
}
