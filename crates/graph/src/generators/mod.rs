//! Synthetic graph generators.
//!
//! The paper evaluates on multi-gigabyte web crawls and MovieLens-20M.
//! Those are substituted here by deterministic synthetic scale models with
//! matched *shape*: heavy-tailed degree distribution for the web crawls
//! (R-MAT), user/item bipartite structure with bounded ratings for
//! MovieLens. See `DESIGN.md` §1 for the substitution rationale.

pub mod bipartite;
pub mod datasets;
pub mod erdos_renyi;
pub mod preferential;
pub mod regular;
pub mod rmat;

pub use bipartite::{BipartiteRatings, RatingsConfig};
pub use datasets::{paper_graph, paper_ratings, Dataset};
pub use erdos_renyi::erdos_renyi;
pub use preferential::preferential_attachment;
pub use regular::{complete, cycle, grid, path, star, tree};
pub use rmat::{rmat, RmatConfig};
