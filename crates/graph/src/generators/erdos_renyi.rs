//! Erdős–Rényi G(n, m) generator, used mainly by tests and property-based
//! testing where a uniform random graph is the right null model.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a directed G(n, m) graph: `m` edges sampled uniformly (with
/// duplicate merging, so the realized count may be slightly lower).
/// Self-loops are excluded.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n > 0 || m == 0, "cannot place edges in an empty graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    if n > 0 {
        b.ensure_vertex(VertexId(n as u64 - 1));
    }
    if n > 1 {
        for _ in 0..m {
            let src = rng.gen_range(0..n as u64);
            let mut dst = rng.gen_range(0..n as u64 - 1);
            if dst >= src {
                dst += 1;
            }
            b.add_edge(VertexId(src), VertexId(dst), 1.0);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let g = erdos_renyi(100, 500, 7);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() <= 500);
        assert!(g.num_edges() > 400); // few duplicates at this density
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(50, 400, 3);
        assert!(g.edges().all(|(s, d, _)| s != d));
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = erdos_renyi(40, 100, 11).edges().collect();
        let b: Vec<_> = erdos_renyi(40, 100, 11).edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn single_vertex_no_edges() {
        let g = erdos_renyi(1, 0, 1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
