//! Bipartite user/item ratings graphs — the MovieLens-20M stand-in.
//!
//! The paper's ALS experiments run on MovieLens-20M represented as a
//! bipartite graph: an edge between user `i` and movie `j` with weight `w`
//! means user `i` rated movie `j` with `w` (0–5). We generate a synthetic
//! equivalent with the same structural features: many more users than
//! items, a skewed item popularity distribution, and ratings produced from
//! a planted low-rank model plus noise so ALS actually has signal to fit.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`BipartiteRatings::generate`].
#[derive(Clone, Debug)]
pub struct RatingsConfig {
    /// Number of user vertices (ids `0..users`).
    pub users: usize,
    /// Number of item vertices (ids `users..users+items`).
    pub items: usize,
    /// Average number of ratings per user.
    pub ratings_per_user: usize,
    /// Rank of the planted latent model that generates ratings.
    pub planted_rank: usize,
    /// Gaussian-ish noise amplitude added to planted ratings.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RatingsConfig {
    fn default() -> Self {
        RatingsConfig {
            users: 1000,
            items: 200,
            ratings_per_user: 20,
            planted_rank: 5,
            noise: 0.3,
            seed: 0x414C53,
        }
    }
}

/// A generated ratings graph plus its user/item split.
#[derive(Clone, Debug)]
pub struct BipartiteRatings {
    /// Undirected (bidirectional) graph; edge weight = rating in `[0, 5]`.
    pub graph: Csr,
    /// Number of user vertices (`0..users` are users).
    pub users: usize,
    /// Number of item vertices (`users..users+items` are items).
    pub items: usize,
}

impl BipartiteRatings {
    /// Generate a ratings graph from `cfg`.
    ///
    /// Item popularity follows a Zipf-like distribution (item `k` is
    /// sampled with probability ∝ 1/(k+1)), mirroring the long tail of
    /// movie popularity in MovieLens.
    pub fn generate(cfg: &RatingsConfig) -> Self {
        assert!(cfg.users > 0 && cfg.items > 0, "need at least one user and item");
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Planted latent factors in [0, 1]; rating = clamp(5 * <u, v> / r + noise).
        let r = cfg.planted_rank.max(1);
        let ufac: Vec<Vec<f64>> = (0..cfg.users)
            .map(|_| (0..r).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let ifac: Vec<Vec<f64>> = (0..cfg.items)
            .map(|_| (0..r).map(|_| rng.gen::<f64>()).collect())
            .collect();

        // Zipf cumulative weights over items.
        let weights: Vec<f64> = (0..cfg.items).map(|k| 1.0 / (k as f64 + 1.0)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(cfg.items);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }

        let mut b = GraphBuilder::new();
        b.ensure_vertex(VertexId((cfg.users + cfg.items) as u64 - 1));
        for (u, user_factors) in ufac.iter().enumerate() {
            for _ in 0..cfg.ratings_per_user {
                let x: f64 = rng.gen();
                let item = cdf.partition_point(|&c| c < x).min(cfg.items - 1);
                let dot: f64 = user_factors
                    .iter()
                    .zip(&ifac[item])
                    .map(|(a, b)| a * b)
                    .sum();
                let noise = (rng.gen::<f64>() - 0.5) * 2.0 * cfg.noise;
                let rating = (5.0 * dot / r as f64 + noise).clamp(0.0, 5.0);
                let user_v = VertexId(u as u64);
                let item_v = VertexId((cfg.users + item) as u64);
                b.add_undirected_edge(user_v, item_v, rating);
            }
        }
        BipartiteRatings {
            graph: b.build(),
            users: cfg.users,
            items: cfg.items,
        }
    }

    /// Whether vertex `v` is on the user side.
    #[inline]
    pub fn is_user(&self, v: VertexId) -> bool {
        v.index() < self.users
    }

    /// Total number of distinct ratings (undirected edges).
    pub fn num_ratings(&self) -> usize {
        self.graph.num_edges() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bipartite_structure() {
        let br = BipartiteRatings::generate(&RatingsConfig {
            users: 50,
            items: 10,
            ratings_per_user: 5,
            ..Default::default()
        });
        assert_eq!(br.graph.num_vertices(), 60);
        // Every edge connects a user to an item.
        for (s, d, _) in br.graph.edges() {
            assert_ne!(br.is_user(s), br.is_user(d), "edge {s}->{d} not bipartite");
        }
    }

    #[test]
    fn ratings_in_range() {
        let br = BipartiteRatings::generate(&RatingsConfig::default());
        for (_, _, w) in br.graph.edges() {
            assert!((0.0..=5.0).contains(&w), "rating {w} outside 0-5");
        }
    }

    #[test]
    fn symmetric_edges() {
        let br = BipartiteRatings::generate(&RatingsConfig {
            users: 30,
            items: 8,
            ratings_per_user: 4,
            ..Default::default()
        });
        for (s, d, w) in br.graph.edges() {
            assert_eq!(br.graph.edge_weight(d, s), Some(w));
        }
    }

    #[test]
    fn popular_items_get_more_ratings() {
        let br = BipartiteRatings::generate(&RatingsConfig {
            users: 500,
            items: 50,
            ratings_per_user: 10,
            ..Default::default()
        });
        let first = br.graph.in_degree(VertexId(br.users as u64));
        let last = br.graph.in_degree(VertexId((br.users + br.items - 1) as u64));
        assert!(first > last, "zipf head {first} should beat tail {last}");
    }

    #[test]
    fn deterministic() {
        let a = BipartiteRatings::generate(&RatingsConfig::default());
        let b = BipartiteRatings::generate(&RatingsConfig::default());
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }
}
