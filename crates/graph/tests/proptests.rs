//! Property-based tests for graph construction and statistics.

use ariadne_graph::stats::{bfs_distances, weakly_connected_components};
use ariadne_graph::{GraphBuilder, VertexId};
use proptest::prelude::*;

fn arb_edges() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    proptest::collection::vec((0u64..50, 0u64..50, 0.0f64..10.0), 0..200)
}

proptest! {
    /// CSR invariants: degrees sum to edge count, adjacency sorted and
    /// deduplicated, in/out views consistent.
    #[test]
    fn csr_invariants(edges in arb_edges()) {
        let mut b = GraphBuilder::new();
        for &(s, d, w) in &edges {
            b.add_edge(VertexId(s), VertexId(d), w);
        }
        let g = b.build();
        let out_sum: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
        for v in g.vertices() {
            let ns = g.out_neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted/dup adjacency");
            for &n in ns {
                prop_assert!(g.has_edge(v, n));
                prop_assert!(g.in_neighbors(n).contains(&v));
            }
        }
    }

    /// Every edge inserted is retrievable with the *last* weight given.
    #[test]
    fn last_weight_wins(edges in arb_edges()) {
        let mut b = GraphBuilder::new();
        for &(s, d, w) in &edges {
            b.add_edge(VertexId(s), VertexId(d), w);
        }
        let g = b.build();
        use std::collections::HashMap;
        let mut expect: HashMap<(u64, u64), f64> = HashMap::new();
        for &(s, d, w) in &edges {
            expect.insert((s, d), w);
        }
        for ((s, d), w) in expect {
            prop_assert_eq!(g.edge_weight(VertexId(s), VertexId(d)), Some(w));
        }
    }

    /// BFS distances satisfy the triangle property along edges.
    #[test]
    fn bfs_relaxed(edges in arb_edges()) {
        let mut b = GraphBuilder::new();
        b.ensure_vertex(VertexId(0));
        for &(s, d, _) in &edges {
            b.add_edge(VertexId(s), VertexId(d), 1.0);
        }
        let g = b.build();
        let dist = bfs_distances(&g, VertexId(0));
        for (s, d, _) in g.edges() {
            let (ds, dd) = (dist[s.index()], dist[d.index()]);
            if ds != u32::MAX {
                prop_assert!(dd <= ds + 1, "edge {s}->{d}: {ds} then {dd}");
            }
        }
    }

    /// WCC labels are component minima: every vertex's label is <= its
    /// own id and equal to its neighbours' labels.
    #[test]
    fn wcc_labels_consistent(edges in arb_edges()) {
        let mut b = GraphBuilder::new();
        for &(s, d, _) in &edges {
            b.add_edge(VertexId(s), VertexId(d), 1.0);
        }
        let g = b.build();
        let labels = weakly_connected_components(&g);
        for v in g.vertices() {
            prop_assert!(labels[v.index()] <= v.0);
        }
        for (s, d, _) in g.edges() {
            prop_assert_eq!(labels[s.index()], labels[d.index()]);
        }
    }
}
