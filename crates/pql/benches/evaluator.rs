//! Microbenchmarks of the semi-naive evaluator: transitive closure,
//! aggregation, and incremental (per-superstep) stepping — the hot paths
//! under Ariadne's online evaluation.

use ariadne_pql::{analyze, parse, Catalog, Database, Evaluator, Params, UdfRegistry, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn evaluator(src: &str) -> Evaluator {
    let q = analyze(&parse(src).unwrap(), &Catalog::standard(), &Params::new()).unwrap();
    Evaluator::new(q, UdfRegistry::standard())
}

fn chain_db(n: u64) -> Database {
    let mut db = Database::new();
    for i in 1..n {
        db.insert("edge", vec![Value::Id(i), Value::Id(i - 1)]);
    }
    db
}

fn bench_transitive_closure(c: &mut Criterion) {
    let ev = evaluator(
        "reach(x) :- edge(x, y), y = 0.
         reach(x) :- edge(x, y), reach(y).",
    );
    let mut group = c.benchmark_group("pql_transitive_closure");
    group.sample_size(20);
    for n in [100u64, 1000] {
        group.bench_function(format!("chain_{n}"), |b| {
            b.iter(|| {
                let mut db = chain_db(n);
                ev.run(&mut db).unwrap();
                black_box(db.len("reach"))
            })
        });
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let ev = evaluator("deg(x, count(y)) :- in_edge(x, y).");
    let mut db = Database::new();
    for x in 0..200u64 {
        for y in 0..50u64 {
            db.insert("in_edge", vec![Value::Id(x), Value::Id(y)]);
        }
    }
    let mut group = c.benchmark_group("pql_aggregation");
    group.sample_size(20);
    group.bench_function("count_10k_tuples", |b| {
        b.iter(|| {
            let mut d = db.clone();
            ev.run(&mut d).unwrap();
            black_box(d.len("deg"))
        })
    });
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    // The online pattern: inject one superstep's tuples, step, repeat.
    let ev = evaluator(
        "changed(x, i) :- value(x, d1, i), value(x, d2, j), evolution(x, j, i), d1 != d2.",
    );
    let mut group = c.benchmark_group("pql_incremental");
    group.sample_size(20);
    group.bench_function("20_supersteps_100_vertices", |b| {
        b.iter(|| {
            let mut db = Database::new();
            let mut state = ariadne_pql::eval::seminaive::EvalState::default();
            for i in 0..20i64 {
                for v in 0..100u64 {
                    db.insert(
                        "value",
                        vec![Value::Id(v), Value::Float(i as f64), Value::Int(i)],
                    );
                    if i > 0 {
                        db.insert(
                            "evolution",
                            vec![Value::Id(v), Value::Int(i - 1), Value::Int(i)],
                        );
                    }
                }
                ev.step(&mut db, &mut state, None).unwrap();
            }
            black_box(db.len("changed"))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_transitive_closure,
    bench_aggregation,
    bench_incremental
);
criterion_main!(benches);
