//! The EDB predicate catalog (Table 1 of the paper, plus graph-structure
//! predicates and analytic-specific custom provenance relations).

use std::collections::BTreeMap;

/// Schema of one EDB predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdbSchema {
    /// Predicate name.
    pub name: String,
    /// Number of arguments, including the location specifier.
    pub arity: usize,
    /// Which argument is the location specifier (vertex the tuples live
    /// at). Always 0 for the built-ins.
    pub location: usize,
    /// For message predicates: which argument names the *other* endpoint
    /// of the communication (the sender of `receive_message`, the
    /// receiver of `send_message`). Used by the VC-compatibility and
    /// directedness analyses (Definitions 4.1 and 5.2).
    pub peer: Option<usize>,
    /// Whether this predicate certifies communication between its
    /// location and peer, and in which direction. `send_message` and
    /// `receive_message` have this set; custom captured relations that
    /// encode communication (the paper's Query 12 uses `prov_edges` +
    /// `prov_send` in place of `send_message`) can be registered with it.
    pub kind: Option<MessageKind>,
    /// One-line description.
    pub doc: &'static str,
}

/// The direction a message predicate grants communication in.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MessageKind {
    /// `receive_message(x, y, m, i)`: x hears from its in-neighbour y.
    Receive,
    /// `send_message(x, y, m, i)`: x spoke to its out-neighbour y.
    Send,
}

/// The catalog of EDB predicates a query may reference.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    edbs: BTreeMap<String, EdbSchema>,
}

impl Catalog {
    /// The standard catalog: the provenance EDBs of Table 1 plus graph
    /// structure (`edge`, `in_edge`) and the raw capture-source
    /// predicates used by capture rules (Query 2).
    pub fn standard() -> Self {
        let mut c = Catalog::default();
        let defs: [(&str, usize, Option<usize>, &'static str); 10] = [
            (
                "superstep",
                2,
                None,
                "superstep(x, i): vertex x was active at superstep i",
            ),
            (
                "value",
                3,
                None,
                "value(x, d, i): vertex x had value d at superstep i",
            ),
            (
                "evolution",
                3,
                None,
                "evolution(x, i, j): x active at supersteps i then j, i the predecessor",
            ),
            (
                "send_message",
                4,
                Some(1),
                "send_message(x, y, m, i): x sent m to out-neighbour y at superstep i",
            ),
            (
                "receive_message",
                4,
                Some(1),
                "receive_message(x, y, m, i): x received m from in-neighbour y at superstep i",
            ),
            (
                "edge_value",
                4,
                Some(1),
                "edge_value(x, y, d, i): the edge x->y had value d at superstep i",
            ),
            ("edge", 2, Some(1), "edge(x, y): the input graph has edge x->y"),
            (
                "in_edge",
                2,
                Some(1),
                "in_edge(x, y): the input graph has edge y->x (stored at x)",
            ),
            (
                "vertex_value",
                2,
                None,
                "vertex_value(x, d): transient current value during capture",
            ),
            (
                "prov_node",
                2,
                None,
                "prov_node(x, i): node (x, i) exists in the unfolded provenance graph",
            ),
        ];
        for (name, arity, peer, doc) in defs {
            let kind = match name {
                "send_message" => Some(MessageKind::Send),
                "receive_message" => Some(MessageKind::Receive),
                _ => None,
            };
            c.edbs.insert(
                name.to_string(),
                EdbSchema {
                    name: name.to_string(),
                    arity,
                    location: 0,
                    peer,
                    kind,
                    doc,
                },
            );
        }
        c
    }

    /// Register a custom EDB (e.g. ALS's `prov_error(x, y, i, e)`).
    pub fn register(&mut self, name: &str, arity: usize) -> &mut Self {
        self.edbs.insert(
            name.to_string(),
            EdbSchema {
                name: name.to_string(),
                arity,
                location: 0,
                peer: None,
                kind: None,
                doc: "custom provenance relation",
            },
        );
        self
    }

    /// Register a custom EDB that certifies communication (peer column +
    /// direction), granting it guard status in the directedness analysis.
    /// The paper's Query 12 runs backward lineage over captured
    /// `prov_edges(x, y)` tuples registered this way.
    pub fn register_message_like(
        &mut self,
        name: &str,
        arity: usize,
        peer: usize,
        kind: MessageKind,
    ) -> &mut Self {
        self.edbs.insert(
            name.to_string(),
            EdbSchema {
                name: name.to_string(),
                arity,
                location: 0,
                peer: Some(peer),
                kind: Some(kind),
                doc: "custom communication-certifying relation",
            },
        );
        self
    }

    /// Look up a predicate.
    pub fn get(&self, name: &str) -> Option<&EdbSchema> {
        self.edbs.get(name)
    }

    /// Whether `name` is an EDB predicate.
    pub fn is_edb(&self, name: &str) -> bool {
        self.edbs.contains_key(name)
    }

    /// If `name` certifies communication, which kind.
    pub fn message_kind(&self, name: &str) -> Option<MessageKind> {
        self.edbs.get(name).and_then(|s| s.kind)
    }

    /// Iterate all registered EDBs (sorted by name; deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &EdbSchema> {
        self.edbs.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_contains_table1() {
        let c = Catalog::standard();
        for name in [
            "superstep",
            "value",
            "evolution",
            "send_message",
            "receive_message",
        ] {
            assert!(c.is_edb(name), "missing {name}");
        }
        assert_eq!(c.get("value").unwrap().arity, 3);
        assert_eq!(c.get("receive_message").unwrap().peer, Some(1));
    }

    #[test]
    fn message_kinds() {
        let c = Catalog::standard();
        assert_eq!(c.message_kind("receive_message"), Some(MessageKind::Receive));
        assert_eq!(c.message_kind("send_message"), Some(MessageKind::Send));
        assert_eq!(c.message_kind("value"), None);
    }

    #[test]
    fn custom_registration() {
        let mut c = Catalog::standard();
        c.register("prov_error", 4);
        assert!(c.is_edb("prov_error"));
        assert_eq!(c.get("prov_error").unwrap().arity, 4);
        assert_eq!(c.message_kind("prov_error"), None);
    }

    #[test]
    fn message_like_registration() {
        let mut c = Catalog::standard();
        c.register_message_like("prov_edges", 2, 1, MessageKind::Send);
        assert_eq!(c.message_kind("prov_edges"), Some(MessageKind::Send));
        assert_eq!(c.get("prov_edges").unwrap().peer, Some(1));
    }

    #[test]
    fn iteration_is_sorted() {
        let c = Catalog::standard();
        let names: Vec<_> = c.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
