//! Diagnostics for the PQL pipeline.

use std::fmt;

/// Any error raised while lexing, parsing or analyzing a PQL query.
#[derive(Clone, Debug, PartialEq)]
pub enum PqlError {
    /// Lexical error (bad character, malformed number).
    Lex {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// What went wrong.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// What went wrong.
        message: String,
    },
    /// Semantic error (safety, stratification, unknown predicates, …).
    Analysis {
        /// The rule's 1-based source line, when attributable.
        line: Option<usize>,
        /// What went wrong.
        message: String,
    },
}

impl PqlError {
    /// Construct an analysis error tied to a rule line.
    pub fn analysis(line: usize, message: impl Into<String>) -> Self {
        PqlError::Analysis {
            line: Some(line),
            message: message.into(),
        }
    }

    /// Construct an analysis error with no specific location.
    pub fn analysis_global(message: impl Into<String>) -> Self {
        PqlError::Analysis {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for PqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PqlError::Lex { line, col, message } => {
                write!(f, "lex error at {line}:{col}: {message}")
            }
            PqlError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            PqlError::Analysis { line: Some(l), message } => {
                write!(f, "analysis error in rule at line {l}: {message}")
            }
            PqlError::Analysis { line: None, message } => {
                write!(f, "analysis error: {message}")
            }
        }
    }
}

impl std::error::Error for PqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = PqlError::Lex {
            line: 2,
            col: 5,
            message: "bad char".into(),
        };
        assert!(e.to_string().contains("2:5"));
        let e = PqlError::analysis(3, "unsafe variable");
        assert!(e.to_string().contains("line 3"));
        let e = PqlError::analysis_global("empty program");
        assert!(e.to_string().contains("empty program"));
    }
}
