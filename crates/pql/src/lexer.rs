//! The PQL lexer.
//!
//! Tokens: identifiers (predicates, variables, aggregate names), numeric
//! and string literals, `$name` parameters, punctuation (`(`, `)`, `,`,
//! `.`), the rule arrow (`:-` or `<-`), negation `!`, comparison and
//! arithmetic operators. `%` starts a comment to end of line.

use crate::error::PqlError;

/// One lexical token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier (`value`, `x`, `count`, `udf_diff`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Double-quoted string literal.
    Str(String),
    /// `$name` parameter.
    Param(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-` or `<-`
    Arrow,
    /// `!` (negation; `!=` lexes as `Ne`)
    Bang,
    /// `=` (also accepts `==`)
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

/// Lex a PQL source string into tokens (ending with [`TokenKind::Eof`]).
pub fn lex(src: &str) -> Result<Vec<Token>, PqlError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($kind:expr, $l:expr, $c:expr) => {
            tokens.push(Token {
                kind: $kind,
                line: $l,
                col: $c,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '%' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                push!(TokenKind::LParen, tl, tc);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(TokenKind::RParen, tl, tc);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(TokenKind::Comma, tl, tc);
                i += 1;
                col += 1;
            }
            '.' => {
                push!(TokenKind::Dot, tl, tc);
                i += 1;
                col += 1;
            }
            '+' => {
                push!(TokenKind::Plus, tl, tc);
                i += 1;
                col += 1;
            }
            '*' => {
                push!(TokenKind::Star, tl, tc);
                i += 1;
                col += 1;
            }
            '/' => {
                push!(TokenKind::Slash, tl, tc);
                i += 1;
                col += 1;
            }
            '-' => {
                push!(TokenKind::Minus, tl, tc);
                i += 1;
                col += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&'-') {
                    push!(TokenKind::Arrow, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    return Err(PqlError::Lex {
                        line: tl,
                        col: tc,
                        message: "expected ':-'".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'-') {
                    push!(TokenKind::Arrow, tl, tc);
                    i += 2;
                    col += 2;
                } else if bytes.get(i + 1) == Some(&'=') {
                    push!(TokenKind::Le, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Lt, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push!(TokenKind::Ge, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Gt, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    i += 2;
                    col += 2;
                } else {
                    i += 1;
                    col += 1;
                }
                push!(TokenKind::Eq, tl, tc);
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push!(TokenKind::Ne, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Bang, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                if j == start {
                    return Err(PqlError::Lex {
                        line: tl,
                        col: tc,
                        message: "expected parameter name after '$'".into(),
                    });
                }
                let name: String = bytes[start..j].iter().collect();
                col += j - i;
                i = j;
                push!(TokenKind::Param(name), tl, tc);
            }
            '"' => {
                let mut j = i + 1;
                let mut s = String::new();
                while j < bytes.len() && bytes[j] != '"' {
                    if bytes[j] == '\n' {
                        return Err(PqlError::Lex {
                            line: tl,
                            col: tc,
                            message: "unterminated string literal".into(),
                        });
                    }
                    s.push(bytes[j]);
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(PqlError::Lex {
                        line: tl,
                        col: tc,
                        message: "unterminated string literal".into(),
                    });
                }
                col += j + 1 - i;
                i = j + 1;
                push!(TokenKind::Str(s), tl, tc);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                // A '.' is a decimal point only if a digit follows;
                // otherwise it is the rule terminator (e.g. `i = 0.`).
                if j + 1 < bytes.len() && bytes[j] == '.' && bytes[j + 1].is_ascii_digit() {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < bytes.len() && (bytes[j] == 'e' || bytes[j] == 'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == '+' || bytes[k] == '-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text: String = bytes[start..j].iter().collect();
                col += j - i;
                i = j;
                if is_float {
                    let v: f64 = text.parse().map_err(|e| PqlError::Lex {
                        line: tl,
                        col: tc,
                        message: format!("bad float {text:?}: {e}"),
                    })?;
                    push!(TokenKind::Float(v), tl, tc);
                } else {
                    let v: i64 = text.parse().map_err(|e| PqlError::Lex {
                        line: tl,
                        col: tc,
                        message: format!("bad integer {text:?}: {e}"),
                    })?;
                    push!(TokenKind::Int(v), tl, tc);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                col += j - i;
                i = j;
                push!(TokenKind::Ident(text), tl, tc);
            }
            other => {
                return Err(PqlError::Lex {
                    line: tl,
                    col: tc,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_rule() {
        let k = kinds("p(x) :- q(x, 1).");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("p".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::Arrow,
                TokenKind::Ident("q".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::Comma,
                TokenKind::Int(1),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        let k = kinds("= == != < <= > >= + - * / ! :- <-");
        assert_eq!(
            k,
            vec![
                TokenKind::Eq,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Bang,
                TokenKind::Arrow,
                TokenKind::Arrow,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_rule_final_dot() {
        // `0.` at the end of a rule: integer then Dot, not a float.
        let k = kinds("i = 0.");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("i".into()),
                TokenKind::Eq,
                TokenKind::Int(0),
                TokenKind::Dot,
                TokenKind::Eof
            ]
        );
        assert_eq!(kinds("0.5")[0], TokenKind::Float(0.5));
        assert_eq!(kinds("1e-3")[0], TokenKind::Float(0.001));
    }

    #[test]
    fn params_strings_comments() {
        let k = kinds("$eps \"hi\" % a comment\n x");
        assert_eq!(
            k,
            vec![
                TokenKind::Param("eps".into()),
                TokenKind::Str("hi".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_have_positions() {
        match lex("p(x) :- @") {
            Err(PqlError::Lex { line: 1, col, .. }) => assert_eq!(col, 9),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(lex("\"unterminated").is_err());
        assert!(lex("$ x").is_err());
        assert!(lex(": x").is_err());
    }

    #[test]
    fn line_tracking() {
        let toks = lex("a\nb\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }
}
