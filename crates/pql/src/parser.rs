//! Recursive-descent parser for PQL.
//!
//! ```text
//! program  := rule*
//! rule     := head ( (':-' | '<-') literal (',' literal)* )? '.'
//! head     := ident '(' headarg (',' headarg)* ')'
//! headarg  := aggname '(' term ')' | term
//! literal  := '!' atom | atom | term cmp term
//! atom     := ident '(' term (',' term)* ')'
//! term     := factor (('+'|'-') factor)*
//! factor   := primary (('*'|'/') primary)*
//! primary  := ident | number | string | '$'ident | '(' term ')' | '-' primary
//!            | 'true' | 'false'
//! ```
//!
//! Whether a positive atom is a relational predicate or a boolean UDF
//! call is resolved later, during analysis, against the catalog and UDF
//! registry.

use crate::ast::*;
use crate::error::PqlError;
use crate::eval::value::Value;
use crate::lexer::{lex, Token, TokenKind};

/// Parse a PQL program.
pub fn parse(src: &str) -> Result<Program, PqlError> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> PqlError {
        let t = self.peek();
        PqlError::Parse {
            line: t.line,
            col: t.col,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, PqlError> {
        if std::mem::discriminant(&self.peek().kind) == std::mem::discriminant(kind) {
            Ok(self.advance())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek().kind)))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if std::mem::discriminant(&self.peek().kind) == std::mem::discriminant(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, usize), PqlError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.advance();
                let TokenKind::Ident(name) = t.kind else {
                    unreachable!()
                };
                Ok((name, t.line))
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn program(&mut self) -> Result<Program, PqlError> {
        let mut rules = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            rules.push(self.rule()?);
        }
        if rules.is_empty() {
            return Err(self.err("empty program"));
        }
        Ok(Program { rules })
    }

    fn rule(&mut self) -> Result<Rule, PqlError> {
        let head = self.head()?;
        let line = self.tokens[self.pos.saturating_sub(1)].line;
        let mut body = Vec::new();
        if self.eat(&TokenKind::Arrow) {
            body.push(self.literal()?);
            while self.eat(&TokenKind::Comma) {
                body.push(self.literal()?);
            }
        }
        self.expect(&TokenKind::Dot, "'.' at end of rule")?;
        Ok(Rule { head, body, line })
    }

    fn head(&mut self) -> Result<Head, PqlError> {
        let (pred, _) = self.ident("predicate name")?;
        self.expect(&TokenKind::LParen, "'(' after head predicate")?;
        let mut args = vec![self.head_arg()?];
        while self.eat(&TokenKind::Comma) {
            args.push(self.head_arg()?);
        }
        self.expect(&TokenKind::RParen, "')' closing head arguments")?;
        Ok(Head { pred, args })
    }

    fn head_arg(&mut self) -> Result<HeadArg, PqlError> {
        // Aggregate if an aggregate name is directly followed by '('.
        if let TokenKind::Ident(name) = &self.peek().kind {
            if let Some(func) = AggFunc::from_name(&name.to_lowercase()) {
                if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen) {
                    self.advance(); // name
                    self.advance(); // (
                    let term = self.term()?;
                    self.expect(&TokenKind::RParen, "')' closing aggregate")?;
                    return Ok(HeadArg::Agg(func, term));
                }
            }
        }
        Ok(HeadArg::Plain(self.term()?))
    }

    fn literal(&mut self) -> Result<Literal, PqlError> {
        if self.eat(&TokenKind::Bang) {
            return Ok(Literal::Negated(self.atom()?));
        }
        // An identifier directly followed by '(' is an atom (relational
        // predicate or UDF call); anything else must be a comparison.
        if matches!(self.peek().kind, TokenKind::Ident(_))
            && self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen)
        {
            return Ok(Literal::Positive(self.atom()?));
        }
        let lhs = self.term()?;
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return Err(self.err("expected comparison operator")),
        };
        self.advance();
        let rhs = self.term()?;
        Ok(Literal::Compare(lhs, op, rhs))
    }

    fn atom(&mut self) -> Result<Atom, PqlError> {
        let (pred, _) = self.ident("predicate name")?;
        self.expect(&TokenKind::LParen, "'(' after predicate")?;
        let mut args = vec![self.term()?];
        while self.eat(&TokenKind::Comma) {
            args.push(self.term()?);
        }
        self.expect(&TokenKind::RParen, "')' closing arguments")?;
        Ok(Atom { pred, args })
    }

    fn term(&mut self) -> Result<Term, PqlError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.factor()?;
            lhs = Term::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Term, PqlError> {
        let mut lhs = self.primary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.primary()?;
            lhs = Term::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Term, PqlError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                self.advance();
                match name.as_str() {
                    "true" => Ok(Term::Const(Value::Bool(true))),
                    "false" => Ok(Term::Const(Value::Bool(false))),
                    _ => Ok(Term::Var(name)),
                }
            }
            TokenKind::Int(v) => {
                self.advance();
                Ok(Term::Const(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Term::Const(Value::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Term::Const(Value::str(&s)))
            }
            TokenKind::Param(name) => {
                self.advance();
                Ok(Term::Param(name))
            }
            TokenKind::LParen => {
                self.advance();
                let t = self.term()?;
                self.expect(&TokenKind::RParen, "')' closing parenthesized term")?;
                Ok(t)
            }
            TokenKind::Minus => {
                self.advance();
                let inner = self.primary()?;
                Ok(match inner {
                    Term::Const(Value::Int(v)) => Term::Const(Value::Int(-v)),
                    Term::Const(Value::Float(v)) => Term::Const(Value::Float(-v)),
                    other => Term::Arith(
                        Box::new(Term::Const(Value::Int(0))),
                        ArithOp::Sub,
                        Box::new(other),
                    ),
                })
            }
            _ => Err(self.err("expected a term")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_rule() {
        let p = parse("reach(x) :- edge(x, y), reach(y).").unwrap();
        assert_eq!(p.rules.len(), 1);
        let r = &p.rules[0];
        assert_eq!(r.head.pred, "reach");
        assert_eq!(r.body.len(), 2);
        match &r.body[0] {
            Literal::Positive(a) => assert_eq!(a.pred, "edge"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_fact() {
        let p = parse("start(x).").unwrap();
        assert!(p.rules[0].body.is_empty());
    }

    #[test]
    fn parses_negation_and_comparison() {
        let p = parse("p(x, i) :- !q(x, j), j = i - 1, r(x, i), i >= 0.").unwrap();
        let r = &p.rules[0];
        assert!(matches!(r.body[0], Literal::Negated(_)));
        match &r.body[1] {
            Literal::Compare(Term::Var(j), CmpOp::Eq, rhs) => {
                assert_eq!(j, "j");
                assert!(matches!(rhs, Term::Arith(_, ArithOp::Sub, _)));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(r.body[3], Literal::Compare(_, CmpOp::Ge, _)));
    }

    #[test]
    fn parses_aggregate_head() {
        let p = parse("in_degree(x, count(y)) :- in_edge(x, y).").unwrap();
        let head = &p.rules[0].head;
        assert!(head.has_aggregate());
        match &head.args[1] {
            HeadArg::Agg(AggFunc::Count, Term::Var(y)) => assert_eq!(y, "y"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_arith_in_head() {
        let p = parse("avg_error(x, i, s / d) :- sum_error(x, i, s), degree(x, d).").unwrap();
        match &p.rules[0].head.args[2] {
            HeadArg::Plain(Term::Arith(_, ArithOp::Div, _)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_params_and_udfs() {
        let p = parse(
            "change(x, i) :- value(x, d1, i), value(x, d2, j), evolution(x, j, i), udf_diff(d1, d2, $eps).",
        )
        .unwrap();
        let r = &p.rules[0];
        match &r.body[3] {
            Literal::Positive(a) => {
                assert_eq!(a.pred, "udf_diff");
                assert_eq!(a.args[2], Term::Param("eps".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_query_one_verbatim() {
        // The paper's apt query, in our concrete syntax.
        let src = "
            change(x, i) :- value(x, d1, i), value(x, d2, j), evolution(x, j, i), udf_diff(d1, d2, $eps).
            neighbor_change(x, i) :- receive_message(x, y, m, i), !change(y, j), j = i - 1.
            no_execute(x, i) :- !neighbor_change(x, i), superstep(x, i).
            safe(x, i) :- no_execute(x, i), change(x, i).
            unsafe(x, i) :- no_execute(x, i), !change(x, i).
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.rules.len(), 5);
        assert_eq!(p.rules[4].head.pred, "unsafe");
    }

    #[test]
    fn double_equals_accepted() {
        let p = parse("p(x) :- q(x, d), d == 0.").unwrap();
        assert!(matches!(p.rules[0].body[1], Literal::Compare(_, CmpOp::Eq, _)));
    }

    #[test]
    fn negative_constants() {
        let p = parse("p(x) :- q(x, d), d > -1.5.").unwrap();
        match &p.rules[0].body[1] {
            Literal::Compare(_, _, Term::Const(Value::Float(v))) => assert_eq!(*v, -1.5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_reporting() {
        assert!(parse("").is_err());
        assert!(parse("p(x)").is_err()); // missing dot
        assert!(parse("p(x) :- .").is_err()); // empty body after arrow
        assert!(parse("p() :- q(x).").is_err()); // empty head args
        assert!(matches!(
            parse("p(x) :- q(x) r(x)."),
            Err(PqlError::Parse { .. })
        ));
    }

    #[test]
    fn line_numbers_recorded() {
        let p = parse("a(x) :- b(x).\nc(x) :- a(x).").unwrap();
        assert_eq!(p.rules[0].line, 1);
        assert_eq!(p.rules[1].line, 2);
    }
}
